"""Tests for the bisection-bandwidth lower bounds."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    bisection_bandwidth,
    level_time_lower_bound,
    level_traffic_bytes,
)
from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.graph.generators import poisson_random_graph
from repro.machine.bluegene import BLUEGENE_L, bluegene_l_torus_for
from repro.machine.torus import Torus3D
from repro.types import GraphSpec, GridShape


class TestBisectionBandwidth:
    def test_full_bluegene(self):
        """The real machine: 64x32x32 torus at 175 MB/s per link direction
        gives ~360 GB/s aggregate bisection (paper Section 4.1)."""
        torus = Torus3D(64, 32, 32)
        bw = bisection_bandwidth(torus, BLUEGENE_L)
        assert bw == pytest.approx(2 * 32 * 32 * 175e6)
        assert 3.0e11 < bw < 4.5e11  # ~360 GB/s

    def test_grows_with_machine(self):
        small = bisection_bandwidth(Torus3D(4, 4, 4), BLUEGENE_L)
        large = bisection_bandwidth(Torus3D(8, 8, 8), BLUEGENE_L)
        assert large > small


class TestLevelBounds:
    def test_traffic_scales_with_degree(self):
        grid = GridShape(16, 16)
        low = level_traffic_bytes(1e6, 10, grid, BLUEGENE_L)
        high = level_traffic_bytes(1e6, 100, grid, BLUEGENE_L)
        assert high > low

    def test_lower_bound_positive(self):
        grid = GridShape(8, 8)
        torus = bluegene_l_torus_for(64)
        assert level_time_lower_bound(1e5, 10, grid, torus, BLUEGENE_L) > 0

    def test_simulator_respects_speed_of_light(self):
        """The simulated comm time of a full traversal must not be faster
        than the analytic lower bound for its total traffic."""
        n, k = 20_000, 10.0
        grid = GridShape(4, 4)
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=3))
        engine = build_engine(graph, grid)
        result = run_bfs(engine, 0)
        torus = bluegene_l_torus_for(grid.size)
        total_bytes = result.stats.total_bytes
        bound = (total_bytes / 2) / bisection_bandwidth(torus, BLUEGENE_L)
        assert result.comm_time >= bound
