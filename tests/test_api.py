"""Tests for the high-level facade (repro.api) and package exports."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import bidirectional_bfs, build_communicator, build_engine, distributed_bfs
from repro.bfs.bfs_1d import Bfs1DEngine
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.serial import serial_bfs
from repro.errors import ConfigurationError
from repro.machine.bluegene import BLUEGENE_L
from repro.types import GridShape


class TestBuildCommunicator:
    def test_default_bluegene_planar(self):
        comm = build_communicator(GridShape(4, 4))
        assert comm.nranks == 16
        assert comm.model.name == "BlueGene/L"

    def test_mcr_flat(self):
        comm = build_communicator(GridShape(2, 2), machine="mcr")
        assert comm.model.name == "MCR"
        assert comm.mapping.hops(0, 3) == 1

    def test_custom_model(self):
        model = BLUEGENE_L.with_overrides(alpha=1e-5)
        comm = build_communicator(GridShape(2, 2), machine=model)
        assert comm.model.alpha == 1e-5

    def test_row_major_mapping(self):
        comm = build_communicator(GridShape(2, 2), mapping="row-major")
        assert comm.mapping.node_of(3) == 3

    def test_unknown_machine_rejected(self):
        with pytest.raises(ConfigurationError):
            build_communicator(GridShape(2, 2), machine="cray")

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            build_communicator(GridShape(2, 2), mapping="hilbert")

    def test_buffer_capacity_threaded_through(self):
        comm = build_communicator(GridShape(2, 2), buffer_capacity=64)
        assert comm.buffer_capacity == 64


class TestBuildEngine:
    def test_2d_default(self, small_graph):
        engine = build_engine(small_graph, (2, 2))
        assert isinstance(engine, Bfs2DEngine)

    def test_1d(self, small_graph):
        engine = build_engine(small_graph, (4, 1), layout="1d")
        assert isinstance(engine, Bfs1DEngine)

    def test_tuple_grid_accepted(self, small_graph):
        engine = build_engine(small_graph, (2, 3))
        assert engine.comm.nranks == 6

    def test_1d_needs_degenerate_grid(self, small_graph):
        with pytest.raises(ConfigurationError):
            build_engine(small_graph, (2, 2), layout="1d")

    def test_unknown_layout_rejected(self, small_graph):
        with pytest.raises(ConfigurationError):
            build_engine(small_graph, (2, 2), layout="3d")


class TestOneCallApis:
    def test_distributed_bfs(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0)
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_distributed_bfs_mcr(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0, machine="mcr")
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_bidirectional(self, small_graph):
        result = bidirectional_bfs(small_graph, (2, 2), 0, 100)
        assert result.path_length == int(serial_bfs(small_graph, 0)[100])

    def test_quickstart_docstring_example(self):
        graph = repro.poisson_random_graph(repro.GraphSpec(n=1000, k=10, seed=1))
        result = repro.distributed_bfs(graph, grid=(4, 4), source=0)
        assert result.num_reached > 900  # k=10: giant component

    def test_public_exports_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestDeprecatedKwargs:
    """Legacy machine/mapping/layout kwargs warn; system= is silent."""

    def test_distributed_bfs_layout_warns(self, small_graph):
        with pytest.warns(DeprecationWarning, match="layout"):
            distributed_bfs(small_graph, (4, 1), 0, layout="1d")

    def test_build_engine_machine_warns(self, small_graph):
        with pytest.warns(DeprecationWarning, match="machine"):
            build_engine(small_graph, (2, 2), machine="mcr")

    def test_build_communicator_mapping_warns(self):
        with pytest.warns(DeprecationWarning, match="mapping"):
            build_communicator(GridShape(2, 2), mapping="row-major")

    def test_warning_lists_every_kwarg(self, small_graph):
        with pytest.warns(DeprecationWarning, match="machine, mapping, layout"):
            build_engine(
                small_graph, (2, 2),
                machine="bluegene", mapping="planar", layout="2d",
            )

    def test_system_path_is_silent(self, small_graph):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            distributed_bfs(small_graph, (2, 2), 0, system="bluegene-2d")

    def test_bidirectional_system_path_is_silent(self, small_graph):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            bidirectional_bfs(small_graph, (2, 2), 0, 5, system="bluegene-2d")

    def test_legacy_kwargs_still_override(self, small_graph):
        with pytest.warns(DeprecationWarning):
            result = distributed_bfs(
                small_graph, (4, 1), 0, system="bluegene-2d", layout="1d"
            )
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))
