"""Tests for the real-parallel SPMD multiprocessing backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.spmd import spmd_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.errors import SearchError
from repro.graph.csr import CsrGraph
from repro.graph.generators import poisson_random_graph
from repro.types import GraphSpec, GridShape, UNREACHED


class TestSpmdBfs:
    @pytest.mark.parametrize("grid", [(1, 1), (2, 2), (1, 4), (4, 1), (2, 3)])
    def test_matches_serial(self, small_graph, grid):
        levels = spmd_bfs(small_graph, grid, 0, timeout=60)
        assert np.array_equal(levels, serial_bfs(small_graph, 0))

    def test_various_sources(self, small_graph):
        for source in (1, 200, 399):
            levels = spmd_bfs(small_graph, (2, 2), source, timeout=60)
            assert np.array_equal(levels, serial_bfs(small_graph, source))

    def test_disconnected_graph(self):
        g = CsrGraph.from_edges(30, np.array([[i, i + 1] for i in range(14)]))
        levels = spmd_bfs(g, (2, 2), 0, timeout=60)
        assert np.array_equal(levels, serial_bfs(g, 0))
        assert (levels[15:] == UNREACHED).all()

    def test_no_sent_cache(self, small_graph):
        opts = BfsOptions(use_sent_cache=False)
        levels = spmd_bfs(small_graph, (2, 2), 5, opts=opts, timeout=60)
        assert np.array_equal(levels, serial_bfs(small_graph, 5))

    def test_larger_graph_more_workers(self):
        graph = poisson_random_graph(GraphSpec(n=3000, k=8, seed=3))
        levels = spmd_bfs(graph, (2, 4), 17, timeout=120)
        assert np.array_equal(levels, serial_bfs(graph, 17))

    def test_bad_source_rejected(self, small_graph):
        with pytest.raises(SearchError):
            spmd_bfs(small_graph, (2, 2), small_graph.n)

    def test_grid_tuple_and_shape(self, path_graph):
        a = spmd_bfs(path_graph, (2, 2), 0, timeout=60)
        b = spmd_bfs(path_graph, GridShape(2, 2), 0, timeout=60)
        assert np.array_equal(a, b)

    def test_agrees_with_simulated_engine(self, small_graph):
        from repro.api import distributed_bfs

        sim = distributed_bfs(small_graph, (2, 3), 9)
        real = spmd_bfs(small_graph, (2, 3), 9, timeout=60)
        assert np.array_equal(sim.levels, real)


class TestSpmdCollectives:
    @pytest.mark.parametrize("expand", ["direct", "ring"])
    @pytest.mark.parametrize("fold", ["direct", "union-ring"])
    def test_ring_collectives_match_serial(self, small_graph, expand, fold):
        opts = BfsOptions(expand_collective=expand, fold_collective=fold)
        levels = spmd_bfs(small_graph, (2, 3), 7, opts=opts, timeout=90)
        assert np.array_equal(levels, serial_bfs(small_graph, 7))

    def test_unsupported_collectives_rejected(self, small_graph):
        from repro.errors import CommunicationError

        with pytest.raises(CommunicationError, match="expand"):
            spmd_bfs(small_graph, (2, 2), 0, opts=BfsOptions(expand_collective="two-phase"))
        with pytest.raises(CommunicationError, match="fold"):
            spmd_bfs(small_graph, (2, 2), 0, opts=BfsOptions(fold_collective="bruck"))
