"""Session-server tests: protocol, batching service, admission, TCP."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ReproError
from repro.server import (
    BfsService,
    ProtocolError,
    Query,
    QueryClient,
    QueryReply,
    TcpQueryClient,
    serve_tcp,
)
from repro.server.protocol import decode_request
from repro.server.service import _percentile
from repro.session import BfsSession
from repro.types import SystemSpec


class TestProtocol:
    def test_query_round_trip(self):
        line = Query(source=3, target=9, id=7).to_json()
        payload = decode_request(line)
        assert payload == {"op": "query", "source": 3, "target": 9, "id": 7}

    def test_query_without_target(self):
        payload = decode_request(Query(source=3).to_json())
        assert "target" not in payload and "id" not in payload

    def test_reply_round_trip(self):
        reply = QueryReply(ok=True, id=4, result={"source": 3})
        parsed = QueryReply.from_json(reply.to_json())
        assert parsed == reply

    def test_reply_extra_fields_survive(self):
        parsed = QueryReply.from_json('{"ok": true, "pong": true}')
        assert parsed.extra == {"pong": True}
        assert json.loads(parsed.to_json())["pong"] is True

    def test_overloaded_flag(self):
        assert QueryReply(ok=False, error="overloaded").overloaded
        assert not QueryReply(ok=False, error="boom").overloaded

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"op": "launch"}',
            '{"op": "query"}',
            '{"op": "query", "source": "abc"}',
        ],
    )
    def test_bad_requests_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_bad_reply_rejected(self):
        with pytest.raises(ProtocolError):
            QueryReply.from_json("not json")
        with pytest.raises(ProtocolError):
            QueryReply.from_json('{"no_ok": 1}')


class TestService:
    def test_concurrent_queries_are_batched_and_correct(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        sources = [0, 1, 5, 17, 113, 399, 200, 3] * 2
        expected = {s: session.bfs(s).query_view().levels_digest for s in set(sources)}

        async def scenario():
            async with BfsService(session) as service:
                client = QueryClient(service)
                replies = await client.query_many(sources)
            return replies, service.metrics

        replies, metrics = asyncio.run(scenario())
        assert all(r.ok for r in replies)
        for s, r in zip(sources, replies):
            assert r.result["source"] == s
            assert r.result["levels_digest"] == expected[s]
        assert metrics.served == len(sources)
        # concurrency must have produced at least one multi-source batch
        assert metrics.batches < len(sources)
        assert any(r.result["batch_size"] > 1 for r in replies)

    def test_replies_deterministic_across_runs(self, small_graph):
        sources = [0, 7, 42, 399, 7, 0]

        def digests():
            session = BfsSession(small_graph, (2, 2))

            async def scenario():
                async with BfsService(session) as service:
                    return await QueryClient(service).query_many(sources)

            return [r.result["levels_digest"] for r in asyncio.run(scenario())]

        assert digests() == digests()

    def test_targeted_queries(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            async with BfsService(session) as service:
                client = QueryClient(service)
                return await client.query_many([0, 5], targets=[42, None])

        replies = asyncio.run(scenario())
        expected = session.bfs(0, target=42)
        assert replies[0].result["target_level"] == expected.target_level
        assert replies[1].result["target"] is None

    def test_admission_control_rejects_overload(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            async with BfsService(session, max_queue=2) as service:
                client = QueryClient(service)
                return await client.query_many(list(range(30)))

        replies = asyncio.run(scenario())
        rejected = [r for r in replies if r.overloaded]
        answered = [r for r in replies if r.ok]
        assert rejected, "expected overload rejections with max_queue=2"
        assert answered, "some queries must still be answered"

    def test_out_of_range_rejected_without_failing_batch(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            async with BfsService(session) as service:
                client = QueryClient(service)
                return await client.query_many([0, small_graph.n, 1])

        replies = asyncio.run(scenario())
        assert replies[0].ok and replies[2].ok
        assert not replies[1].ok and "out of range" in replies[1].error

    def test_faulted_session_disables_batching(self, small_graph):
        session = BfsSession(
            small_graph, (2, 2), system=SystemSpec(layout="2d", faults="mild")
        )
        service = BfsService(session)
        assert service.max_batch == 1

        async def scenario():
            async with service:
                return await QueryClient(service).query_many([0, 1])

        replies = asyncio.run(scenario())
        assert all(r.ok for r in replies)
        assert all(r.result["batch_size"] == 1 for r in replies)

    def test_bad_max_batch_rejected(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        with pytest.raises(ReproError):
            BfsService(session, max_batch=0)
        with pytest.raises(ReproError):
            BfsService(session, max_batch=65)

    def test_closed_service_refuses(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            service = BfsService(session)
            await service.start()
            await service.close()
            return await service.submit(Query(source=0))

        reply = asyncio.run(scenario())
        assert not reply.ok and reply.error == "server closed"

    def test_metrics_snapshot_and_registry(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            async with BfsService(session) as service:
                await QueryClient(service).query_many([0, 1, 2, 3])
                return service.metrics

        metrics = asyncio.run(scenario())
        snap = metrics.snapshot()
        assert snap["served"] == 4
        assert snap["wall_p99_ms"] >= snap["wall_p50_ms"] >= 0
        reg = metrics.registry()
        assert reg.value("server_queries_total", outcome="served") == 4
        assert reg.value("server_batches_total") == metrics.batches

    def test_percentile_helper(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert _percentile([1.0], 0.99) == 1.0


class TestTcp:
    def test_tcp_round_trip(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        expected = session.bfs(0).query_view().levels_digest

        async def scenario():
            service = BfsService(session)
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with TcpQueryClient("127.0.0.1", port) as client:
                    pong = await client.ping()
                    reply = await client.query(0)
                    stats = await client.stats()
                    bad = await client._round_trip('{"op": "nope"}')
                return pong, reply, stats, bad
            finally:
                server.close()
                await server.wait_closed()
                await service.close()

        pong, reply, stats, bad = asyncio.run(scenario())
        assert pong.ok and pong.extra["pong"] is True
        assert reply.ok and reply.result["levels_digest"] == expected
        assert stats.ok and stats.extra["stats"]["served"] == 1
        assert not bad.ok and "unknown op" in bad.error

    def test_tcp_concurrent_connections_batch(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        sources = list(range(12))

        async def scenario():
            service = BfsService(session)
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            clients = [
                await TcpQueryClient("127.0.0.1", port).connect() for _ in sources
            ]
            try:
                return await asyncio.gather(
                    *(c.query(s) for c, s in zip(clients, sources))
                )
            finally:
                for c in clients:
                    await c.close()
                server.close()
                await server.wait_closed()
                await service.close()

        replies = asyncio.run(scenario())
        assert all(r.ok for r in replies)
        for s, r in zip(sources, replies):
            assert r.result["source"] == s
        assert any(r.result["batch_size"] > 1 for r in replies)

    def test_disconnected_client_raises(self):
        client = TcpQueryClient("127.0.0.1", 1)

        async def scenario():
            await client.query(0)

        with pytest.raises(ReproError):
            asyncio.run(scenario())
