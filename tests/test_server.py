"""Session-server tests: protocol, batching service, admission, TCP."""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.errors import FaultError, ReproError
from repro.faults import FaultSpec
from repro.server import (
    BfsService,
    ProtocolError,
    Query,
    QueryClient,
    QueryReply,
    TcpQueryClient,
    serve_tcp,
)
from repro.server.protocol import decode_request
from repro.server.service import _Pending, _percentile
from repro.session import BfsSession
from repro.types import SystemSpec


class TestProtocol:
    def test_query_round_trip(self):
        line = Query(source=3, target=9, id=7).to_json()
        payload = decode_request(line)
        assert payload == {"op": "query", "source": 3, "target": 9, "id": 7}

    def test_query_without_target(self):
        payload = decode_request(Query(source=3).to_json())
        assert "target" not in payload and "id" not in payload

    def test_reply_round_trip(self):
        reply = QueryReply(ok=True, id=4, result={"source": 3})
        parsed = QueryReply.from_json(reply.to_json())
        assert parsed == reply

    def test_reply_extra_fields_survive(self):
        parsed = QueryReply.from_json('{"ok": true, "pong": true}')
        assert parsed.extra == {"pong": True}
        assert json.loads(parsed.to_json())["pong"] is True

    def test_overloaded_flag(self):
        assert QueryReply(ok=False, error="overloaded").overloaded
        assert not QueryReply(ok=False, error="boom").overloaded

    def test_deadline_round_trip(self):
        payload = decode_request(Query(source=3, deadline_ms=250).to_json())
        assert payload["deadline_ms"] == 250.0

    def test_health_op_decodes(self):
        assert decode_request('{"op": "health"}')["op"] == "health"

    def test_error_code_round_trip(self):
        reply = QueryReply(ok=False, error="deadline exceeded", error_code="deadline")
        parsed = QueryReply.from_json(reply.to_json())
        assert parsed.error_code == "deadline"
        assert parsed.extra == {}

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"op": "launch"}',
            '{"op": "query"}',
            '{"op": "query", "source": "abc"}',
            '{"op": "query", "source": 1, "deadline_ms": "soon"}',
            '{"op": "query", "source": 1, "deadline_ms": -5}',
            '{"op": "query", "source": 1, "deadline_ms": 0}',
        ],
    )
    def test_bad_requests_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_bad_reply_rejected(self):
        with pytest.raises(ProtocolError):
            QueryReply.from_json("not json")
        with pytest.raises(ProtocolError):
            QueryReply.from_json('{"no_ok": 1}')


class TestService:
    def test_concurrent_queries_are_batched_and_correct(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        sources = [0, 1, 5, 17, 113, 399, 200, 3] * 2
        expected = {s: session.bfs(s).query_view().levels_digest for s in set(sources)}

        async def scenario():
            async with BfsService(session) as service:
                client = QueryClient(service)
                replies = await client.query_many(sources)
            return replies, service.metrics

        replies, metrics = asyncio.run(scenario())
        assert all(r.ok for r in replies)
        for s, r in zip(sources, replies):
            assert r.result["source"] == s
            assert r.result["levels_digest"] == expected[s]
        assert metrics.served == len(sources)
        # concurrency must have produced at least one multi-source batch
        assert metrics.batches < len(sources)
        assert any(r.result["batch_size"] > 1 for r in replies)

    def test_replies_deterministic_across_runs(self, small_graph):
        sources = [0, 7, 42, 399, 7, 0]

        def digests():
            session = BfsSession(small_graph, (2, 2))

            async def scenario():
                async with BfsService(session) as service:
                    return await QueryClient(service).query_many(sources)

            return [r.result["levels_digest"] for r in asyncio.run(scenario())]

        assert digests() == digests()

    def test_targeted_queries(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            async with BfsService(session) as service:
                client = QueryClient(service)
                return await client.query_many([0, 5], targets=[42, None])

        replies = asyncio.run(scenario())
        expected = session.bfs(0, target=42)
        assert replies[0].result["target_level"] == expected.target_level
        assert replies[1].result["target"] is None

    def test_admission_control_rejects_overload(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            async with BfsService(session, max_queue=2) as service:
                client = QueryClient(service)
                return await client.query_many(list(range(30)))

        replies = asyncio.run(scenario())
        rejected = [r for r in replies if r.overloaded]
        answered = [r for r in replies if r.ok]
        assert rejected, "expected overload rejections with max_queue=2"
        assert answered, "some queries must still be answered"

    def test_out_of_range_rejected_without_failing_batch(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            async with BfsService(session) as service:
                client = QueryClient(service)
                return await client.query_many([0, small_graph.n, 1])

        replies = asyncio.run(scenario())
        assert replies[0].ok and replies[2].ok
        assert not replies[1].ok and "out of range" in replies[1].error

    def test_faulted_session_batches_and_recovers(self, small_graph):
        # fault schedules no longer force sequential serving: MS-BFS
        # checkpoints and replays, so the faulted batch must produce the
        # exact fault-free digests at full batch width
        faultfree = BfsSession(small_graph, (2, 2))
        sources = [0, 1, 5, 17, 113, 399]
        expected = {s: faultfree.bfs(s).query_view().levels_digest for s in sources}
        session = BfsSession(
            small_graph, (2, 2), system=SystemSpec(layout="2d", faults="mild")
        )
        service = BfsService(session)
        assert service.max_batch > 1

        async def scenario():
            async with service:
                return await QueryClient(service).query_many(sources)

        replies = asyncio.run(scenario())
        assert all(r.ok for r in replies)
        assert any(r.result["batch_size"] > 1 for r in replies)
        for s, r in zip(sources, replies):
            assert r.result["levels_digest"] == expected[s]

    def test_bad_max_batch_rejected(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        with pytest.raises(ReproError):
            BfsService(session, max_batch=0)
        with pytest.raises(ReproError):
            BfsService(session, max_batch=65)

    def test_closed_service_refuses(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            service = BfsService(session)
            await service.start()
            await service.close()
            return await service.submit(Query(source=0))

        reply = asyncio.run(scenario())
        assert not reply.ok and reply.error == "server closed"

    def test_metrics_snapshot_and_registry(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            async with BfsService(session) as service:
                await QueryClient(service).query_many([0, 1, 2, 3])
                return service.metrics

        metrics = asyncio.run(scenario())
        snap = metrics.snapshot()
        assert snap["served"] == 4
        assert snap["wall_p99_ms"] >= snap["wall_p50_ms"] >= 0
        reg = metrics.registry()
        assert reg.value("server_queries_total", outcome="served") == 4
        assert reg.value("server_batches_total") == metrics.batches

    def test_percentile_helper(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert _percentile([1.0], 0.99) == 1.0


class TestHardening:
    def test_deadline_expires_waiting_query(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            service = BfsService(session)
            # pin the worker so the second query is still queued when
            # its (much shorter) deadline fires
            orig = service._run_batch

            def slow(batch):
                time.sleep(0.3)
                orig(batch)

            service._run_batch = slow
            async with service:
                client = QueryClient(service)
                first = asyncio.create_task(client.query(0))
                await asyncio.sleep(0.05)  # let the worker pick it up
                second = await client.query(1, deadline_ms=10)
                return await first, second, service.metrics

        first, second, metrics = asyncio.run(scenario())
        assert first.ok
        assert not second.ok and second.error_code == "deadline"
        assert metrics.deadline_exceeded == 1

    def test_generous_deadline_answers_normally(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            async with BfsService(session, default_deadline=30.0) as service:
                return await QueryClient(service).query(0, deadline_ms=30_000)

        reply = asyncio.run(scenario())
        assert reply.ok

    def test_drain_completes_queued_queries(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            service = BfsService(session)
            await service.start()
            client = QueryClient(service)
            tasks = [asyncio.create_task(client.query(s)) for s in range(6)]
            await asyncio.sleep(0)  # let every submit enqueue
            await service.close()  # drain=True: finish the backlog first
            replies = await asyncio.gather(*tasks)
            late = await service.submit(Query(source=0))
            return replies, late

        replies, late = asyncio.run(scenario())
        assert all(r.ok for r in replies)
        assert not late.ok and late.error_code == "closed"

    def test_abrupt_close_fails_queued(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            service = BfsService(session)
            loop = asyncio.get_running_loop()
            fut = loop.create_future()
            service._queue.put_nowait(
                _Pending(Query(source=0, id=9), fut, time.perf_counter())
            )
            await service.close(drain=False)
            return await fut

        reply = asyncio.run(scenario())
        assert not reply.ok and reply.error_code == "closed"
        assert reply.error == "server closed"

    def test_health_tracks_lifecycle(self, small_graph):
        session = BfsSession(small_graph, (2, 2))

        async def scenario():
            service = BfsService(session)
            await service.start()
            open_health = service.health_reply()
            await service.close()
            closed_health = service.health_reply()
            return open_health, closed_health

        open_health, closed_health = asyncio.run(scenario())
        assert open_health.extra["health"]["state"] == "ok"
        assert open_health.extra["health"]["ready"] is True
        assert closed_health.extra["health"]["state"] == "closed"
        assert closed_health.extra["health"]["ready"] is False

    def test_fault_error_carries_structured_payload(self, small_graph):
        # a schedule hostile enough that retries cannot save it: almost
        # every chunk is lost for good and the replay budget is 1
        doomed = FaultSpec(
            seed=0, drop_rate=0.9, max_retries=0, max_level_retries=1
        )
        session = BfsSession(
            small_graph, (2, 2), system=SystemSpec(layout="2d", faults=doomed)
        )

        async def scenario():
            async with BfsService(session, fault_retries=1) as service:
                replies = await QueryClient(service).query_many([0, 1, 2])
                return replies, service.metrics

        replies, metrics = asyncio.run(scenario())
        assert all(not r.ok for r in replies)
        assert all(r.error_code == "fault" for r in replies)
        # the structured payload exposes the fault-report counters
        assert all(r.extra["fault"]["unrecovered"] > 0 for r in replies)
        assert metrics.fault_failures == 3
        assert metrics.fault_retries >= 1
        snap = metrics.snapshot()
        assert snap["fault_failures"] == 3
        reg = metrics.registry()
        assert reg.value("server_fault_failures_total") == 3

    def test_fault_retry_reseeds_schedule(self, small_graph):
        session = BfsSession(
            small_graph, (2, 2), system=SystemSpec(layout="2d", faults="mild")
        )
        seen: list[int | None] = []
        orig = session.bfs_many

        def spy(sources, targets=None, *, fault_seed=None):
            seen.append(fault_seed)
            if len(seen) == 1:
                raise FaultError("synthetic loss")
            return orig(sources, targets=targets, fault_seed=fault_seed)

        session.bfs_many = spy

        async def scenario():
            async with BfsService(session) as service:
                replies = await QueryClient(service).query_many([0, 1])
                return replies, service.metrics

        replies, metrics = asyncio.run(scenario())
        assert all(r.ok for r in replies)
        # first attempt under the spec's own seed, the retry reseeded
        assert seen[0] is None and seen[1] is not None
        assert metrics.fault_retries == 1


class TestTcp:
    def test_tcp_round_trip(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        expected = session.bfs(0).query_view().levels_digest

        async def scenario():
            service = BfsService(session)
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                async with TcpQueryClient("127.0.0.1", port) as client:
                    pong = await client.ping()
                    reply = await client.query(0)
                    stats = await client.stats()
                    health = await client.health()
                    bad = await client._round_trip('{"op": "nope"}')
                return pong, reply, stats, health, bad
            finally:
                server.close()
                await server.wait_closed()
                await service.close()

        pong, reply, stats, health, bad = asyncio.run(scenario())
        assert pong.ok and pong.extra["pong"] is True
        assert reply.ok and reply.result["levels_digest"] == expected
        assert stats.ok and stats.extra["stats"]["served"] == 1
        assert health.ok and health.extra["health"]["ready"] is True
        assert not bad.ok and "unknown op" in bad.error and bad.error_code == "protocol"

    def test_tcp_concurrent_connections_batch(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        sources = list(range(12))

        async def scenario():
            service = BfsService(session)
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            clients = [
                await TcpQueryClient("127.0.0.1", port).connect() for _ in sources
            ]
            try:
                return await asyncio.gather(
                    *(c.query(s) for c, s in zip(clients, sources))
                )
            finally:
                for c in clients:
                    await c.close()
                server.close()
                await server.wait_closed()
                await service.close()

        replies = asyncio.run(scenario())
        assert all(r.ok for r in replies)
        for s, r in zip(sources, replies):
            assert r.result["source"] == s
        assert any(r.result["batch_size"] > 1 for r in replies)

    def test_disconnected_client_raises(self):
        client = TcpQueryClient("127.0.0.1", 1)

        async def scenario():
            await client.query(0)

        with pytest.raises(ReproError):
            asyncio.run(scenario())
