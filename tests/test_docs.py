"""Documentation guards: README code blocks must actually run, docs exist."""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def python_blocks(path: pathlib.Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_exists_with_key_sections(self):
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        for heading in ("## Install", "## Quickstart", "## Architecture",
                        "## Tests and benchmarks"):
            assert heading in readme

    def test_python_blocks_execute(self):
        """Every fenced python block in the README runs in one shared
        namespace (later blocks may use earlier blocks' variables)."""
        blocks = python_blocks(ROOT / "README.md")
        assert len(blocks) >= 3
        namespace: dict = {}
        for block in blocks:
            # shrink the demo graph so the doc test stays fast
            code = block.replace("n=20_000", "n=2_000").replace("19_999", "1_999")
            exec(compile(code, "<readme>", "exec"), namespace)  # noqa: S102

    def test_examples_listed_exist(self):
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        for mentioned in re.findall(r"python (examples/\w+\.py)", readme):
            assert (ROOT / mentioned).exists(), mentioned


class TestOtherDocs:
    @pytest.mark.parametrize(
        "name", ["DESIGN.md", "EXPERIMENTS.md", "docs/API.md", "docs/PERFORMANCE.md",
                 "docs/SERVER.md", "LICENSE", "CITATION.cff"]
    )
    def test_docs_exist(self, name):
        assert (ROOT / name).exists()

    def test_design_covers_every_figure(self):
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for exp in ("Fig 4a", "Fig 4b", "Fig 4c", "Fig 5", "Table 1", "Fig 6a",
                    "Fig 6b", "Fig 7"):
            assert exp in design, exp

    def test_experiments_covers_every_figure(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for exp in ("Figure 4.a", "Figure 4.b", "Figure 4.c", "Figure 5",
                    "Table 1", "Figure 6", "Figure 7"):
            assert exp in experiments, exp

    def test_every_bench_file_mentioned_in_experiments_or_design(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in experiments + design, bench.name
