"""The paper's equivalence claim: "The conventional 1D partitioning is
equivalent to the 2D partitioning with R = 1 or C = 1" (Section 2.2).

Algorithm 1 on a OneDPartition and Algorithm 2 on the degenerate 1 x P
mesh must not only produce the same levels — they must move the *same
data*: identical fold volumes per level, because the stored structures
coincide (full edge lists per owner) and the fold buckets by the same
ownership map.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.graph.generators import poisson_random_graph
from repro.types import GraphSpec, GridShape


@pytest.fixture(scope="module")
def graph():
    return poisson_random_graph(GraphSpec(n=800, k=7, seed=13))


@pytest.mark.parametrize("fold", ["direct", "union-ring"])
def test_fold_volumes_identical(graph, fold):
    opts = BfsOptions(fold_collective=fold)
    one_d = run_bfs(build_engine(graph, GridShape(1, 6), layout="1d", opts=opts), 0)
    two_d = run_bfs(build_engine(graph, GridShape(1, 6), layout="2d", opts=opts), 0)
    assert np.array_equal(one_d.levels, two_d.levels)
    assert np.array_equal(
        one_d.stats.volume_per_level("fold"), two_d.stats.volume_per_level("fold")
    )
    # The degenerate 2D mesh has single-member columns: zero expand traffic,
    # exactly like Algorithm 1 which has no expand at all.
    assert two_d.stats.volume_per_level("expand").sum() == 0
    assert one_d.stats.volume_per_level("expand").sum() == 0


def test_per_rank_storage_identical(graph):
    from repro.partition.one_d import OneDPartition
    from repro.partition.two_d import TwoDPartition

    p = 6
    one_d = OneDPartition(graph, p, as_row=False)
    two_d = TwoDPartition(graph, GridShape(1, p))
    for rank in range(p):
        a = one_d.local(rank)
        b = two_d.local(rank)
        # same owned range
        assert (a.vertex_lo, a.vertex_hi) == (b.vertex_lo, b.vertex_hi)
        # same stored adjacency multiset (rows of owners == columns of owners
        # by symmetry)
        assert a.num_local_edges == b.num_stored_entries
        assert np.array_equal(np.sort(a.adjacency), np.sort(b.rows))


def test_simulated_times_close(graph):
    """Same traffic + same machine model => near-identical simulated time.
    (Small differences come from the degenerate expand's empty rounds.)"""
    opts = BfsOptions(fold_collective="direct")
    one_d = run_bfs(build_engine(graph, GridShape(1, 6), layout="1d", opts=opts), 0)
    two_d = run_bfs(build_engine(graph, GridShape(1, 6), layout="2d", opts=opts), 0)
    assert two_d.elapsed == pytest.approx(one_d.elapsed, rel=0.15)
