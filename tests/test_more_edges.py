"""Second batch of edge cases across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.spmd import spmd_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.errors import PartitionError
from repro.harness.experiment import ExperimentConfig
from repro.harness.export import results_to_rows
from repro.harness.figures import fig4a_weak_scaling
from repro.harness.sweep import sweep
from repro.partition.two_d import TwoDPartition
from repro.runtime.clock import SimClock
from repro.runtime.message import chunk_payload
from repro.session import BfsSession
from repro.types import GraphSpec, GridShape


class TestFiguresStMode:
    def test_fig4a_st_searches(self):
        """The paper's literal random s-t protocol (early termination)."""
        points = fig4a_weak_scaling([4], 300, 8.0, searches=3, full_traversal=False)
        assert points[0].mean_time > 0
        # early-terminated searches are cheaper than full traversals
        full = fig4a_weak_scaling([4], 300, 8.0, searches=3, full_traversal=True)
        assert points[0].mean_time <= full[0].mean_time


class TestSmallPieces:
    def test_column_chunk_range_invalid(self, small_graph):
        part = TwoDPartition(small_graph, GridShape(2, 3))
        with pytest.raises(PartitionError):
            part.column_chunk_range(3)

    def test_clock_sync_empty_selection(self):
        clock = SimClock(3)
        clock.advance(0, 1.0)
        horizon = clock.sync([])
        assert horizon == 0.0  # nothing synced
        assert clock.time[1] == 0.0

    def test_chunk_payload_exact_multiple(self):
        chunks = chunk_payload(np.arange(8), 4)
        assert [len(c) for c in chunks] == [4, 4]

    def test_session_on_mcr(self, small_graph):
        session = BfsSession(small_graph, (2, 2), machine="mcr")
        result = session.bfs(0)
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))


class TestSpmdDegenerateGrids:
    def test_ring_collectives_on_1xp(self, path_graph):
        opts = BfsOptions(expand_collective="ring", fold_collective="union-ring")
        levels = spmd_bfs(path_graph, (1, 4), 0, opts=opts, timeout=60)
        assert np.array_equal(levels, serial_bfs(path_graph, 0))

    def test_ring_collectives_on_px1(self, path_graph):
        opts = BfsOptions(expand_collective="ring", fold_collective="union-ring")
        levels = spmd_bfs(path_graph, (4, 1), 0, opts=opts, timeout=60)
        assert np.array_equal(levels, serial_bfs(path_graph, 0))

    def test_sent_cache_equivalence(self, small_graph):
        on = spmd_bfs(small_graph, (2, 2), 3, opts=BfsOptions(use_sent_cache=True),
                      timeout=60)
        off = spmd_bfs(small_graph, (2, 2), 3, opts=BfsOptions(use_sent_cache=False),
                       timeout=60)
        assert np.array_equal(on, off)


class TestSweepExportIntegration:
    def test_sweep_to_rows(self):
        base = ExperimentConfig(
            name="sweep-export",
            graph=GraphSpec(n=120, k=4, seed=1),
            grid=GridShape(2, 2),
            num_searches=1,
        )
        results = sweep(base, [{"n": 100}, {"n": 140}])
        rows = results_to_rows(results)
        assert [r["n"] for r in rows] == [100, 140]
        assert all(r["mean_time_s"] > 0 for r in rows)

    def test_machine_variation_in_sweep(self):
        base = ExperimentConfig(
            name="machines",
            graph=GraphSpec(n=120, k=4, seed=1),
            grid=GridShape(2, 2),
            num_searches=1,
        )
        results = sweep(base, [{"machine": "bluegene"}, {"machine": "mcr"}])
        assert results[0].mean_compute_time > results[1].mean_compute_time
