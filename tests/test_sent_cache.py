"""Tests for the sent-neighbours cache (Section 2.4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.sent_cache import PooledSentCache, SentCache
from repro.partition.indexing import VertexIndexMap
from repro.types import GridShape


class TestSentCache:
    def test_first_pass_all_fresh(self):
        cache = SentCache(VertexIndexMap([10, 20, 30]))
        out = cache.filter_unsent(np.array([10, 30]))
        assert out.tolist() == [10, 30]
        assert cache.num_sent == 2

    def test_second_pass_filtered(self):
        cache = SentCache(VertexIndexMap([10, 20, 30]))
        cache.filter_unsent(np.array([10, 30]))
        out = cache.filter_unsent(np.array([10, 20, 30]))
        assert out.tolist() == [20]

    def test_empty_input(self):
        cache = SentCache(VertexIndexMap([1]))
        assert cache.filter_unsent(np.array([], dtype=np.int64)).size == 0

    def test_reset(self):
        cache = SentCache(VertexIndexMap([1, 2]))
        cache.filter_unsent(np.array([1, 2]))
        cache.reset()
        assert cache.num_sent == 0
        assert cache.filter_unsent(np.array([1])).tolist() == [1]

    def test_unknown_vertex_rejected(self):
        cache = SentCache(VertexIndexMap([1, 2]))
        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            cache.filter_unsent(np.array([3]))

    def test_len_is_universe_size(self):
        assert len(SentCache(VertexIndexMap([5, 6, 7]))) == 3

    def test_full_universe_saturation(self):
        """Once every vertex is marked, every further call filters to empty."""
        cache = SentCache(VertexIndexMap([1, 2, 3]))
        cache.filter_unsent(np.array([1, 2, 3]))
        assert cache.num_sent == len(cache)
        assert cache.filter_unsent(np.array([1, 2, 3])).size == 0
        assert cache.filter_unsent(np.array([2])).size == 0
        assert cache.num_sent == len(cache)

    def test_num_sent_monotone(self):
        """num_sent never decreases under filter calls, only under reset."""
        cache = SentCache(VertexIndexMap(list(range(10))))
        rng = np.random.default_rng(0)
        seen = 0
        for _ in range(8):
            batch = np.unique(rng.integers(0, 10, size=4))
            cache.filter_unsent(batch)
            assert cache.num_sent >= seen
            seen = cache.num_sent
        cache.reset()
        assert cache.num_sent == 0


class TestPooledSentCache:
    def _pool(self):
        universes = [VertexIndexMap([0, 2, 4]), VertexIndexMap([1, 2, 3])]
        return PooledSentCache(universes, domain=5)

    def test_empty_segmented_filter(self):
        """A fully-empty candidate set is a no-op with well-formed bounds."""
        pool = self._pool()
        flat = np.empty(0, dtype=np.int64)
        bounds = np.zeros(3, dtype=np.int64)
        out_flat, out_bounds = pool.filter_unsent_segmented(flat, bounds)
        assert out_flat.size == 0
        assert out_bounds.tolist() == [0, 0, 0]
        assert pool.snapshot().sum() == 0

    def test_empty_segment_between_active_ranks(self):
        """Rank 0 active, rank 1 idle: the idle segment stays empty."""
        pool = self._pool()
        flat = np.array([0, 4], dtype=np.int64)
        bounds = np.array([0, 2, 2], dtype=np.int64)
        out_flat, out_bounds = pool.filter_unsent_segmented(flat, bounds)
        assert out_flat.tolist() == [0, 4]
        assert out_bounds.tolist() == [0, 2, 2]

    def test_full_universe_saturation_segmented(self):
        pool = self._pool()
        flat = np.array([0, 2, 4, 1, 2, 3], dtype=np.int64)
        bounds = np.array([0, 3, 6], dtype=np.int64)
        out_flat, _ = pool.filter_unsent_segmented(flat, bounds)
        assert out_flat.size == 6
        out_flat, out_bounds = pool.filter_unsent_segmented(flat, bounds)
        assert out_flat.size == 0
        assert out_bounds.tolist() == [0, 0, 0]

    def test_views_share_pool_flags(self):
        """Marks through a per-rank view are visible to the segmented path."""
        pool = self._pool()
        pool.view(0).filter_unsent(np.array([2]))
        flat = np.array([0, 2], dtype=np.int64)
        bounds = np.array([0, 2, 2], dtype=np.int64)
        out_flat, _ = pool.filter_unsent_segmented(flat, bounds)
        assert out_flat.tolist() == [0]
        # rank 1's own vertex 2 is a different flag
        assert pool.view(1).filter_unsent(np.array([2])).tolist() == [2]

    def test_snapshot_restore_round_trip(self):
        pool = self._pool()
        before = pool.snapshot()
        pool.view(0).filter_unsent(np.array([0, 4]))
        after = pool.snapshot()
        pool.restore(before)
        assert pool.view(0).filter_unsent(np.array([0])).tolist() == [0]
        pool.restore(after)
        assert pool.view(0).filter_unsent(np.array([4])).size == 0


class TestCacheEffectOnTraffic:
    def test_cache_reduces_fold_volume(self, small_graph):
        """Dense graphs rediscover neighbours constantly; the cache must cut
        the fold traffic without changing the result."""
        grid = GridShape(2, 4)
        with_cache = run_bfs(
            build_engine(small_graph, grid, opts=BfsOptions(use_sent_cache=True)), 0
        )
        without = run_bfs(
            build_engine(small_graph, grid, opts=BfsOptions(use_sent_cache=False)), 0
        )
        assert np.array_equal(with_cache.levels, without.levels)
        assert (
            with_cache.stats.volume_per_level("fold").sum()
            < without.stats.volume_per_level("fold").sum()
        )

    def test_cache_universe_is_edge_list_vertices(self, small_graph):
        """Storage is one flag per unique vertex in local edge lists -- the
        Section 2.4.1/2.4.3 O(n/P) expectation."""
        engine = build_engine(small_graph, GridShape(2, 4))
        engine.start(0)
        for rank in range(8):
            cache = engine._sent_caches[rank]
            fp = engine.partition.memory_footprint(rank)
            assert len(cache) == fp["unique_row_vertices"]
