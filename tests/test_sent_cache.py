"""Tests for the sent-neighbours cache (Section 2.4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.sent_cache import SentCache
from repro.partition.indexing import VertexIndexMap
from repro.types import GridShape


class TestSentCache:
    def test_first_pass_all_fresh(self):
        cache = SentCache(VertexIndexMap([10, 20, 30]))
        out = cache.filter_unsent(np.array([10, 30]))
        assert out.tolist() == [10, 30]
        assert cache.num_sent == 2

    def test_second_pass_filtered(self):
        cache = SentCache(VertexIndexMap([10, 20, 30]))
        cache.filter_unsent(np.array([10, 30]))
        out = cache.filter_unsent(np.array([10, 20, 30]))
        assert out.tolist() == [20]

    def test_empty_input(self):
        cache = SentCache(VertexIndexMap([1]))
        assert cache.filter_unsent(np.array([], dtype=np.int64)).size == 0

    def test_reset(self):
        cache = SentCache(VertexIndexMap([1, 2]))
        cache.filter_unsent(np.array([1, 2]))
        cache.reset()
        assert cache.num_sent == 0
        assert cache.filter_unsent(np.array([1])).tolist() == [1]

    def test_unknown_vertex_rejected(self):
        cache = SentCache(VertexIndexMap([1, 2]))
        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            cache.filter_unsent(np.array([3]))

    def test_len_is_universe_size(self):
        assert len(SentCache(VertexIndexMap([5, 6, 7]))) == 3


class TestCacheEffectOnTraffic:
    def test_cache_reduces_fold_volume(self, small_graph):
        """Dense graphs rediscover neighbours constantly; the cache must cut
        the fold traffic without changing the result."""
        grid = GridShape(2, 4)
        with_cache = run_bfs(
            build_engine(small_graph, grid, opts=BfsOptions(use_sent_cache=True)), 0
        )
        without = run_bfs(
            build_engine(small_graph, grid, opts=BfsOptions(use_sent_cache=False)), 0
        )
        assert np.array_equal(with_cache.levels, without.levels)
        assert (
            with_cache.stats.volume_per_level("fold").sum()
            < without.stats.volume_per_level("fold").sum()
        )

    def test_cache_universe_is_edge_list_vertices(self, small_graph):
        """Storage is one flag per unique vertex in local edge lists -- the
        Section 2.4.1/2.4.3 O(n/P) expectation."""
        engine = build_engine(small_graph, GridShape(2, 4))
        engine.start(0)
        for rank in range(8):
            cache = engine._sent_caches[rank]
            fp = engine.partition.memory_footprint(rank)
            assert len(cache) == fp["unique_row_vertices"]
