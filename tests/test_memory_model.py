"""Tests for the Section 2.4 memory model and the paper's feasibility headline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.memory import (
    BLUEGENE_L_NODE_MEMORY,
    MemoryModel,
    fits_in_memory,
    max_vertices_per_rank,
)
from repro.graph.generators import poisson_random_graph
from repro.partition.two_d import TwoDPartition
from repro.types import GraphSpec, GridShape


class TestMemoryModel:
    def test_paper_headline_fits(self):
        """3.2B vertices / 32B edges on 32768 nodes with 512 MB each."""
        model = MemoryModel(n=100_000 * 32_768, k=10.0, grid=GridShape(128, 256))
        assert fits_in_memory(model, BLUEGENE_L_NODE_MEMORY)
        # and with a healthy margin: under 25% of the node
        assert model.total_bytes < 0.25 * BLUEGENE_L_NODE_MEMORY

    def test_ten_times_larger_does_not_fit(self):
        model = MemoryModel(n=1_000_000 * 32_768, k=10.0, grid=GridShape(128, 256))
        assert not fits_in_memory(model, BLUEGENE_L_NODE_MEMORY)

    def test_breakdown_sums_to_total(self):
        model = MemoryModel(n=10**6, k=16.0, grid=GridShape(16, 16))
        assert sum(model.breakdown().values()) == pytest.approx(model.total_bytes)

    def test_all_components_positive(self):
        model = MemoryModel(n=10**5, k=8.0, grid=GridShape(8, 8))
        for name, value in model.breakdown().items():
            assert value > 0, name

    def test_explicit_buffer_capacity(self):
        capped = MemoryModel(n=10**6, k=10.0, grid=GridShape(16, 16), buffer_capacity=1000)
        auto = MemoryModel(n=10**6, k=10.0, grid=GridShape(16, 16))
        assert capped.buffer_bytes == 2 * 1000 * 8
        assert auto.buffer_bytes > capped.buffer_bytes

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            MemoryModel(n=0, k=1.0, grid=GridShape(2, 2))
        with pytest.raises(ValueError):
            MemoryModel(n=10, k=-1.0, grid=GridShape(2, 2))
        model = MemoryModel(n=10, k=1.0, grid=GridShape(2, 2))
        with pytest.raises(ValueError):
            fits_in_memory(model, usable_fraction=0.0)

    @given(st.integers(4, 12), st.floats(1.0, 100.0))
    @settings(max_examples=30)
    def test_weak_scaling_memory_flat_with_fixed_buffers(self, log_p, k):
        """O(n/P) property with the paper's fixed-length buffers: growing P
        with n/P fixed keeps per-rank memory within a small factor.
        (Without the fixed cap, staging buffers drift toward (n/P)*k —
        exactly the Section 3.2 motivation for point-to-point collectives.)"""
        vpr = 10_000
        small_p, large_p = 4, 1 << log_p
        cap = {"buffer_capacity": 4096}
        small = MemoryModel(n=vpr * small_p, k=k, grid=GridShape(2, 2), **cap)
        a, b = divmod(log_p, 2)
        large = MemoryModel(
            n=vpr * large_p, k=k, grid=GridShape(1 << a, 1 << (a + b)), **cap
        )
        assert large.total_bytes < 3 * small.total_bytes

    def test_unbounded_buffers_drift_with_k(self):
        """Section 3.2: the expected message size approaches (n/P)*k, so
        auto-sized buffers grow with the degree while capped ones do not."""
        grid = GridShape(32, 32)
        auto_low = MemoryModel(n=10**7, k=10.0, grid=grid)
        auto_high = MemoryModel(n=10**7, k=100.0, grid=grid)
        assert auto_high.buffer_bytes > 3 * auto_low.buffer_bytes
        capped_low = MemoryModel(n=10**7, k=10.0, grid=grid, buffer_capacity=4096)
        capped_high = MemoryModel(n=10**7, k=100.0, grid=grid, buffer_capacity=4096)
        assert capped_high.buffer_bytes == capped_low.buffer_bytes

    def test_max_vertices_per_rank_bisection(self):
        grid = GridShape(128, 256)
        cap = max_vertices_per_rank(10.0, grid)
        assert cap >= 100_000  # the paper's run must be allowed
        at_cap = MemoryModel(n=cap * grid.size, k=10.0, grid=grid)
        above = MemoryModel(n=(cap + 1) * grid.size, k=10.0, grid=grid)
        assert fits_in_memory(at_cap)
        assert not fits_in_memory(above)

    def test_higher_degree_needs_more_memory(self):
        grid = GridShape(16, 16)
        low = MemoryModel(n=10**6, k=10.0, grid=grid)
        high = MemoryModel(n=10**6, k=100.0, grid=grid)
        assert high.total_bytes > low.total_bytes


class TestModelAgainstMeasuredFootprints:
    def test_expected_counts_match_partition(self):
        """The gamma expectations must track the real per-rank structure
        sizes on an actual Poisson instance (within statistical slack)."""
        n, k = 6000, 8.0
        grid = GridShape(4, 4)
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=5))
        part = TwoDPartition(graph, grid)
        model = MemoryModel(n=n, k=k, grid=grid)
        measured_entries = np.mean(
            [part.memory_footprint(r)["edge_entries"] for r in range(grid.size)]
        )
        measured_cols = np.mean(
            [part.memory_footprint(r)["nonempty_columns"] for r in range(grid.size)]
        )
        measured_rows = np.mean(
            [part.memory_footprint(r)["unique_row_vertices"] for r in range(grid.size)]
        )
        assert measured_entries == pytest.approx(model.expected_edge_entries, rel=0.15)
        assert measured_cols == pytest.approx(model.expected_nonempty_columns, rel=0.15)
        assert measured_rows == pytest.approx(model.expected_unique_rows, rel=0.15)
