"""Tests for networkx interop and the module entry point."""

from __future__ import annotations

import subprocess
import sys

import networkx as nx
import numpy as np
import pytest

from repro.graph.interop import from_networkx, to_networkx


class TestNetworkxInterop:
    def test_roundtrip(self, small_graph):
        back = from_networkx(to_networkx(small_graph))
        assert back.n == small_graph.n
        assert np.array_equal(back.indptr, small_graph.indptr)
        assert np.array_equal(back.indices, small_graph.indices)

    def test_to_networkx_preserves_structure(self, path_graph):
        g = to_networkx(path_graph)
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 9
        assert nx.is_connected(g)

    def test_from_networkx_requires_integer_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError, match="0..n-1"):
            from_networkx(g)

    def test_from_networkx_empty(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        out = from_networkx(g)
        assert out.n == 4 and out.num_edges == 0

    def test_isolated_vertices_survive(self):
        g = nx.Graph()
        g.add_nodes_from(range(5))
        g.add_edge(0, 1)
        out = from_networkx(g)
        assert out.n == 5
        assert out.degree(4) == 0


def test_python_dash_m_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "crossover", "--n", "1e6", "--p", "100"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    assert "crossover" in proc.stdout
