"""Tests for the virtual runtime: clocks, messages, network, communicator, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BufferOverflowError, CommunicationError
from repro.machine.bluegene import BLUEGENE_L
from repro.machine.cluster import flat_network_for
from repro.machine.mapping import row_major_mapping
from repro.machine.torus import Torus3D
from repro.runtime.clock import SimClock
from repro.runtime.comm import Communicator
from repro.runtime.message import MessageBuffer, chunk_payload
from repro.runtime.network import Network, Transfer
from repro.runtime.stats import CommStats
from repro.types import GridShape


def make_comm(p: int = 4, buffer_capacity=None) -> Communicator:
    grid = GridShape(1, p)
    return Communicator(flat_network_for(grid), BLUEGENE_L, buffer_capacity=buffer_capacity)


class TestSimClock:
    def test_advance_kinds(self):
        clock = SimClock(2)
        clock.advance(0, 1.0, "compute")
        clock.advance(0, 0.5, "comm")
        assert clock.time[0] == 1.5
        assert clock.compute_time[0] == 1.0
        assert clock.comm_time[0] == 0.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock(1).advance(0, -1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SimClock(1).advance(0, 1, "waiting")

    def test_sync_books_wait_as_comm(self):
        clock = SimClock(3)
        clock.advance(1, 2.0)
        horizon = clock.sync()
        assert horizon == 2.0
        assert (clock.time == 2.0).all()
        assert clock.comm_time[0] == 2.0 and clock.comm_time[1] == 0.0

    def test_sync_subset(self):
        clock = SimClock(3)
        clock.advance(0, 5.0)
        clock.sync([1, 2])
        assert clock.time[1] == 0.0  # untouched by rank 0

    def test_sync_duplicate_ranks(self):
        # Fancy-index += applies each duplicate's (identical) wait once, so
        # a rank listed twice behaves exactly like a rank listed once.
        clock = SimClock(3)
        clock.advance(1, 4.0)
        horizon = clock.sync([0, 0, 1])
        assert horizon == 4.0
        assert clock.time[0] == 4.0 and clock.time[1] == 4.0
        assert clock.comm_time[0] == 4.0  # waited once, not twice
        assert clock.comm_time[1] == 0.0
        assert clock.time[2] == 0.0  # not in the barrier

    def test_advance_many(self):
        clock = SimClock(3)
        clock.advance_many(np.array([1.0, 2.0, 3.0]), "comm")
        assert clock.elapsed == 3.0
        assert clock.max_comm_time == 3.0

    def test_advance_many_shape_checked(self):
        with pytest.raises(ValueError):
            SimClock(3).advance_many(np.array([1.0, 2.0]))


class TestMessageBuffers:
    def test_chunking(self):
        chunks = chunk_payload(np.arange(10), 4)
        assert [c.tolist() for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_no_cap_single_chunk(self):
        assert len(chunk_payload(np.arange(10), None)) == 1

    def test_empty_payload_no_chunks(self):
        assert chunk_payload(np.array([], dtype=np.int64), 4) == []

    def test_bad_capacity(self):
        with pytest.raises(BufferOverflowError):
            chunk_payload(np.arange(3), 0)

    def test_buffer_append_drain(self):
        buf = MessageBuffer(5)
        buf.append(np.array([1, 2]))
        buf.append(np.array([3]))
        assert len(buf) == 3 and buf.remaining == 2
        assert buf.drain().tolist() == [1, 2, 3]
        assert len(buf) == 0

    def test_buffer_overflow(self):
        buf = MessageBuffer(2)
        with pytest.raises(BufferOverflowError):
            buf.append(np.array([1, 2, 3]))


class TestNetwork:
    def test_self_send_free(self):
        grid = GridShape(1, 2)
        net = Network(flat_network_for(grid), BLUEGENE_L)
        send, recv = net.round_times([Transfer(0, 0, 100)])
        assert send.sum() == 0 and recv.sum() == 0

    def test_longer_messages_cost_more(self):
        grid = GridShape(1, 2)
        net = Network(flat_network_for(grid), BLUEGENE_L)
        s1, _ = net.round_times([Transfer(0, 1, 10)])
        s2, _ = net.round_times([Transfer(0, 1, 10_000)])
        assert s2[0] > s1[0]

    def test_contention_on_shared_link(self):
        """Two transfers crossing the same physical link slow each other."""
        grid = GridShape(1, 3)
        mapping = row_major_mapping(grid, Torus3D(3, 1, 1))
        net = Network(mapping, BLUEGENE_L)
        lone, _ = net.round_times([Transfer(0, 1, 50_000)])
        # 0->2 routes through node 1 on a 3-ring? No: wrap 0->2 is one hop.
        # Use 0->1 and 0->1-style overlap instead: both 0->1 and 2->1 share
        # no link, so use two transfers over the same directed link 0->1.
        shared, _ = net.round_times([Transfer(0, 1, 50_000), Transfer(0, 1, 50_000)])
        assert shared[0] > lone[0] * 1.5

    def test_hops_reflected(self):
        grid = GridShape(1, 8)
        mapping = row_major_mapping(grid, Torus3D(8, 1, 1))
        net = Network(mapping, BLUEGENE_L)
        assert net.hops(0, 4) == 4
        near, _ = net.round_times([Transfer(0, 1, 0)])
        far, _ = net.round_times([Transfer(0, 4, 0)])
        assert far[0] > near[0]


class TestCommunicator:
    def test_exchange_delivers_exact_payloads(self):
        comm = make_comm(3)
        inbox = comm.exchange({0: {1: np.array([5, 6])}, 2: {1: np.array([7])}}, "fold")
        got = sorted((src, arr.tolist()) for src, arr in inbox[1])
        assert got == [(0, [5, 6]), (2, [7])]

    def test_exchange_charges_time(self):
        comm = make_comm(2)
        comm.exchange({0: {1: np.arange(1000)}}, "fold")
        assert comm.clock.elapsed > 0
        assert comm.clock.max_comm_time > 0

    def test_exchange_chunked_by_capacity(self):
        comm = make_comm(2, buffer_capacity=10)
        inbox = comm.exchange({0: {1: np.arange(25)}}, "fold")
        assert len(inbox[1]) == 3  # 10 + 10 + 5
        assert comm.stats.total_messages == 3

    def test_chunking_preserves_content(self):
        comm = make_comm(2, buffer_capacity=7)
        inbox = comm.exchange({0: {1: np.arange(20)}}, "fold")
        merged = np.concatenate([arr for _src, arr in inbox[1]])
        assert merged.tolist() == list(range(20))

    def test_barrier_syncs(self):
        comm = make_comm(2)
        comm.charge_compute(0, hash_lookups=1_000_000)
        comm.barrier()
        assert comm.clock.time[1] == comm.clock.time[0]

    def test_allreduce_sum(self):
        comm = make_comm(4)
        total = comm.allreduce_sum(np.array([1.0, 2.0, 3.0, 4.0]))
        assert total == 10.0
        assert (comm.clock.time > 0).all()

    def test_allreduce_flag(self):
        comm = make_comm(3)
        assert comm.allreduce_flag(np.array([0.0, 1.0, 0.0]))
        assert not comm.allreduce_flag(np.array([0.0, 0.0, 0.0]))

    def test_allreduce_min(self):
        comm = make_comm(3)
        assert comm.allreduce_min(np.array([3.0, 1.0, 2.0])) == 1.0

    def test_allreduce_shape_checked(self):
        comm = make_comm(3)
        with pytest.raises(CommunicationError):
            comm.allreduce_sum(np.array([1.0]))

    def test_bad_rank_rejected(self):
        comm = make_comm(2)
        with pytest.raises(CommunicationError):
            comm.exchange({5: {0: np.array([1])}}, "fold")

    def test_empty_payload_not_sent(self):
        comm = make_comm(2)
        inbox = comm.exchange({0: {1: np.array([], dtype=np.int64)}}, "fold")
        assert 1 not in inbox
        assert comm.stats.total_messages == 0


class TestCommStats:
    def test_level_lifecycle(self):
        stats = CommStats(2)
        stats.begin_level(0)
        stats.record_message(1, 10, 80, "fold")
        stats.record_delivery(1, 10, "fold")
        stats.record_duplicates(3)
        done = stats.end_level(frontier_size=5)
        assert done.fold_received == 10
        assert done.processed == 10
        assert done.duplicates_eliminated == 3
        assert done.frontier_size == 5

    def test_double_begin_rejected(self):
        stats = CommStats(2)
        stats.begin_level(0)
        with pytest.raises(RuntimeError):
            stats.begin_level(1)

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeError):
            CommStats(2).end_level(0)

    def test_volume_per_level_phases(self):
        stats = CommStats(2)
        for lvl, (e, f) in enumerate([(5, 10), (2, 20)]):
            stats.begin_level(lvl)
            stats.record_delivery(0, e, "expand")
            stats.record_delivery(0, f, "fold")
            stats.end_level(0)
        assert stats.volume_per_level("expand").tolist() == [5, 2]
        assert stats.volume_per_level("fold").tolist() == [10, 20]
        assert stats.volume_per_level().tolist() == [15, 22]

    def test_mean_message_length(self):
        stats = CommStats(4)
        stats.begin_level(0)
        stats.record_delivery(0, 100, "fold")
        stats.end_level(0)
        assert stats.mean_message_length_per_level("fold", 4) == 25.0
        assert stats.mean_message_length_per_level("fold", 0) == 0.0

    def test_redundancy_ratio(self):
        stats = CommStats(2)
        stats.begin_level(0)
        stats.record_message(0, 60, 480, "fold")
        stats.record_duplicates(40)
        stats.end_level(0)
        assert stats.redundancy_ratio == pytest.approx(0.4)

    def test_redundancy_ratio_empty(self):
        assert CommStats(2).redundancy_ratio == 0.0

    def test_messages_outside_levels_still_counted_globally(self):
        stats = CommStats(2)
        stats.record_message(0, 5, 40, "fold")
        assert stats.total_messages == 1
        assert stats.levels == []
