"""Smoke tests for the runnable examples.

The quickstart runs end-to-end (it is fast and self-validating); the
heavier examples are compile-checked and import-checked so that a broken
API surface fails the suite immediately without multi-minute runs.
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in ALL_EXAMPLES}
    assert {"quickstart.py", "semantic_path_search.py", "scaling_study.py",
            "partition_tradeoff.py", "graph500_style.py", "machine_planner.py",
            "distributed_generation.py", "reproduce_all.py"} <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_clean():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    assert "verified against serial BFS: OK" in proc.stdout
