"""Tests for the observability layer: spans, Perfetto export, metrics, digests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import build_communicator, distributed_bfs
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.graph.generators import poisson_random_graph
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.export import results_to_rows
from repro.observability import (
    NULL_RECORDER,
    OBSERVE_PRESETS,
    MetricsRegistry,
    NullRecorder,
    ObservabilityData,
    ObserveSpec,
    SpanRecorder,
    export_artifacts,
    levels_digest,
    result_digests,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.runtime.trace import MessageEvent
from repro.session import BfsSession
from repro.types import SYSTEM_PRESETS, GraphSpec, GridShape, SystemSpec, resolve_system

#: The cross-version reference workload (ROADMAP / CI determinism job).
REFERENCE = GraphSpec(n=20_000, k=8.0, seed=7)


@pytest.fixture(scope="module")
def reference_observed():
    """One fully observed run of the reference workload."""
    graph = poisson_random_graph(REFERENCE)
    return distributed_bfs(graph, (4, 4), 0, observe="full")


@pytest.fixture(scope="module")
def small_observed():
    """A fully observed run over a small graph (fast per-test reuse)."""
    graph = poisson_random_graph(GraphSpec(n=400, k=8, seed=11))
    return distributed_bfs(graph, (2, 2), 0, observe="full")


class TestObserveSpec:
    def test_presets(self):
        assert ObserveSpec.parse("off") == ObserveSpec()
        assert ObserveSpec.parse("spans") == ObserveSpec(spans=True)
        assert ObserveSpec.parse("messages") == ObserveSpec(messages=True)
        assert ObserveSpec.parse("full") == ObserveSpec(spans=True, messages=True)
        assert set(OBSERVE_PRESETS) == {"off", "spans", "messages", "full"}

    def test_none_is_off(self):
        spec = ObserveSpec.parse(None)
        assert not spec.active

    def test_spec_passthrough(self):
        spec = ObserveSpec(spans=True)
        assert ObserveSpec.parse(spec) is spec

    def test_duck_typed(self):
        class Custom:
            spans = True
            messages = False

        spec = ObserveSpec.parse(Custom())
        assert spec == ObserveSpec(spans=True)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            ObserveSpec.parse("verbose")

    def test_bad_object_rejected(self):
        with pytest.raises(ConfigurationError):
            ObserveSpec.parse(42)

    def test_active(self):
        assert not ObserveSpec().active
        assert ObserveSpec(spans=True).active
        assert ObserveSpec(messages=True).active


class _FakeClock:
    def __init__(self):
        self.elapsed = 0.0


class TestSpanRecorder:
    def test_hierarchy(self):
        clock = _FakeClock()
        rec = SpanRecorder(clock)
        run = rec.begin("bfs", cat="run")
        clock.elapsed = 1.0
        level = rec.begin("level 0", cat="level", level=0)
        phase = rec.begin("expand", cat="phase")
        clock.elapsed = 2.0
        rec.end(phase)
        rec.end(level, frontier=7)
        rec.end(run)
        assert run.parent == -1
        assert level.parent == run.sid
        assert phase.parent == level.sid
        assert rec.children_of(run) == [level]
        assert level.args == {"level": 0, "frontier": 7}
        assert phase.sim_begin == 1.0 and phase.sim_end == 2.0
        assert phase.sim_duration == 1.0
        assert phase.wall_duration >= 0.0

    def test_end_pops_forgotten_children(self):
        rec = SpanRecorder(_FakeClock())
        outer = rec.begin("outer", cat="level")
        rec.begin("inner", cat="phase")
        rec.end(outer)
        after = rec.begin("next", cat="level")
        assert after.parent == -1

    def test_context_manager(self):
        rec = SpanRecorder(_FakeClock())
        with rec.span("expand", cat="phase") as span:
            pass
        assert rec.spans == [span]

    def test_phase_totals(self):
        clock = _FakeClock()
        rec = SpanRecorder(clock)
        for dt in (1.0, 2.0):
            span = rec.begin("expand")
            clock.elapsed += dt
            rec.end(span)
        assert rec.phase_totals() == {"expand": 3.0}
        assert rec.phase_totals("wall")["expand"] >= 0.0
        with pytest.raises(ValueError):
            rec.phase_totals("cpu")

    def test_by_cat(self):
        rec = SpanRecorder(_FakeClock())
        rec.end(rec.begin("a", cat="round"))
        rec.end(rec.begin("b", cat="phase"))
        assert [s.name for s in rec.by_cat("round")] == ["a"]


class TestNullRecorder:
    def test_disabled(self):
        assert NULL_RECORDER.enabled is False
        assert SpanRecorder.enabled is True

    def test_noops(self):
        rec = NullRecorder()
        assert rec.begin("x") is None
        assert rec.end(None) is None
        assert rec.spans == ()
        assert rec.by_cat("phase") == []
        assert rec.phase_totals() == {}

    def test_shared_handle(self):
        with NULL_RECORDER.span("x") as span:
            assert span is None
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")


class TestEngineSpans:
    def test_span_tree(self, small_observed):
        obs = small_observed.observability
        runs = [s for s in obs.spans if s.cat == "run"]
        levels = [s for s in obs.spans if s.cat == "level"]
        phases = [s for s in obs.spans if s.cat == "phase"]
        rounds = [s for s in obs.spans if s.cat == "round"]
        exchanges = [s for s in obs.spans if s.cat == "exchange"]
        assert len(runs) == 1
        assert len(levels) == small_observed.num_levels
        assert runs[0].args["levels"] == small_observed.num_levels
        by_sid = {s.sid: s for s in obs.spans}
        assert all(s.parent == runs[0].sid for s in levels)
        # phases nest under their level, or under an enclosing phase
        # (e.g. the union inside a fold)
        assert all(by_sid[s.parent].cat in ("level", "phase") for s in phases)
        assert phases and rounds and exchanges
        assert {s.name for s in phases} <= {
            "expand", "fold", "union", "compute", "fault-recovery"
        }

    def test_level_spans_carry_frontier(self, small_observed):
        levels = [s for s in small_observed.observability.spans if s.cat == "level"]
        frontiers = [s.args["frontier"] for s in levels]
        # every level but the last labels at least one vertex
        assert all(f > 0 for f in frontiers[:-1]) and frontiers[-1] == 0

    def test_1d_engine_spans(self, small_graph):
        result = distributed_bfs(small_graph, (4, 1), 0, layout="1d", observe="spans")
        names = {s.name for s in result.observability.spans if s.cat == "phase"}
        assert {"compute", "fold"} <= names
        assert result.observability.messages == []

    def test_phase_totals_bounded_by_elapsed(self, small_observed):
        totals = small_observed.observability.phase_totals("sim")
        assert sum(totals.values()) <= small_observed.elapsed * (
            1 + 1e-9
        ) * len(totals)

    def test_observation_does_not_change_simulation(self, small_graph):
        plain = distributed_bfs(small_graph, (2, 2), 0)
        observed = distributed_bfs(small_graph, (2, 2), 0, observe="full")
        assert plain.observability is None
        assert plain.elapsed == observed.elapsed
        assert np.array_equal(plain.levels, observed.levels)
        assert plain.stats.total_messages == observed.stats.total_messages

    def test_bidirectional_observed(self, small_graph):
        from repro.api import bidirectional_bfs

        result = bidirectional_bfs(small_graph, (2, 2), 0, 5, observe="full")
        obs = result.observability
        assert obs is not None and obs.messages
        runs = [s for s in obs.spans if s.cat == "run"]
        assert len(runs) == 1 and runs[0].name == "bidirectional bfs"
        assert runs[0].args["path_length"] == result.path_length

    def test_messages_match_stats(self, small_observed):
        obs = small_observed.observability
        assert len(obs.messages) == small_observed.stats.total_messages
        total = sum(e.num_vertices for e in obs.messages)
        assert total == small_observed.stats.total_processed


class TestPerfettoExport:
    def test_reference_workload_validates(self, reference_observed):
        doc = reference_observed.observability.to_chrome_trace()
        validate_chrome_trace(doc)
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        # one named track per rank that actually sent or received a message
        messages = reference_observed.observability.messages
        touched = {e.src for e in messages} | {e.dst for e in messages}
        thread_names = [
            e for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        rank_tracks = {e["tid"] for e in thread_names if e["pid"] == 1}
        assert rank_tracks == touched
        # the 4x4 reference run exercises every rank
        assert len(rank_tracks) == 16
        slices = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(slices) == len(reference_observed.observability.spans)
        assert len(instants) == len(reference_observed.observability.messages)
        assert all("wall_us" in e["args"] for e in slices)

    def test_flow_events_pair_up(self, small_observed):
        doc = small_observed.observability.to_chrome_trace()
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        cross_rank = [e for e in small_observed.observability.messages
                      if e.src != e.dst]
        assert len(starts) == len(cross_rank)

    def test_empty_trace_validates(self):
        doc = to_chrome_trace()
        validate_chrome_trace(doc)
        assert doc["traceEvents"] == []

    def test_spans_only_trace_validates(self):
        rec = SpanRecorder(_FakeClock())
        rec.end(rec.begin("bfs", cat="run"))
        doc = to_chrome_trace(rec.spans)
        validate_chrome_trace(doc)
        assert [e["ph"] for e in doc["traceEvents"]].count("X") == 1

    def test_self_send_only_trace(self):
        events = [MessageEvent(0.5, 2, 2, 10, 40, 40, "fold")]
        doc = to_chrome_trace((), events)
        validate_chrome_trace(doc)
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert "i" in phases  # the instant is kept
        assert "s" not in phases and "f" not in phases  # no arrow to itself

    def test_idle_ranks_get_no_track(self):
        events = [MessageEvent(0.5, 3, 7, 10, 40, 40, "expand")]
        doc = to_chrome_trace((), events, nranks=4096)
        validate_chrome_trace(doc)
        tracks = {
            e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 1
        }
        assert tracks == {3, 7}

    def test_write_trace(self, small_observed, tmp_path):
        path = tmp_path / "trace.json"
        small_observed.observability.write_trace(path)
        validate_chrome_trace(json.loads(path.read_text()))

    @pytest.mark.parametrize(
        "doc",
        [
            {"events": []},
            {"traceEvents": {}},
            {"traceEvents": [{"name": "x", "pid": 0, "tid": 0}]},
            {"traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -1.0, "dur": 0}
            ]},
            {"traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0.0}
            ]},
            {"traceEvents": [
                {"name": "x", "ph": "s", "pid": 0, "tid": 0, "ts": 0.0, "id": 1}
            ]},
        ],
        ids=["no-array", "non-list", "no-ph", "neg-ts", "no-dur", "unmatched-flow"],
    )
    def test_invalid_documents_rejected(self, doc):
        with pytest.raises(ValueError):
            validate_chrome_trace(doc)


class TestMetricsRegistry:
    def test_from_result_matches_stats(self, small_observed):
        reg = MetricsRegistry.from_result(small_observed)
        stats = small_observed.stats
        assert reg.value("bfs_messages_total") == stats.total_messages
        assert reg.value("bfs_bytes_total", kind="raw") == stats.total_bytes
        assert reg.value("bfs_bytes_total", kind="encoded") == stats.total_encoded_bytes
        assert reg.value("bfs_levels_total") == len(stats.levels)
        assert reg.value("bfs_seconds_total", bucket="total") == small_observed.elapsed
        # per-level samples sum to the totals
        per_level = sum(
            reg.value("bfs_level_messages", level=s.level) for s in stats.levels
        )
        assert per_level == stats.total_messages

    def test_fault_samples(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0, faults="mild")
        reg = MetricsRegistry.from_result(result)
        assert "bfs_fault_injected_total" in reg.names()
        assert reg.value("bfs_fault_injected_total") == result.faults.injected

    def test_value_sums_matching_labels(self):
        reg = MetricsRegistry()
        reg.record("m", 1.0, level=0)
        reg.record("m", 2.0, level=1)
        assert reg.value("m") == 3.0
        assert reg.value("m", level=1) == 2.0

    def test_csv_json_round_trip_schema_equality(self, small_observed, tmp_path):
        reg = MetricsRegistry.from_result(small_observed)
        csv_path = tmp_path / "metrics.csv"
        json_path = tmp_path / "metrics.json"
        reg.to_csv(csv_path)
        reg.to_json(json_path)
        from_csv = MetricsRegistry.read_csv(csv_path)
        from_json = MetricsRegistry.read_json(json_path)
        # identical schema AND identical values through both formats
        assert from_csv.rows() == from_json.rows() == reg.rows()
        assert from_csv.samples == from_json.samples == reg.samples

    def test_round_trip_empty(self, tmp_path):
        reg = MetricsRegistry()
        reg.to_csv(tmp_path / "m.csv")
        reg.to_json(tmp_path / "m.json")
        assert MetricsRegistry.read_csv(tmp_path / "m.csv").samples == []
        assert MetricsRegistry.read_json(tmp_path / "m.json").samples == []


class TestDigests:
    def test_repeat_runs_identical(self, small_graph):
        a = distributed_bfs(small_graph, (2, 2), 0, observe="full")
        b = distributed_bfs(small_graph, (2, 2), 0, observe="full")
        # wall clocks differ between the runs; digests must not see them
        assert result_digests(a) == result_digests(b)

    def test_trace_key_requires_messages(self, small_graph):
        plain = distributed_bfs(small_graph, (2, 2), 0)
        observed = distributed_bfs(small_graph, (2, 2), 0, observe="full")
        assert "trace" not in result_digests(plain)
        assert "trace" in result_digests(observed)

    def test_different_runs_differ(self, small_graph, sparse_graph):
        a = result_digests(distributed_bfs(small_graph, (2, 2), 0))
        b = result_digests(distributed_bfs(sparse_graph, (2, 2), 0))
        assert a["levels"] != b["levels"]
        assert a["combined"] != b["combined"]

    def test_levels_digest_sensitivity(self):
        base = np.array([0, 1, 2, -1], dtype=np.int32)
        tweaked = base.copy()
        tweaked[3] = 3
        assert levels_digest(base) != levels_digest(tweaked)
        assert levels_digest(base) == levels_digest(base.copy())


class TestSystemSpecObserve:
    def test_axis_validation(self):
        assert SystemSpec(observe="full").observe == "full"
        with pytest.raises(ConfigurationError):
            SystemSpec(observe="everything")
        with pytest.raises(ConfigurationError):
            SystemSpec(observe=3.5)

    def test_axis_accepts_spec_object(self):
        spec = SystemSpec(observe=ObserveSpec(spans=True))
        assert spec.observe.spans is True

    def test_resolve_override(self):
        spec = resolve_system("bluegene-2d", observe="spans")
        assert spec.observe == "spans"
        assert resolve_system("bluegene-2d").observe == "off"

    def test_observed_preset(self):
        assert SYSTEM_PRESETS["bluegene-2d-observed"].observe == "full"

    def test_build_communicator_observe(self):
        comm = build_communicator(GridShape(2, 2), observe="spans")
        assert comm.observe == ObserveSpec(spans=True)
        assert comm.obs.enabled and comm.obs_trace is None
        plain = build_communicator(GridShape(2, 2))
        assert plain.obs is NULL_RECORDER and plain.obs_trace is None

    def test_session_observe(self, small_graph):
        session = BfsSession(small_graph, (2, 2), observe="spans")
        result = session.bfs(0)
        assert result.observability is not None
        assert result.observability.spans and not result.observability.messages

    def test_experiment_observe_column(self):
        config = ExperimentConfig(
            name="obs", graph=GraphSpec(n=150, k=5, seed=1),
            grid=GridShape(2, 2), observe="spans",
        )
        result = run_experiment(config)
        assert result.runs[0].observability is not None
        rows = results_to_rows([result])
        assert rows[0]["observe"] == "spans"


class TestArtifacts:
    def test_export_artifacts(self, small_observed, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        written = export_artifacts(
            small_observed, trace_out=trace, metrics_out=metrics
        )
        assert written == [trace, metrics]
        validate_chrome_trace(json.loads(trace.read_text()))
        assert MetricsRegistry.read_json(metrics).samples

    def test_trace_requires_observed_run(self, small_graph, tmp_path):
        plain = distributed_bfs(small_graph, (2, 2), 0)
        with pytest.raises(ValueError):
            export_artifacts(plain, trace_out=tmp_path / "t.json")
        # metrics need no observability
        export_artifacts(plain, metrics_out=tmp_path / "m.csv")
        assert (tmp_path / "m.csv").exists()

    def test_observability_data_defaults(self):
        data = ObservabilityData()
        validate_chrome_trace(data.to_chrome_trace())
        assert data.phase_totals() == {}


class TestCli:
    def test_bfs_writes_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.csv"
        code = cli_main([
            "bfs", "--n", "300", "--k", "6", "--seed", "2", "--grid", "2x2",
            "--source", "0", "--trace-out", str(trace),
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        validate_chrome_trace(json.loads(trace.read_text()))
        assert MetricsRegistry.read_csv(metrics).value("bfs_messages_total") > 0
        assert str(trace) in capsys.readouterr().out

    def test_bidir_observe(self, tmp_path):
        trace = tmp_path / "trace.json"
        code = cli_main([
            "bidir", "--n", "300", "--k", "6", "--seed", "2", "--grid", "2x2",
            "--source", "0", "--target", "5", "--trace-out", str(trace),
        ])
        assert code == 0
        validate_chrome_trace(json.loads(trace.read_text()))

    def test_digest_subcommand_deterministic(self, capsys):
        argv = ["digest", "--n", "300", "--k", "6", "--seed", "2",
                "--grid", "2x2", "--observe", "full"]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert cli_main(argv) == 0
        assert capsys.readouterr().out == first
        lines = dict(line.split() for line in first.strip().splitlines())
        assert set(lines) == {"levels", "stats", "clock", "trace", "combined"}
        assert all(len(d) == 64 for d in lines.values())
