"""Tests for vertex relabeling (load balance on skewed graphs)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import distributed_bfs
from repro.bfs.serial import serial_bfs
from repro.errors import PartitionError
from repro.graph.csr import CsrGraph
from repro.graph.generators import rmat_edges
from repro.partition.balance import balance_report
from repro.partition.permutation import VertexRelabeling, relabel_graph
from repro.partition.two_d import TwoDPartition
from repro.types import GridShape
from repro.utils.rng import RngFactory


def rmat_graph(scale=10, ef=8, seed=4) -> CsrGraph:
    rng = RngFactory(seed).named("test-rmat")
    return CsrGraph.from_edges(1 << scale, rmat_edges(scale, ef, rng))


class TestVertexRelabeling:
    def test_random_is_permutation(self):
        relab = VertexRelabeling.random(100, seed=1)
        assert np.array_equal(np.sort(relab.to_new), np.arange(100))

    def test_roundtrip(self):
        relab = VertexRelabeling.random(50, seed=2)
        ids = np.arange(50)
        assert np.array_equal(relab.old_id(relab.new_id(ids)), ids)
        assert np.array_equal(relab.new_id(relab.old_id(ids)), ids)

    def test_identity(self):
        relab = VertexRelabeling.identity(10)
        assert np.array_equal(relab.new_id(np.arange(10)), np.arange(10))

    def test_non_permutation_rejected(self):
        with pytest.raises(PartitionError):
            VertexRelabeling(np.array([0, 0, 2]))

    def test_out_of_range_rejected(self):
        relab = VertexRelabeling.identity(5)
        with pytest.raises(PartitionError):
            relab.new_id(np.array([5]))

    def test_apply_preserves_structure(self, small_graph):
        relabeled, relab = relabel_graph(small_graph, seed=3)
        assert relabeled.num_edges == small_graph.num_edges
        # edge (u,v) in original <=> (new(u), new(v)) in relabeled
        for u in (0, 17, 101):
            for v in small_graph.neighbors(u):
                assert relabeled.has_edge(
                    int(relab.new_id(np.array([u]))[0]),
                    int(relab.new_id(np.array([int(v)]))[0]),
                )

    def test_apply_wrong_size_rejected(self, small_graph):
        with pytest.raises(PartitionError):
            VertexRelabeling.identity(3).apply(small_graph)

    def test_restore_levels(self, small_graph):
        relabeled, relab = relabel_graph(small_graph, seed=5)
        source_old = 7
        source_new = int(relab.new_id(np.array([source_old]))[0])
        restored = relab.restore_levels(serial_bfs(relabeled, source_new))
        assert np.array_equal(restored, serial_bfs(small_graph, source_old))

    @given(st.integers(0, 1000), st.integers(1, 60))
    @settings(max_examples=25)
    def test_bijection_property(self, seed, n):
        relab = VertexRelabeling.random(n, seed)
        assert np.array_equal(relab.to_old[relab.to_new], np.arange(n))


class TestLoadBalanceOnSkewedGraphs:
    def test_relabeling_fixes_rmat_imbalance(self):
        """R-MAT hubs cluster at low ids; contiguous blocks are then badly
        imbalanced.  Random relabeling must cut the imbalance sharply."""
        graph = rmat_graph()
        grid = GridShape(4, 4)
        before = balance_report(TwoDPartition(graph, grid), "edge_entries")
        relabeled, _ = relabel_graph(graph, seed=9)
        after = balance_report(TwoDPartition(relabeled, grid), "edge_entries")
        assert before.imbalance > 1.5  # skew is real
        assert after.imbalance < before.imbalance * 0.7

    def test_bfs_on_relabeled_rmat_correct(self):
        graph = rmat_graph(scale=9)
        relabeled, relab = relabel_graph(graph, seed=11)
        source_old = int(np.argmax(graph.degree()))  # the biggest hub
        source_new = int(relab.new_id(np.array([source_old]))[0])
        result = distributed_bfs(relabeled, (2, 4), source_new)
        restored = relab.restore_levels(result.levels)
        assert np.array_equal(restored, serial_bfs(graph, source_old))
