"""Tests for repro.graph.diameter and repro.graph.io."""

from __future__ import annotations

import numpy as np
import networkx as nx
import pytest

from repro.graph.csr import CsrGraph
from repro.graph.diameter import (
    bfs_levels,
    double_sweep_lower_bound,
    eccentricity,
    estimate_diameter,
)
from repro.graph.generators import poisson_random_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.types import GraphSpec, UNREACHED


def to_networkx(graph: CsrGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edge_array().tolist())
    return g


class TestBfsLevels:
    def test_path_graph(self, path_graph):
        levels = bfs_levels(path_graph, 0)
        assert levels.tolist() == list(range(10))

    def test_star_graph(self, star_graph):
        levels = bfs_levels(star_graph, 1)
        assert levels[1] == 0 and levels[0] == 1
        assert (levels[2:] == 2).all()

    def test_disconnected_marked_unreached(self):
        g = CsrGraph.from_edges(4, np.array([[0, 1]]))
        levels = bfs_levels(g, 0)
        assert levels.tolist() == [0, 1, UNREACHED, UNREACHED]

    def test_matches_networkx(self, small_graph):
        levels = bfs_levels(small_graph, 7)
        sp = nx.single_source_shortest_path_length(to_networkx(small_graph), 7)
        for v, d in sp.items():
            assert levels[v] == d
        assert (levels != UNREACHED).sum() == len(sp)

    def test_bad_source(self, path_graph):
        with pytest.raises(IndexError):
            bfs_levels(path_graph, 10)


class TestDiameterEstimates:
    def test_eccentricity_path(self, path_graph):
        assert eccentricity(path_graph, 0) == 9
        assert eccentricity(path_graph, 5) == 5

    def test_double_sweep_exact_on_path(self, path_graph):
        assert double_sweep_lower_bound(path_graph, 4) == 9

    def test_double_sweep_is_lower_bound(self, small_graph):
        true_diam = max(
            max(d.values())
            for _n, d in nx.all_pairs_shortest_path_length(to_networkx(small_graph))
        )
        assert double_sweep_lower_bound(small_graph) <= true_diam

    def test_estimate_diameter_reasonable(self, small_graph):
        est = estimate_diameter(small_graph, samples=3)
        assert est >= 2

    def test_log_n_growth(self):
        """Random-graph diameter grows slowly with n (the paper's log-n law)."""
        diam_small = estimate_diameter(poisson_random_graph(GraphSpec(500, 10, seed=1)))
        diam_large = estimate_diameter(poisson_random_graph(GraphSpec(8000, 10, seed=1)))
        assert diam_large <= diam_small + 4  # 16x vertices, only ~log2(16)/log2(10) more

    def test_empty_graph(self):
        assert estimate_diameter(CsrGraph.empty(0)) == 0
        assert eccentricity(CsrGraph.empty(3), 0) == 0


class TestIo:
    def test_npz_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "graph.npz"
        write_edge_list(small_graph, path)
        loaded = read_edge_list(path)
        assert loaded.n == small_graph.n
        assert np.array_equal(loaded.indices, small_graph.indices)

    def test_text_roundtrip(self, path_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(path_graph, path)
        loaded = read_edge_list(path)
        assert loaded.n == path_graph.n
        assert np.array_equal(loaded.indptr, path_graph.indptr)

    def test_text_empty_graph(self, tmp_path):
        g = CsrGraph.empty(5)
        path = tmp_path / "empty.txt"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.n == 5 and loaded.num_edges == 0

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="header"):
            read_edge_list(path)
