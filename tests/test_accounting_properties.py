"""Property tests on the cost/volume accounting itself.

These pin down *model* invariants (not just algorithm semantics): unions
never increase wire volume, contention never speeds anything up, delivered
counts equal what was addressed, and simulated time decomposes exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.base import get_fold
from repro.machine.bluegene import BLUEGENE_L
from repro.machine.mapping import row_major_mapping
from repro.machine.torus import Torus3D
from repro.runtime.comm import Communicator
from repro.types import GridShape, VERTEX_DTYPE

SLOW = settings(max_examples=25, deadline=None)


def torus_comm(p: int) -> Communicator:
    grid = GridShape(1, p)
    return Communicator(row_major_mapping(grid, Torus3D(p, 1, 1)), BLUEGENE_L)


def random_outboxes(size: int, seed: int, dense: bool = False):
    rng = np.random.default_rng(seed)
    out = []
    for _g in range(size):
        per_dest = {}
        for d in range(size):
            if dense or rng.random() < 0.6:
                per_dest[d] = rng.integers(0, 25, int(rng.integers(0, 15))).astype(
                    VERTEX_DTYPE
                )
        out.append(per_dest)
    return out


@given(size=st.integers(2, 7), seed=st.integers(0, 10**6))
@SLOW
def test_union_ring_never_moves_more_than_plain_ring(size, seed):
    outboxes = random_outboxes(size, seed, dense=True)
    plain = torus_comm(size)
    get_fold("ring").fold(plain, list(range(size)), outboxes)
    union = torus_comm(size)
    get_fold("union-ring").fold(union, list(range(size)), outboxes)
    assert union.stats.total_processed <= plain.stats.total_processed


@given(size=st.integers(2, 7), seed=st.integers(0, 10**6))
@SLOW
def test_direct_fold_delivers_exactly_what_was_addressed(size, seed):
    outboxes = random_outboxes(size, seed)
    comm = torus_comm(size)
    comm.stats.begin_level(0)
    get_fold("direct").fold(comm, list(range(size)), outboxes)
    level = comm.stats.end_level(0)
    addressed = sum(
        int(np.size(payload))
        for g, per_dest in enumerate(outboxes)
        for d, payload in per_dest.items()
        if d != g
    )
    assert level.fold_received == addressed
    assert level.processed == addressed  # one hop: processed == delivered


@given(size=st.integers(2, 7), seed=st.integers(0, 10**6))
@SLOW
def test_clock_decomposes_exactly(size, seed):
    comm = torus_comm(size)
    get_fold("union-ring").fold(comm, list(range(size)), random_outboxes(size, seed))
    comm.allreduce_sum(np.zeros(size))
    assert np.allclose(comm.clock.time, comm.clock.comm_time + comm.clock.compute_time)
    assert (comm.clock.time >= 0).all()


@given(seed=st.integers(0, 10**6), scale=st.integers(1, 5))
@SLOW
def test_contention_is_monotone_in_load(seed, scale):
    """Adding more traffic over the same link never reduces anyone's time."""
    from repro.runtime.network import Network, Transfer

    grid = GridShape(1, 4)
    net = Network(row_major_mapping(grid, Torus3D(4, 1, 1)), BLUEGENE_L)
    rng = np.random.default_rng(seed)
    base = [Transfer(0, 1, int(rng.integers(1, 10_000)))]
    extra = base + [Transfer(0, 1, int(rng.integers(1, 10_000))) for _ in range(scale)]
    base_send, _ = net.round_times(base)
    extra_send, _ = net.round_times(extra)
    assert extra_send[0] >= base_send[0]


@given(size=st.integers(2, 6), seed=st.integers(0, 10**6))
@SLOW
def test_lockstep_no_faster_than_groups_alone(size, seed):
    """Running two disjoint groups in lockstep can only add contention, so
    the makespan is at least each group's standalone makespan."""
    outboxes_a = random_outboxes(size, seed)
    outboxes_b = random_outboxes(size, seed + 1)
    total = 2 * size
    groups = [list(range(size)), list(range(size, total))]

    lock = torus_comm(total)
    get_fold("direct").fold_many(lock, groups, [outboxes_a, outboxes_b])

    alone_times = []
    for group, outboxes in zip(groups, (outboxes_a, outboxes_b)):
        comm = torus_comm(total)
        get_fold("direct").fold(comm, group, outboxes)
        alone_times.append(comm.clock.elapsed)
    assert lock.clock.elapsed >= max(alone_times) - 1e-12
