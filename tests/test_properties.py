"""Flagship property-based tests: distributed == serial, everywhere.

These hypothesis suites hammer the whole stack with random graphs, random
meshes, random sources, and random algorithm configurations, asserting the
one invariant that matters: every distributed variant computes exactly the
serial BFS level array.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import build_communicator, build_engine
from repro.bfs.bidirectional import run_bidirectional_bfs
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.graph.csr import CsrGraph
from repro.graph.generators import gnm_edges, poisson_random_graph
from repro.types import GraphSpec, GridShape
from repro.utils.rng import RngFactory

SLOW = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def random_graph(seed: int, n: int, m: int) -> CsrGraph:
    rng = RngFactory(seed).named("prop-graph")
    m = min(m, n * (n - 1) // 2)
    return CsrGraph.from_edges(n, gnm_edges(n, m, rng))


@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 120),
    density=st.floats(0.0, 3.0),
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    expand=st.sampled_from(["direct", "ring", "two-phase", "recursive-doubling"]),
    fold=st.sampled_from(["direct", "ring", "union-ring", "two-phase", "bruck"]),
    cache=st.booleans(),
)
@SLOW
def test_2d_bfs_equals_serial(seed, n, density, rows, cols, expand, fold, cache):
    graph = random_graph(seed, n, int(n * density))
    source = seed % n
    opts = BfsOptions(
        expand_collective=expand, fold_collective=fold, use_sent_cache=cache
    )
    engine = build_engine(graph, GridShape(rows, cols), opts=opts)
    result = run_bfs(engine, source)
    assert np.array_equal(result.levels, serial_bfs(graph, source))


@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 120),
    density=st.floats(0.0, 3.0),
    p=st.integers(1, 8),
    fold=st.sampled_from(["direct", "ring", "union-ring", "two-phase", "bruck"]),
    as_row=st.booleans(),
)
@SLOW
def test_1d_bfs_equals_serial(seed, n, density, p, fold, as_row):
    graph = random_graph(seed, n, int(n * density))
    source = (seed * 7) % n
    grid = GridShape(p, 1) if as_row else GridShape(1, p)
    opts = BfsOptions(fold_collective=fold)
    engine = build_engine(graph, grid, layout="1d", opts=opts)
    result = run_bfs(engine, source)
    assert np.array_equal(result.levels, serial_bfs(graph, source))


@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 100),
    density=st.floats(0.0, 2.5),
    rows=st.integers(1, 3),
    cols=st.integers(1, 3),
)
@SLOW
def test_bidirectional_distance_equals_serial(seed, n, density, rows, cols):
    graph = random_graph(seed, n, int(n * density))
    rng = np.random.default_rng(seed)
    s, t = (int(x) for x in rng.integers(0, n, 2))
    grid = GridShape(rows, cols)
    comm = build_communicator(grid)
    forward = build_engine(graph, grid, comm=comm)
    backward = build_engine(graph, grid, comm=comm)
    result = run_bidirectional_bfs(forward, backward, s, t)
    expected = int(serial_bfs(graph, s)[t])
    assert result.path_length == (None if expected < 0 else expected)


@given(seed=st.integers(0, 10**6), capacity=st.integers(1, 64))
@SLOW
def test_buffer_capacity_never_changes_levels(seed, capacity):
    """Section 3.1 fixed-length buffers are a pure performance knob."""
    graph = poisson_random_graph(GraphSpec(n=150, k=5, seed=seed % 11))
    source = seed % graph.n
    capped = run_bfs(
        build_engine(graph, (2, 3), opts=BfsOptions(buffer_capacity=capacity)), source
    )
    uncapped = run_bfs(build_engine(graph, (2, 3)), source)
    assert np.array_equal(capped.levels, uncapped.levels)


@given(seed=st.integers(0, 10**6))
@settings(max_examples=10, deadline=None)
def test_machine_model_never_changes_levels(seed):
    """Time models (BG/L vs MCR, planar vs row-major) affect clocks only."""
    graph = poisson_random_graph(GraphSpec(n=200, k=6, seed=seed % 13))
    source = seed % graph.n
    results = [
        run_bfs(build_engine(graph, (2, 4), machine=m, mapping=mp), source)
        for m, mp in (("bluegene", "planar"), ("bluegene", "row-major"), ("mcr", "planar"))
    ]
    for other in results[1:]:
        assert np.array_equal(results[0].levels, other.levels)


@given(
    seed=st.integers(0, 10**6),
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
)
@SLOW
def test_message_statistics_are_deterministic(seed, rows, cols):
    graph = poisson_random_graph(GraphSpec(n=180, k=5, seed=seed % 17))
    source = seed % graph.n

    def run():
        return run_bfs(build_engine(graph, GridShape(rows, cols)), source)

    a, b = run(), run()
    assert a.elapsed == b.elapsed
    assert a.stats.total_messages == b.stats.total_messages
    assert np.array_equal(a.stats.volume_per_level(), b.stats.volume_per_level())


@given(seed=st.integers(0, 10**6))
@settings(max_examples=10, deadline=None)
def test_levels_are_valid_bfs_labelling(seed):
    """Structural invariant, independent of the oracle: labelled vertices
    have a neighbour one level closer, and no edge spans more than one level."""
    graph = poisson_random_graph(GraphSpec(n=150, k=4, seed=seed % 19))
    source = seed % graph.n
    levels = run_bfs(build_engine(graph, (2, 2)), source).levels
    assert levels[source] == 0
    for v in range(graph.n):
        lv = levels[v]
        if lv <= 0:
            continue
        neigh = graph.neighbors(v)
        assert neigh.size and (levels[neigh] != -1).any()
        closer = levels[neigh][levels[neigh] >= 0]
        assert closer.min() == lv - 1
    for u, v in graph.edge_array():
        lu, lv = levels[int(u)], levels[int(v)]
        if lu >= 0 and lv >= 0:
            assert abs(lu - lv) <= 1
        else:
            assert lu == lv == -1  # components never straddle the frontier
