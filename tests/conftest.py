"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CsrGraph
from repro.graph.generators import poisson_random_graph
from repro.types import GraphSpec


@pytest.fixture(scope="session")
def small_graph() -> CsrGraph:
    """A 400-vertex Poisson graph with average degree ~8 (connected core)."""
    return poisson_random_graph(GraphSpec(n=400, k=8, seed=11))


@pytest.fixture(scope="session")
def sparse_graph() -> CsrGraph:
    """A sparser 300-vertex graph (k~3) with several components."""
    return poisson_random_graph(GraphSpec(n=300, k=3, seed=5))


@pytest.fixture()
def path_graph() -> CsrGraph:
    """A deterministic 10-vertex path: distances are trivially checkable."""
    edges = np.array([[i, i + 1] for i in range(9)])
    return CsrGraph.from_edges(10, edges)


@pytest.fixture()
def star_graph() -> CsrGraph:
    """A 9-leaf star centred on vertex 0."""
    edges = np.array([[0, i] for i in range(1, 10)])
    return CsrGraph.from_edges(10, edges)
