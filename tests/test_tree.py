"""Tests for BFS tree construction and Graph500-style validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import distributed_bfs
from repro.bfs.serial import serial_bfs
from repro.bfs.tree import (
    NO_PARENT,
    ROOT,
    build_parent_tree,
    validate_bfs_result,
)
from repro.errors import SearchError
from repro.graph.csr import CsrGraph
from repro.graph.generators import poisson_random_graph
from repro.types import GraphSpec, UNREACHED


class TestBuildParentTree:
    def test_path_graph(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        parents = build_parent_tree(path_graph, levels)
        assert parents[0] == ROOT
        assert parents[1:].tolist() == list(range(9))

    def test_star_graph(self, star_graph):
        levels = serial_bfs(star_graph, 0)
        parents = build_parent_tree(star_graph, levels)
        assert parents[0] == ROOT
        assert (parents[1:] == 0).all()

    def test_unreached_get_no_parent(self):
        g = CsrGraph.from_edges(4, np.array([[0, 1]]))
        parents = build_parent_tree(g, serial_bfs(g, 0))
        assert parents.tolist() == [ROOT, 0, NO_PARENT, NO_PARENT]

    def test_smallest_parent_chosen(self):
        # 0-2, 1-2 and 0,1 both at level... build: source 0, edges 0-1, 0-2, 1-3, 2-3
        g = CsrGraph.from_edges(4, np.array([[0, 1], [0, 2], [1, 3], [2, 3]]))
        parents = build_parent_tree(g, serial_bfs(g, 0))
        assert parents[3] == 1  # both 1 and 2 qualify; smallest id wins

    def test_invalid_levels_rejected(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        levels[5] = 99  # orphan level
        with pytest.raises(SearchError, match="not a BFS labelling"):
            build_parent_tree(path_graph, levels)

    def test_shape_checked(self, path_graph):
        with pytest.raises(SearchError):
            build_parent_tree(path_graph, np.zeros(3, dtype=np.int64))

    def test_parents_on_distributed_result(self, small_graph):
        result = distributed_bfs(small_graph, (2, 4), 3)
        parents = build_parent_tree(small_graph, result.levels)
        report = validate_bfs_result(small_graph, 3, result.levels, parents)
        assert report.ok, str(report)


class TestValidateBfsResult:
    def test_valid_result_passes(self, small_graph):
        levels = serial_bfs(small_graph, 0)
        report = validate_bfs_result(small_graph, 0, levels)
        assert report.ok
        assert set(report.checks) == {
            "root-level", "edge-span", "connectivity", "level-support",
        }

    def test_detects_wrong_root(self, small_graph):
        levels = serial_bfs(small_graph, 0)
        levels[0] = 1
        report = validate_bfs_result(small_graph, 0, levels)
        assert not report.checks["root-level"]

    def test_detects_edge_span_violation(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        levels[5] = 99
        report = validate_bfs_result(path_graph, 0, levels)
        assert not report.checks["edge-span"]

    def test_detects_unreached_neighbour_of_reached(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        levels[9] = UNREACHED
        report = validate_bfs_result(path_graph, 0, levels)
        assert not report.checks["connectivity"]

    def test_detects_unsupported_level(self):
        g = CsrGraph.from_edges(3, np.array([[0, 1], [1, 2]]))
        levels = np.array([0, 1, 3])  # vertex 2 claims level 3, support is 2
        report = validate_bfs_result(g, 0, levels)
        assert not report.ok

    def test_detects_bad_parent(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        parents = build_parent_tree(path_graph, levels)
        parents[5] = 9  # not a neighbour one closer
        report = validate_bfs_result(path_graph, 0, levels, parents)
        assert not report.checks["parent-edges"]

    def test_detects_parent_root_mismatch(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        parents = build_parent_tree(path_graph, levels)
        parents[0] = NO_PARENT  # source must be ROOT
        report = validate_bfs_result(path_graph, 0, levels, parents)
        assert not report.checks["parent-edges"]

    def test_str_and_report_api(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        report = validate_bfs_result(path_graph, 0, levels)
        assert report.ok
        report.record("extra", False, "injected failure")
        assert not report.ok
        assert "injected failure" in report.messages[0]

    def test_bad_source_rejected(self, path_graph):
        with pytest.raises(SearchError):
            validate_bfs_result(path_graph, 99, serial_bfs(path_graph, 0))


@given(seed=st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_property_distributed_results_always_validate(seed):
    graph = poisson_random_graph(GraphSpec(n=200, k=5, seed=seed % 23))
    source = seed % graph.n
    result = distributed_bfs(graph, (2, 2), source)
    parents = build_parent_tree(graph, result.levels)
    report = validate_bfs_result(graph, source, result.levels, parents)
    assert report.ok, str(report)
