"""Tests for the many-group lockstep collective driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives.base import get_expand, get_fold
from repro.errors import CommunicationError
from repro.machine.bluegene import BLUEGENE_L
from repro.machine.mapping import row_major_mapping
from repro.machine.torus import Torus3D
from repro.runtime.comm import Communicator
from repro.types import GridShape, VERTEX_DTYPE

FOLD_NAMES = ["direct", "ring", "union-ring", "two-phase", "bruck"]
EXPAND_NAMES = ["direct", "ring", "two-phase", "recursive-doubling"]


def torus_comm(p: int) -> Communicator:
    grid = GridShape(1, p)
    return Communicator(row_major_mapping(grid, Torus3D(p, 1, 1)), BLUEGENE_L)


def make_outboxes(group_size: int, base: int) -> list[dict[int, np.ndarray]]:
    return [
        {d: np.array([base + g * 10 + d], dtype=VERTEX_DTYPE) for d in range(group_size)}
        for g in range(group_size)
    ]


@pytest.mark.parametrize("fold_name", FOLD_NAMES)
class TestFoldMany:
    def test_matches_per_group_results(self, fold_name):
        """fold_many over disjoint groups delivers the same sets as
        independent per-group fold calls."""
        groups = [[0, 1, 2], [3, 4, 5]]
        outboxes = [make_outboxes(3, 100), make_outboxes(3, 200)]
        many = get_fold(fold_name).fold_many(torus_comm(6), groups, outboxes)
        for gi, group in enumerate(groups):
            single = get_fold(fold_name).fold(torus_comm(6), group, outboxes[gi])
            for d in range(len(group)):
                got_many = (
                    set(np.concatenate(many[gi][d]).tolist()) if many[gi][d] else set()
                )
                got_single = (
                    set(np.concatenate(single[d]).tolist()) if single[d] else set()
                )
                assert got_many == got_single

    def test_overlapping_groups_rejected(self, fold_name):
        comm = torus_comm(4)
        with pytest.raises(CommunicationError, match="more than one"):
            get_fold(fold_name).fold_many(
                comm, [[0, 1], [1, 2]], [make_outboxes(2, 0), make_outboxes(2, 0)]
            )

    def test_group_count_mismatch_rejected(self, fold_name):
        comm = torus_comm(4)
        with pytest.raises(CommunicationError):
            get_fold(fold_name).fold_many(comm, [[0, 1]], [])


@pytest.mark.parametrize("expand_name", EXPAND_NAMES)
class TestExpandMany:
    def test_matches_per_group_results(self, expand_name):
        groups = [[0, 1, 2], [3, 4, 5]]
        contributions = [
            [np.array([10 * g], dtype=VERTEX_DTYPE) for g in range(3)],
            [np.array([77 + g], dtype=VERTEX_DTYPE) for g in range(3)],
        ]
        many = get_expand(expand_name).expand_many(torus_comm(6), groups, contributions)
        for gi, group in enumerate(groups):
            single = get_expand(expand_name).expand(
                torus_comm(6), group, contributions[gi]
            )
            for m in range(len(group)):
                got_many = (
                    set(np.concatenate(many[gi][m]).tolist()) if many[gi][m] else set()
                )
                got_single = (
                    set(np.concatenate(single[m]).tolist()) if single[m] else set()
                )
                assert got_many == got_single


class TestLockstepContention:
    def test_lockstep_groups_contend(self):
        """Two groups whose routes share torus links must be slower when run
        in lockstep than a single group running alone — the fidelity the
        lockstep mode adds."""
        payload = np.arange(50_000, dtype=VERTEX_DTYPE)
        # On an 8-node ring, groups [0..3] and [4..7]: ring fold traffic of
        # group 0 crosses links also used by ... use direct fold where
        # 0->3 and 4->7 routes share no links; instead send 0->3 and 1->2:
        # overlapping segments on the line 0-1-2-3.
        groups = [[0, 3], [1, 2]]
        outboxes = [
            [{1: payload}, {}],  # 0 -> 3 (route 0-1-2-3)
            [{1: payload}, {}],  # 1 -> 2 (route 1-2)
        ]
        comm_lock = torus_comm(8)
        get_fold("direct").fold_many(comm_lock, groups, outboxes)
        lock_time = comm_lock.clock.elapsed

        comm_seq_a = torus_comm(8)
        get_fold("direct").fold(comm_seq_a, groups[0], outboxes[0])
        comm_seq_b = torus_comm(8)
        get_fold("direct").fold(comm_seq_b, groups[1], outboxes[1])
        alone = max(comm_seq_a.clock.elapsed, comm_seq_b.clock.elapsed)
        assert lock_time > alone * 1.3  # shared 1-2 link halves bandwidth

    def test_disjoint_routes_do_not_contend(self):
        payload = np.arange(50_000, dtype=VERTEX_DTYPE)
        groups = [[0, 1], [4, 5]]
        outboxes = [[{1: payload}, {}], [{1: payload}, {}]]
        comm_lock = torus_comm(8)
        get_fold("direct").fold_many(comm_lock, groups, outboxes)
        comm_alone = torus_comm(8)
        get_fold("direct").fold(comm_alone, groups[0], outboxes[0])
        assert comm_lock.clock.elapsed == pytest.approx(
            comm_alone.clock.elapsed, rel=1e-9
        )
