"""First-class R-MAT workloads: GraphSpec.kind, generation, partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.frontier_model import (
    frontier_fractions_for,
    predict_frontier_fractions,
)
from repro.errors import ConfigurationError, PartitionError
from repro.graph.distributed_gen import DistributedGraphBuilder
from repro.graph.generators import build_graph, rmat_edges
from repro.partition import balance_report, degree_aware_relabeling
from repro.partition.one_d import OneDPartition
from repro.session import BfsSession
from repro.types import GraphSpec, GridShape
from repro.utils.rng import RngFactory


class TestGraphSpecKind:
    def test_default_is_poisson(self):
        spec = GraphSpec(n=100, k=4.0)
        assert spec.kind == "poisson"
        assert spec.scale is None

    def test_rmat_constructor(self):
        spec = GraphSpec.rmat(10, edge_factor=8, seed=7)
        assert spec.kind == "rmat"
        assert spec.n == 1024 and spec.scale == 10
        assert spec.edge_factor == 8
        assert spec.k == 16.0  # undirected degree: 2 * edge_factor
        assert spec.expected_edges == 1024 * 8

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            GraphSpec(n=100, k=4.0, kind="smallworld")

    def test_rmat_needs_consistent_scale(self):
        with pytest.raises(ValueError):
            GraphSpec(n=100, k=4.0, kind="rmat")  # no scale
        with pytest.raises(ValueError):
            GraphSpec(n=100, k=4.0, kind="rmat", scale=10)  # n != 2**scale

    def test_scale_only_valid_for_rmat(self):
        with pytest.raises(ValueError):
            GraphSpec(n=1024, k=4.0, scale=10)

    def test_rmat_parameter_validation(self):
        with pytest.raises(ValueError):
            GraphSpec.rmat(10, edge_factor=0)
        with pytest.raises(ValueError):
            GraphSpec.rmat(10, a=-0.1)


class TestRmatProperties:
    def _edges(self, seed=3, scale=10, edge_factor=8):
        rng = RngFactory(seed).named("rmat-test")
        return rmat_edges(scale, edge_factor, rng)

    def test_seeded_determinism(self):
        assert np.array_equal(self._edges(seed=5), self._edges(seed=5))
        assert not np.array_equal(self._edges(seed=5), self._edges(seed=6))

    def test_build_graph_determinism(self):
        spec = GraphSpec.rmat(10, edge_factor=8, seed=9)
        a, b = build_graph(spec), build_graph(spec)
        assert np.array_equal(a.edge_array(), b.edge_array())
        assert a.n == 1 << 10

    def test_top_one_percent_holds_superlinear_edge_share(self):
        g = build_graph(GraphSpec.rmat(12, edge_factor=16, seed=3))
        deg = np.sort(g.degree())[::-1]
        top = max(1, g.n // 100)
        share = deg[:top].sum() / deg.sum()
        # a proportional share would be 1%; R-MAT hubs hold far more
        assert share > 0.05

    def test_no_self_loops_or_duplicates_after_csr(self):
        g = build_graph(GraphSpec.rmat(9, edge_factor=8, seed=1))
        edges = g.edge_array()
        assert (edges[:, 0] != edges[:, 1]).all()
        canon = edges[:, 0] * g.n + edges[:, 1]
        assert np.unique(canon).size == canon.size

    def test_poisson_dispatch_unchanged(self):
        from repro.graph.generators import poisson_random_graph

        spec = GraphSpec(n=500, k=6.0, seed=2)
        assert np.array_equal(
            build_graph(spec).edge_array(),
            poisson_random_graph(spec).edge_array(),
        )


class TestFrontierModelGuard:
    def test_poisson_spec_delegates_to_prediction(self):
        spec = GraphSpec(n=4_000, k=8.0, seed=1)
        assert np.array_equal(
            frontier_fractions_for(spec),
            predict_frontier_fractions(spec.n, spec.k),
        )

    def test_rmat_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="[Pp]oisson"):
            frontier_fractions_for(GraphSpec.rmat(10, edge_factor=8))


class TestDistributedRmatGeneration:
    def test_reference_matches_central_generator(self):
        spec = GraphSpec.rmat(9, edge_factor=8, seed=11)
        builder = DistributedGraphBuilder(spec, GridShape(2, 2))
        assert np.array_equal(
            builder.reference_graph().edge_array(),
            build_graph(spec).edge_array(),
        )

    def test_rank_locals_tile_the_edge_set(self):
        spec = GraphSpec.rmat(9, edge_factor=8, seed=11)
        builder = DistributedGraphBuilder(spec, GridShape(2, 2))
        partition = builder.build_partition()
        entries = sum(
            partition.memory_footprint(r)["edge_entries"]
            for r in range(partition.nranks)
        )
        # the 2D layout stores each undirected edge twice (both orientations)
        assert entries == 2 * build_graph(spec).num_edges

    def test_partition_runs_bfs_identically(self):
        from repro.bfs.bfs_2d import Bfs2DEngine
        from repro.bfs.level_sync import run_bfs

        spec = GraphSpec.rmat(9, edge_factor=8, seed=11)
        central = build_graph(spec)
        session = BfsSession(central, (2, 2))
        expected = session.bfs(3).levels
        partition = DistributedGraphBuilder(spec, GridShape(2, 2)).build_partition()
        engine = Bfs2DEngine(partition, session._new_comm())
        assert np.array_equal(run_bfs(engine, 3).levels, expected)


class TestDegreeAwarePartition:
    @pytest.fixture(scope="class")
    def rmat_graph(self):
        return build_graph(GraphSpec.rmat(11, edge_factor=16, seed=3))

    def test_is_a_permutation(self, rmat_graph):
        relabeling = degree_aware_relabeling(rmat_graph, 4)
        assert np.array_equal(
            np.sort(relabeling.to_new), np.arange(rmat_graph.n)
        )

    def test_hubs_dealt_round_robin(self, rmat_graph):
        nblocks = 4
        relabeling = degree_aware_relabeling(rmat_graph, nblocks)
        deg = rmat_graph.degree()
        order = np.argsort(-deg, kind="stable")
        dist_size = rmat_graph.n // nblocks
        # the top-nblocks hubs land in nblocks distinct blocks
        blocks = relabeling.to_new[order[:nblocks]] // dist_size
        assert np.unique(blocks).size == nblocks

    def test_improves_1d_vertex_balance(self, rmat_graph):
        nranks = 4
        plain = OneDPartition(rmat_graph, nranks)
        relabeling = degree_aware_relabeling(rmat_graph, nranks)
        balanced = OneDPartition(relabeling.apply(rmat_graph), nranks)
        before = balance_report(plain, metric="edge_entries").imbalance
        after = balance_report(balanced, metric="edge_entries").imbalance
        assert after < before
        assert after < 1.3

    def test_invalid_nblocks_rejected(self, rmat_graph):
        with pytest.raises(PartitionError):
            degree_aware_relabeling(rmat_graph, 0)
        with pytest.raises(PartitionError):
            degree_aware_relabeling(rmat_graph, rmat_graph.n + 1)

    def test_uneven_blocks_keep_block_sizes(self):
        g = build_graph(GraphSpec(n=10, k=3.0, seed=1))
        relabeling = degree_aware_relabeling(g, 3)  # 10 = 4 + 3 + 3
        assert np.array_equal(np.sort(relabeling.to_new), np.arange(10))


class TestSessionRelabel:
    @pytest.fixture(scope="class")
    def rmat_graph(self):
        return build_graph(GraphSpec.rmat(10, edge_factor=8, seed=3))

    @pytest.mark.parametrize("relabel", ["degree", "random"])
    def test_levels_in_original_ids(self, rmat_graph, relabel):
        base = BfsSession(rmat_graph, (2, 2)).bfs(5)
        result = BfsSession(rmat_graph, (2, 2), relabel=relabel).bfs(5)
        assert np.array_equal(result.levels, base.levels)
        assert result.source == 5

    def test_degree_relabel_balances_partition(self, rmat_graph):
        plain = BfsSession(rmat_graph, (2, 2))
        balanced = BfsSession(rmat_graph, (2, 2), relabel="degree")
        assert (
            balance_report(balanced.partition).imbalance
            < balance_report(plain.partition).imbalance
        )

    def test_batched_and_bidirectional_queries(self, rmat_graph):
        session = BfsSession(rmat_graph, (2, 2), relabel="degree")
        plain = BfsSession(rmat_graph, (2, 2))
        batch = session.bfs_many([5, 9, 33])
        assert batch.sources == (5, 9, 33)
        for i, source in enumerate((5, 9, 33)):
            assert np.array_equal(
                batch.levels_of(i), plain.bfs(source).levels
            )
        assert session.distance(5, 900) == plain.distance(5, 900)
        assert session.shortest_path(5, 900) is not None

    def test_unknown_strategy_rejected(self, rmat_graph):
        with pytest.raises(ConfigurationError, match="relabel"):
            BfsSession(rmat_graph, (2, 2), relabel="alphabetical")

    def test_hybrid_direction_composes_with_relabel(self, rmat_graph):
        from repro.bfs.options import BfsOptions

        base = BfsSession(rmat_graph, (2, 2)).bfs(5)
        session = BfsSession(
            rmat_graph, (2, 2),
            opts=BfsOptions(direction="hybrid"), relabel="degree",
        )
        result = session.bfs(5)
        assert np.array_equal(result.levels, base.levels)
        assert result.stats.direction_counts().get("bottom-up", 0) > 0


class TestHarnessRmat:
    def test_experiment_and_export_carry_kind(self):
        from repro.bfs.options import BfsOptions
        from repro.harness.experiment import ExperimentConfig, run_experiment
        from repro.harness.export import results_to_rows

        config = ExperimentConfig(
            name="rmat-hybrid",
            graph=GraphSpec.rmat(9, edge_factor=8, seed=2),
            grid=GridShape(2, 2),
            opts=BfsOptions(direction="hybrid"),
            source=3,
        )
        row = results_to_rows([run_experiment(config)])[0]
        assert row["kind"] == "rmat"
        assert row["scale"] == 9
        assert row["edge_factor"] == 8
        assert row["direction"] == "hybrid"
        assert row["bottom_up_levels"] > 0
        assert row["edges_scanned"] > 0
