"""Tests for rank-crash fault tolerance: buddy checkpointing, spare/shrink
failover, level replay, chaos verification, and cross-backend determinism."""

from __future__ import annotations

import numpy as np
import pytest

import repro.faults
import repro.faults.crash
import repro.faults.report
import repro.faults.schedule
import repro.faults.spec
from repro.api import bidirectional_bfs, distributed_bfs
from repro.backends.spmd import spmd_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.errors import CommunicationError, ConfigurationError, FaultError
from repro.faults import FAULT_PRESETS, FaultReport, FaultSpec
from repro.faults.chaos import run_chaos, sample_chaos_spec
from repro.faults.validate import validate_run
from repro.graph.generators import poisson_random_graph
from repro.observability.digest import result_digests
from repro.observability.metrics import MetricsRegistry
from repro.types import GraphSpec

#: seeds probed once against the fixture graph: seed 0 fires exactly one
#: crash on a (2,2) grid; seed 7 fires three (exhausting two spares);
#: seeds 6 and 8 kill a buddy pair together (unrecoverable).
_SPARE = FaultSpec(seed=0, crash_rate=0.35, recovery="spare", spare_ranks=2)
_SHRINK = FaultSpec(seed=0, crash_rate=0.35, recovery="shrink")


class TestCrashRecovery:
    def test_spare_failover_preserves_levels(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0, faults=_SPARE)
        report = result.faults
        assert report.crashes == 1
        assert report.spare_failovers == 1
        assert report.shrink_failovers == 0
        assert report.replayed_levels == 1
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_shrink_failover_preserves_levels(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0, faults=_SHRINK)
        report = result.faults
        assert report.crashes == 1
        assert report.shrink_failovers == 1
        assert report.spare_failovers == 0
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_spare_exhaustion_falls_back_to_shrink(self, small_graph):
        spec = FaultSpec(seed=7, crash_rate=0.35, recovery="spare", spare_ranks=2)
        result = distributed_bfs(small_graph, (2, 2), 0, faults=spec)
        report = result.faults
        assert report.crashes == 3
        assert report.spare_failovers == 2  # both spares consumed...
        assert report.shrink_failovers == 1  # ...then shrink takes over
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_crash_recovery_1d_layout(self, small_graph):
        result = distributed_bfs(
            small_graph, (4, 1), 0, layout="1d", faults=_SPARE
        )
        assert result.faults.crashes == 1
        assert result.faults.failovers == 1
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_crash_recovery_bidirectional(self, small_graph):
        result = bidirectional_bfs(small_graph, (2, 2), 0, 399, faults=_SPARE)
        assert result.faults.crashes >= 1
        assert result.faults.failovers == result.faults.crashes
        assert result.path_length == int(serial_bfs(small_graph, 0)[399])

    def test_collective_faults_crash_during_reduction(self, small_graph):
        spec = FaultSpec(
            seed=0, crash_rate=0.5, collective_faults=True, spare_ranks=2
        )
        result = distributed_bfs(small_graph, (2, 2), 0, faults=spec)
        assert result.faults.crashes >= 1
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_buddy_pair_crash_is_unrecoverable_but_loud(self, small_graph):
        # Every rank crashes at level 0: each buddy dies with its partner,
        # taking the checkpoint with it.  That must fail loudly, with the
        # structured report attached to the error.
        spec = FaultSpec(crash_rate=1.0, crash_max_level=0)
        with pytest.raises(FaultError) as excinfo:
            distributed_bfs(small_graph, (2, 2), 0, faults=spec)
        assert isinstance(excinfo.value.report, FaultReport)
        assert excinfo.value.report.crashes > 0

    def test_checkpointing_charged_even_without_crashes(self, small_graph):
        # seed 1 samples no crash, but crash_rate > 0 keeps buddy
        # replication on — its traffic must still be accounted.
        spec = FaultSpec(seed=1, crash_rate=0.35)
        result = distributed_bfs(small_graph, (2, 2), 0, faults=spec)
        assert result.faults.crashes == 0
        assert result.faults.checkpoint_bytes > 0
        assert result.faults.overhead_seconds > 0.0

    def test_crashed_run_is_deterministic(self, small_graph):
        a = distributed_bfs(small_graph, (2, 2), 0, faults=_SPARE)
        b = distributed_bfs(small_graph, (2, 2), 0, faults=_SPARE)
        assert a.faults == b.faults
        assert a.elapsed == b.elapsed
        assert np.array_equal(a.levels, b.levels)

    def test_recovery_visible_as_spans(self, small_graph):
        result = distributed_bfs(
            small_graph, (2, 2), 0, faults=_SPARE, observe="spans"
        )
        names = {s.name for s in result.observability.spans}
        assert {"checkpoint", "crash-detect", "failover", "crash-recovery",
                "replay"} <= names
        # the simulated cost of recovery lands in the fault bucket
        assert sum(s.fault_seconds for s in result.stats.levels) > 0.0

    def test_crash_presets_run(self, small_graph):
        for name in ("crash-spare", "crash-shrink", "crash-harsh"):
            result = distributed_bfs(
                small_graph, (2, 2), 0, faults=FAULT_PRESETS[name]
            )
            assert result.faults.checkpoint_bytes > 0
            assert np.array_equal(result.levels, serial_bfs(small_graph, 0))


class TestCrossBackendDeterminism:
    """Satellite: same seed + schedule => identical FaultReport counters and
    levels on the simulator and the real-parallel SPMD backend."""

    #: the simulator's expand dest-filters prune sends the SPMD backend
    #: makes, changing which transmissions exist to be dropped — parity
    #: holds for the unfiltered message set.
    _OPTS = BfsOptions(use_expand_filter=False)

    _COUNTERS = (
        "injected", "retries", "recovered", "unrecovered", "rollbacks",
        "degraded_links", "straggler_ranks", "link_down",
    )

    def _assert_parity(self, graph, grid, spec):
        sim = distributed_bfs(graph, grid, 0, opts=self._OPTS, faults=spec)
        levels, report = spmd_bfs(
            graph, grid, 0, opts=self._OPTS, faults=spec,
            return_report=True, timeout=60,
        )
        assert np.array_equal(sim.levels, levels)
        for name in self._COUNTERS:
            assert getattr(sim.faults, name) == getattr(report, name), name

    def test_harsh_preset_matches(self, small_graph):
        self._assert_parity(small_graph, (2, 2), FaultSpec.parse("harsh"))

    def test_heavy_drops_with_rollbacks_match(self, small_graph):
        spec = FaultSpec(seed=0, drop_rate=0.18, max_retries=1)
        sim = distributed_bfs(small_graph, (2, 2), 0, opts=self._OPTS, faults=spec)
        assert sim.faults.rollbacks > 0  # the hard case: replayed levels
        self._assert_parity(small_graph, (2, 2), spec)

    def test_multi_round_ring_grid_matches(self, small_graph):
        # (2,4) rings take several rounds per phase, so ring and direct
        # schedules genuinely diverge — parity must still hold.
        self._assert_parity(
            small_graph, (2, 4), FaultSpec(seed=1, drop_rate=0.18, max_retries=1)
        )

    def test_spmd_rejects_crashes(self, small_graph):
        with pytest.raises(CommunicationError, match="crash"):
            spmd_bfs(small_graph, (2, 2), 0, faults=FaultSpec(crash_rate=0.1))


class TestPackageSplit:
    """Satellite: repro/faults is a package; the old import paths survive."""

    def test_submodule_objects_are_the_package_exports(self):
        assert repro.faults.spec.FaultSpec is repro.faults.FaultSpec
        assert repro.faults.spec.FAULT_PRESETS is repro.faults.FAULT_PRESETS
        assert repro.faults.report.FaultReport is repro.faults.FaultReport
        assert repro.faults.schedule.FaultSchedule is repro.faults.FaultSchedule

    def test_legacy_flat_import_path(self):
        # pre-split code did `from repro.faults import FaultSpec, ...`
        from repro.faults import FaultReport, FaultSchedule, FaultSpec  # noqa: F401

    def test_parse_error_lists_every_preset(self):
        with pytest.raises(ConfigurationError) as excinfo:
            FaultSpec.parse("not-a-preset")
        message = str(excinfo.value)
        for preset in FAULT_PRESETS:
            assert preset in message

    def test_parse_error_names_offending_key(self):
        with pytest.raises(ConfigurationError, match="dropp"):
            FaultSpec.parse("dropp=0.1")

    def test_parse_error_names_offending_value(self):
        with pytest.raises(ConfigurationError) as excinfo:
            FaultSpec.parse("drop=banana")
        assert "banana" in str(excinfo.value)
        assert "drop" in str(excinfo.value)

    def test_parse_crash_keys(self):
        spec = FaultSpec.parse(
            "crash=0.2,crash_level=3,recovery=shrink,spares=0,collective=1"
        )
        assert spec.crash_rate == 0.2
        assert spec.crash_max_level == 3
        assert spec.recovery == "shrink"
        assert spec.spare_ranks == 0
        assert spec.collective_faults is True


class TestObservabilityParity:
    """Satellite: crash counters flow into digests, metrics, and exports
    without perturbing fault-free digests."""

    def test_fault_free_digests_have_no_fault_component(self, small_graph):
        digests = result_digests(distributed_bfs(small_graph, (2, 2), 0))
        assert "faults" not in digests

    def test_faulted_digests_gain_a_fault_component(self, small_graph):
        digests = result_digests(
            distributed_bfs(small_graph, (2, 2), 0, faults=_SPARE)
        )
        assert "faults" in digests

    def test_fault_digest_tracks_crash_counters(self, small_graph):
        spare = result_digests(distributed_bfs(small_graph, (2, 2), 0, faults=_SPARE))
        shrink = result_digests(distributed_bfs(small_graph, (2, 2), 0, faults=_SHRINK))
        assert spare["faults"] != shrink["faults"]
        assert spare["levels"] == shrink["levels"]

    def test_metrics_registry_carries_crash_counters(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0, faults=_SPARE)
        reg = MetricsRegistry.from_result(result)
        assert reg.value("bfs_fault_crashes_total") == result.faults.crashes
        assert reg.value("bfs_fault_failovers_total", mode="spare") == (
            result.faults.spare_failovers
        )
        assert reg.value("bfs_fault_failovers_total", mode="shrink") == (
            result.faults.shrink_failovers
        )
        assert reg.value("bfs_fault_replayed_levels_total") == (
            result.faults.replayed_levels
        )
        assert reg.value("bfs_fault_checkpoint_bytes_total") == (
            result.faults.checkpoint_bytes
        )

    def test_export_rows_carry_crash_columns(self):
        from repro.harness.experiment import ExperimentConfig, run_experiment
        from repro.harness.export import results_to_rows
        from repro.types import GridShape

        config = ExperimentConfig(
            name="crashy",
            graph=GraphSpec(n=400, k=8.0, seed=11),
            grid=GridShape(2, 2),
            source=0,
            faults=_SPARE,
        )
        rows = results_to_rows([run_experiment(config)])
        assert rows[0]["crashes"] == 1
        assert rows[0]["failovers"] == 1
        assert rows[0]["replayed_levels"] == 1
        assert rows[0]["checkpoint_bytes"] > 0

    def test_fault_sweep_table_has_crash_columns(self, small_graph):
        from repro.harness.fault_sweep import fault_sweep, format_fault_sweep

        points = fault_sweep(small_graph, (2, 2), 0, [_SPARE])
        table = format_fault_sweep(points)
        for column in ("crash", "crashes", "failovers", "replays"):
            assert column in table
        assert "NO" not in table  # levels matched


class TestValidation:
    def test_validate_clean_faulted_run(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0, faults=_SPARE)
        assert validate_run(small_graph, 0, result) == []

    def test_validate_flags_wrong_levels(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0, faults=_SPARE)
        result.levels[5] += 1
        problems = validate_run(small_graph, 0, result)
        assert problems
        assert any("level" in p for p in problems)

    def test_validate_against_explicit_baseline(self, small_graph):
        baseline = distributed_bfs(small_graph, (2, 2), 0)
        result = distributed_bfs(small_graph, (2, 2), 0, faults=_SHRINK)
        assert validate_run(
            small_graph, 0, result, baseline_levels=baseline.levels
        ) == []


class TestChaosHarness:
    def test_sampler_is_deterministic(self):
        assert sample_chaos_spec(42) == sample_chaos_spec(42)
        specs = {sample_chaos_spec(seed) for seed in range(20)}
        assert len(specs) > 1  # distinct seeds explore the space

    def test_hundred_seeded_schedules_all_verify(self):
        # The acceptance bar: >= 100 seeded schedules, every recoverable
        # run byte-identical to fault-free, every unrecoverable one loud.
        graph = poisson_random_graph(GraphSpec(n=120, k=6.0, seed=11))
        report = run_chaos(graph, (2, 2), 0, range(100))
        counts = report.counts
        assert counts["ok"] + counts["unrecoverable"] == 100
        assert counts["invalid"] == 0
        assert report.ok
        assert counts["ok"] >= 50  # most schedules must actually recover

    def test_chaos_report_round_trips(self):
        graph = poisson_random_graph(GraphSpec(n=120, k=6.0, seed=11))
        report = run_chaos(graph, (2, 2), 0, range(5))
        payload = report.to_dict()
        assert payload["counts"] == report.counts
        assert len(payload["cases"]) == 5
        assert "ok" in report.summary()
