"""Tests for the 2D edge partitioning (Section 2.2) — the paper's key layout."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CsrGraph
from repro.graph.generators import poisson_random_graph
from repro.partition.two_d import TwoDPartition
from repro.types import GraphSpec, GridShape, VERTEX_DTYPE


def all_entries(graph: CsrGraph) -> set[tuple[int, int]]:
    src = np.repeat(np.arange(graph.n), np.diff(graph.indptr))
    return set(zip(src.tolist(), graph.indices.tolist()))


def stored_entries(part: TwoDPartition) -> set[tuple[int, int]]:
    out: set[tuple[int, int]] = set()
    for r in range(part.nranks):
        loc = part.local(r)
        for ci in range(len(loc.col_map)):
            v = int(loc.col_map.ids[ci])
            for u in loc.rows[loc.col_indptr[ci] : loc.col_indptr[ci + 1]]:
                out.add((int(u), v))
    return out


GRIDS = [GridShape(2, 2), GridShape(4, 4), GridShape(2, 8), GridShape(8, 2),
         GridShape(3, 5), GridShape(16, 1), GridShape(1, 16)]


class TestStructure:
    @pytest.mark.parametrize("grid", GRIDS, ids=str)
    def test_every_entry_stored_exactly_once(self, small_graph, grid):
        part = TwoDPartition(small_graph, grid)
        total = sum(part.local(r).num_stored_entries for r in range(part.nranks))
        assert total == small_graph.num_directed_edges
        assert stored_entries(part) == all_entries(small_graph)

    @pytest.mark.parametrize("grid", GRIDS, ids=str)
    def test_vertices_partitioned(self, small_graph, grid):
        part = TwoDPartition(small_graph, grid)
        owned = np.sort(np.concatenate([part.owned_vertices(r) for r in range(part.nranks)]))
        assert np.array_equal(owned, np.arange(small_graph.n))

    @pytest.mark.parametrize("grid", GRIDS, ids=str)
    def test_owner_of_consistent(self, small_graph, grid):
        part = TwoDPartition(small_graph, grid)
        for r in range(part.nranks):
            assert (part.owner_of(part.owned_vertices(r)) == r).all()

    def test_expand_locality(self, small_graph):
        """Columns stored on rank (i,j) belong to owners in processor-column j."""
        grid = GridShape(4, 4)
        part = TwoDPartition(small_graph, grid)
        for r in range(16):
            loc = part.local(r)
            if len(loc.col_map):
                owners = part.owner_of(loc.col_map.ids)
                assert (owners % grid.cols == loc.mesh_col).all()

    def test_fold_locality(self, small_graph):
        """Rows stored on rank (i,j) belong to owners in processor-row i."""
        grid = GridShape(4, 4)
        part = TwoDPartition(small_graph, grid)
        for r in range(16):
            loc = part.local(r)
            if loc.rows.size:
                owners = part.owner_of(np.unique(loc.rows))
                assert (owners // grid.cols == loc.mesh_row).all()

    def test_column_chunk_ranges_cover(self, small_graph):
        grid = GridShape(3, 4)
        part = TwoDPartition(small_graph, grid)
        covered = []
        for j in range(grid.cols):
            lo, hi = part.column_chunk_range(j)
            covered.extend(range(lo, hi))
        assert covered == list(range(small_graph.n))

    def test_owned_range_inside_column_chunk(self, small_graph):
        """Rank (i,j)'s owned vertices fall inside column chunk j (their edge
        lists live on processor-column j)."""
        grid = GridShape(4, 4)
        part = TwoDPartition(small_graph, grid)
        for r in range(16):
            loc = part.local(r)
            lo, hi = part.column_chunk_range(loc.mesh_col)
            assert lo <= loc.vertex_lo <= loc.vertex_hi <= hi

    def test_equivalent_to_1d_when_degenerate(self, small_graph):
        """R=1: each rank stores the full columns of its owned vertices."""
        part = TwoDPartition(small_graph, GridShape(1, 8))
        for r in range(8):
            loc = part.local(r)
            for v in range(loc.vertex_lo, loc.vertex_hi):
                expected = small_graph.neighbors(v)
                mask, local_cols = loc.col_map.to_local_partial(np.array([v]))
                if expected.size == 0:
                    assert not mask.any()
                    continue
                ci = int(local_cols[0])
                got = np.sort(loc.rows[loc.col_indptr[ci] : loc.col_indptr[ci + 1]])
                assert np.array_equal(got, expected)


class TestPartialNeighbors:
    def test_union_over_column_equals_full_edge_lists(self, small_graph):
        """Merging partial lists across a processor-column reconstructs the
        frontier's complete neighbour multiset (Algorithm 2 step 12)."""
        grid = GridShape(4, 2)
        part = TwoDPartition(small_graph, grid)
        owner = 3
        loc_owner = part.local(owner)
        frontier = part.owned_vertices(owner)[:7]
        expected = np.sort(
            np.concatenate([small_graph.neighbors(int(v)) for v in frontier])
        )
        pieces = [
            part.local(rank).partial_neighbors(frontier)
            for rank in grid.col_members(loc_owner.mesh_col)
        ]
        got = np.sort(np.concatenate(pieces))
        assert np.array_equal(got, expected)

    def test_unknown_vertices_skipped(self, small_graph):
        part = TwoDPartition(small_graph, GridShape(4, 4))
        loc = part.local(0)
        foreign = np.array([small_graph.n - 1], dtype=VERTEX_DTYPE)
        # Vertex from the last column chunk has no partial list on column 0.
        assert loc.partial_neighbors(foreign).size == 0

    def test_empty_frontier(self, small_graph):
        loc = TwoDPartition(small_graph, GridShape(2, 2)).local(0)
        assert loc.partial_neighbors(np.empty(0, dtype=VERTEX_DTYPE)).size == 0


class TestMemoryScalability:
    def test_footprint_keys(self, small_graph):
        fp = TwoDPartition(small_graph, GridShape(2, 2)).memory_footprint(0)
        assert set(fp) == {
            "owned_vertices",
            "edge_entries",
            "nonempty_columns",
            "unique_row_vertices",
        }

    def test_section_241_bounds(self):
        """Non-empty edge lists and unique row vertices are O(n/P)-ish:
        bounded by min(edges stored, column-chunk width) — far below n/C."""
        graph = poisson_random_graph(GraphSpec(n=4000, k=6, seed=3))
        grid = GridShape(8, 8)
        part = TwoDPartition(graph, grid)
        for r in range(part.nranks):
            fp = part.memory_footprint(r)
            assert fp["nonempty_columns"] <= fp["edge_entries"]
            assert fp["unique_row_vertices"] <= fp["edge_entries"]
            # The paper's bound: expected non-empty lists ~ nk/P (i.e. the
            # per-rank edge entries), not n/C.  Allow 3x statistical slack.
            assert fp["nonempty_columns"] <= 3 * (graph.n * 6 / part.nranks)

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=12, deadline=None)
    def test_entry_conservation_property(self, rows, cols):
        graph = poisson_random_graph(GraphSpec(n=240, k=5, seed=rows * 16 + cols))
        part = TwoDPartition(graph, GridShape(rows, cols))
        total = sum(part.local(r).num_stored_entries for r in range(part.nranks))
        assert total == graph.num_directed_edges
