"""Crash-recoverable MS-BFS: faulted batches must answer fault-free.

The serving path's invariant, held to byte-identity: a batched traversal
under any *recoverable* fault schedule — transient wire drops, rank
crashes with spare or shrink recovery, the harsh mixed preset — returns
per-source level rows exactly equal to fault-free sequential
:func:`~repro.bfs.level_sync.run_bfs` answers, on both layouts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import FaultSpec
from repro.faults.validate import validate_run
from repro.session import BfsSession
from repro.types import GridShape, SystemSpec

LAYOUTS = [("2d", GridShape(4, 4)), ("1d", GridShape(1, 8))]

SOURCES = [0, 1, 5, 17, 113, 399, 200, 3]

#: recoverable schedules: light drops (the acceptance spec), heavy drops
#: forcing many rollbacks, crash recovery via spare and shrink, the works
SPECS = {
    "drop-light": FaultSpec(seed=0, drop_rate=0.02),
    "drop-heavy": FaultSpec(seed=0, drop_rate=0.3, max_retries=3),
    "crash-spare": "crash-spare",
    "crash-shrink": "crash-shrink",
    "crash-harsh": "crash-harsh",
}


def _sessions(graph, layout, grid, faults):
    faulted = BfsSession(
        graph, grid, system=SystemSpec(layout=layout, faults=faults)
    )
    clean = BfsSession(graph, grid, system=SystemSpec(layout=layout))
    return faulted, clean


@pytest.mark.parametrize("layout,grid", LAYOUTS)
@pytest.mark.parametrize("name", sorted(SPECS))
class TestFaultedByteIdentity:
    def test_rows_match_fault_free_sequential(
        self, small_graph, layout, grid, name
    ):
        faulted, clean = _sessions(small_graph, layout, grid, SPECS[name])
        batched = faulted.bfs_many(SOURCES)
        assert batched.faults is not None
        for i, s in enumerate(SOURCES):
            sequential = clean.bfs(s)
            assert batched.levels[i].tobytes() == sequential.levels.tobytes()
            assert int(batched.num_levels[i]) == sequential.num_levels

    def test_validate_run_accepts_batched_result(
        self, small_graph, layout, grid, name
    ):
        faulted, clean = _sessions(small_graph, layout, grid, SPECS[name])
        result = faulted.bfs_many(SOURCES)
        baseline = np.stack([clean.bfs(s).levels for s in SOURCES])
        assert validate_run(small_graph, SOURCES[0], result, baseline) == []
        # and without an explicit baseline (serial oracle per row)
        assert validate_run(small_graph, SOURCES[0], result) == []


class TestFaultedBatchBehaviour:
    def test_heavy_drops_actually_roll_back(self, small_graph):
        session = BfsSession(
            small_graph, (4, 4),
            system=SystemSpec(layout="2d", faults=SPECS["drop-heavy"]),
        )
        result = session.bfs_many(SOURCES)
        assert result.faults.rollbacks > 0
        assert result.stats.total_rollbacks == result.faults.rollbacks

    def test_crashes_actually_replay(self, small_graph):
        session = BfsSession(
            small_graph, (4, 4),
            system=SystemSpec(layout="2d", faults="crash-spare"),
        )
        result = session.bfs_many(SOURCES)
        assert result.faults.crashes > 0
        assert result.faults.failovers == result.faults.crashes
        assert result.faults.checkpoint_bytes > 0

    def test_faulted_batch_deterministic(self, small_graph):
        def run():
            session = BfsSession(
                small_graph, (4, 4),
                system=SystemSpec(layout="2d", faults=SPECS["drop-heavy"]),
            )
            r = session.bfs_many(SOURCES)
            return r.levels.tobytes(), r.elapsed, r.faults.injected

        assert run() == run()

    def test_targeted_queries_under_crashes(self, small_graph):
        faulted, clean = _sessions(
            small_graph, "2d", GridShape(4, 4), "crash-spare"
        )
        targets = [10, None, 5, 42, None, 250, 0, None]
        batched = faulted.bfs_many(SOURCES, targets=targets)
        for i, (s, t) in enumerate(zip(SOURCES, targets)):
            sequential = clean.bfs(s, target=t)
            assert np.array_equal(batched.levels[i], sequential.levels)
            assert batched.target_levels[i] == sequential.target_level

    def test_fault_seed_override_draws_new_pattern(self, small_graph):
        session = BfsSession(
            small_graph, (4, 4),
            system=SystemSpec(layout="2d", faults=SPECS["drop-heavy"]),
        )
        default = session.bfs_many(SOURCES)
        reseeded = session.bfs_many(SOURCES, fault_seed=12345)
        # different loss pattern, identical answer
        assert default.faults.injected != reseeded.faults.injected
        assert default.levels.tobytes() == reseeded.levels.tobytes()

    def test_exhausted_replay_budget_raises_structured(self, small_graph):
        session = BfsSession(
            small_graph, (4, 4),
            system=SystemSpec(
                layout="2d",
                faults=FaultSpec(
                    seed=0, drop_rate=0.9, max_retries=0, max_level_retries=2
                ),
            ),
        )
        with pytest.raises(FaultError) as excinfo:
            session.bfs_many(SOURCES)
        assert excinfo.value.report is not None
        assert excinfo.value.report.unrecovered > 0
