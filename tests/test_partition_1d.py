"""Tests for the 1D vertex partitioning (Algorithm 1's layout)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition.balance import balance_report
from repro.partition.one_d import OneDPartition
from repro.types import GridShape, VERTEX_DTYPE


class TestOneDPartition:
    def test_grid_orientation(self, small_graph):
        assert OneDPartition(small_graph, 4, as_row=True).grid == GridShape(4, 1)
        assert OneDPartition(small_graph, 4, as_row=False).grid == GridShape(1, 4)

    def test_total_edges_preserved(self, small_graph):
        part = OneDPartition(small_graph, 8)
        total = sum(part.local(r).num_local_edges for r in range(8))
        assert total == small_graph.num_directed_edges

    def test_owned_vertices_partition_the_graph(self, small_graph):
        part = OneDPartition(small_graph, 5)
        owned = np.concatenate([part.owned_vertices(r) for r in range(5)])
        assert np.array_equal(owned, np.arange(small_graph.n))

    def test_owner_of_matches_owned(self, small_graph):
        part = OneDPartition(small_graph, 5)
        for r in range(5):
            assert (part.owner_of(part.owned_vertices(r)) == r).all()

    def test_local_edge_lists_match_graph(self, small_graph):
        part = OneDPartition(small_graph, 6)
        for r in range(6):
            loc = part.local(r)
            for i, v in enumerate(range(loc.vertex_lo, loc.vertex_hi)):
                local_row = loc.adjacency[loc.indptr[i] : loc.indptr[i + 1]]
                assert np.array_equal(local_row, small_graph.neighbors(v))

    def test_neighbors_of_frontier(self, small_graph):
        part = OneDPartition(small_graph, 4)
        loc = part.local(1)
        frontier = part.owned_vertices(1)[:5]
        expected = np.concatenate([small_graph.neighbors(int(v)) for v in frontier])
        assert np.array_equal(loc.neighbors_of_frontier(frontier), expected)

    def test_neighbors_of_frontier_empty(self, small_graph):
        loc = OneDPartition(small_graph, 4).local(0)
        assert loc.neighbors_of_frontier(np.empty(0, dtype=VERTEX_DTYPE)).size == 0

    def test_non_owned_frontier_rejected(self, small_graph):
        part = OneDPartition(small_graph, 4)
        foreign = part.owned_vertices(2)[:1]
        with pytest.raises(PartitionError):
            part.local(0).neighbors_of_frontier(foreign)

    def test_single_rank(self, small_graph):
        part = OneDPartition(small_graph, 1)
        assert part.local(0).num_owned == small_graph.n
        assert part.local(0).num_local_edges == small_graph.num_directed_edges

    def test_more_ranks_than_vertices(self, path_graph):
        part = OneDPartition(path_graph, 16)
        total = sum(part.local(r).num_local_edges for r in range(16))
        assert total == path_graph.num_directed_edges

    def test_zero_ranks_rejected(self, small_graph):
        with pytest.raises(PartitionError):
            OneDPartition(small_graph, 0)

    def test_bad_rank_rejected(self, small_graph):
        with pytest.raises(PartitionError):
            OneDPartition(small_graph, 4).local(4)

    def test_memory_footprint_keys(self, small_graph):
        fp = OneDPartition(small_graph, 4).memory_footprint(0)
        assert set(fp) == {"owned_vertices", "edge_entries", "indptr"}

    def test_balance(self, small_graph):
        report = balance_report(OneDPartition(small_graph, 8), "owned_vertices")
        assert report.maximum - report.minimum <= 1
        edge_report = balance_report(OneDPartition(small_graph, 8), "edge_entries")
        # Poisson graphs balance statistically; allow generous slack.
        assert edge_report.imbalance < 1.5
