"""Correctness tests for the distributed BFS engines against the serial oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import build_communicator, build_engine
from repro.bfs.bfs_1d import Bfs1DEngine
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.errors import ConfigurationError, SearchError
from repro.graph.csr import CsrGraph
from repro.partition.one_d import OneDPartition
from repro.partition.two_d import TwoDPartition
from repro.types import GridShape, UNREACHED


def run_and_compare(graph, grid, layout="2d", source=0, opts=None):
    result = run_bfs(build_engine(graph, grid, layout=layout, opts=opts), source)
    assert np.array_equal(result.levels, serial_bfs(graph, source))
    return result


class TestBfs1D:
    @pytest.mark.parametrize("p", [1, 2, 4, 7, 8])
    def test_matches_serial(self, small_graph, p):
        run_and_compare(small_graph, GridShape(p, 1), layout="1d")

    @pytest.mark.parametrize("fold", ["direct", "ring", "union-ring", "two-phase", "bruck"])
    def test_all_folds(self, small_graph, fold):
        run_and_compare(
            small_graph, GridShape(6, 1), layout="1d", opts=BfsOptions(fold_collective=fold)
        )

    def test_column_orientation(self, small_graph):
        run_and_compare(small_graph, GridShape(1, 6), layout="1d")

    def test_disconnected_graph(self, sparse_graph):
        run_and_compare(sparse_graph, GridShape(4, 1), layout="1d", source=17)

    def test_path_graph_levels(self, path_graph):
        result = run_and_compare(path_graph, GridShape(3, 1), layout="1d")
        assert result.num_levels == 10  # 9 expansion levels + final empty one

    def test_sent_cache_off(self, small_graph):
        run_and_compare(
            small_graph, GridShape(4, 1), layout="1d", opts=BfsOptions(use_sent_cache=False)
        )

    def test_rank_mismatch_rejected(self, small_graph):
        part = OneDPartition(small_graph, 4)
        comm = build_communicator(GridShape(8, 1))
        with pytest.raises(ConfigurationError):
            Bfs1DEngine(part, comm)

    def test_step_before_start_rejected(self, small_graph):
        engine = build_engine(small_graph, GridShape(4, 1), layout="1d")
        with pytest.raises(SearchError):
            engine.step()

    def test_bad_source_rejected(self, small_graph):
        engine = build_engine(small_graph, GridShape(4, 1), layout="1d")
        with pytest.raises(SearchError):
            engine.start(small_graph.n)


class TestBfs2D:
    @pytest.mark.parametrize(
        "grid",
        [GridShape(1, 1), GridShape(2, 2), GridShape(4, 4), GridShape(2, 8),
         GridShape(8, 2), GridShape(3, 5), GridShape(16, 1), GridShape(1, 16)],
        ids=str,
    )
    def test_matches_serial(self, small_graph, grid):
        run_and_compare(small_graph, grid)

    @pytest.mark.parametrize("expand", ["direct", "ring", "two-phase", "recursive-doubling"])
    @pytest.mark.parametrize("fold", ["direct", "ring", "union-ring", "two-phase", "bruck"])
    def test_all_collective_combinations(self, small_graph, expand, fold):
        run_and_compare(
            small_graph,
            GridShape(3, 4),
            opts=BfsOptions(expand_collective=expand, fold_collective=fold),
        )

    def test_no_filter_no_cache(self, small_graph):
        run_and_compare(
            small_graph,
            GridShape(4, 4),
            opts=BfsOptions(use_sent_cache=False, use_expand_filter=False),
        )

    def test_buffer_capped(self, small_graph):
        run_and_compare(small_graph, GridShape(4, 4), opts=BfsOptions(buffer_capacity=16))

    def test_disconnected_graph(self, sparse_graph):
        result = run_and_compare(sparse_graph, GridShape(3, 3), source=5)
        assert (result.levels == UNREACHED).any()  # k=3 graph has stragglers

    def test_star_from_leaf(self, star_graph):
        result = run_and_compare(star_graph, GridShape(2, 2), source=4)
        assert result.levels[0] == 1
        assert result.levels[4] == 0

    def test_singleton_graph(self):
        g = CsrGraph.empty(1)
        result = run_bfs(build_engine(g, GridShape(1, 1)), 0)
        assert result.levels.tolist() == [0]

    def test_more_ranks_than_vertices(self, path_graph):
        run_and_compare(path_graph, GridShape(4, 4))

    def test_grid_mismatch_rejected(self, small_graph):
        part = TwoDPartition(small_graph, GridShape(2, 2))
        comm = build_communicator(GridShape(4, 1))
        with pytest.raises(ConfigurationError):
            Bfs2DEngine(part, comm)

    def test_engine_restartable(self, small_graph):
        engine = build_engine(small_graph, GridShape(2, 2))
        first = run_bfs(engine, 0)
        second = run_bfs(engine, 5)
        assert np.array_equal(second.levels, serial_bfs(small_graph, 5))
        assert first.num_levels > 0


class TestTargetSearch:
    def test_stops_at_target_level(self, small_graph):
        levels = serial_bfs(small_graph, 0)
        target = int(np.where(levels == 3)[0][0])
        engine = build_engine(small_graph, GridShape(2, 2))
        result = run_bfs(engine, 0, target=target)
        assert result.found_target
        assert result.target_level == 3
        # search stops at the end of the level that found the target
        assert result.num_levels == 3

    def test_source_equals_target(self, small_graph):
        result = run_bfs(build_engine(small_graph, GridShape(2, 2)), 4, target=4)
        assert result.target_level == 0

    def test_unreachable_target_exhausts_component(self, sparse_graph):
        levels = serial_bfs(sparse_graph, 0)
        unreachable = np.where(levels == UNREACHED)[0]
        assert unreachable.size, "fixture must have a disconnected vertex"
        result = run_bfs(
            build_engine(sparse_graph, GridShape(2, 2)), 0, target=int(unreachable[0])
        )
        assert not result.found_target
        assert np.array_equal(result.levels, levels)

    def test_max_levels_truncates(self, path_graph):
        result = run_bfs(build_engine(path_graph, GridShape(2, 2)), 0, max_levels=3)
        assert result.num_levels == 3
        assert result.levels[9] == UNREACHED

    def test_bad_target_rejected(self, small_graph):
        engine = build_engine(small_graph, GridShape(2, 2))
        with pytest.raises(SearchError):
            run_bfs(engine, 0, target=small_graph.n)


class TestResultMetadata:
    def test_summary_strings(self, small_graph):
        result = run_bfs(build_engine(small_graph, GridShape(2, 2)), 0, target=1)
        assert "BFS from 0" in result.summary()
        assert result.num_reached > 0

    def test_times_positive_and_consistent(self, small_graph):
        result = run_bfs(build_engine(small_graph, GridShape(2, 4)), 0)
        assert result.elapsed > 0
        assert result.comm_time > 0
        assert result.compute_time > 0
        # makespan >= each component's max (they are per-rank maxima)
        assert result.elapsed <= result.comm_time + result.compute_time + 1e-12

    def test_per_level_stats_recorded(self, small_graph):
        result = run_bfs(build_engine(small_graph, GridShape(2, 4)), 0)
        assert len(result.stats.levels) == result.num_levels
        assert result.stats.volume_per_level().sum() > 0

    def test_frontier_sizes_sum_to_reached(self, small_graph):
        result = run_bfs(build_engine(small_graph, GridShape(2, 4)), 0)
        total = sum(s.frontier_size for s in result.stats.levels)
        assert total == result.num_reached - 1  # all but the source
