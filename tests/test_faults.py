"""Tests for the deterministic fault-injection and recovery layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import distributed_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.errors import ConfigurationError, FaultError
from repro.faults import FAULT_PRESETS, FaultSchedule, FaultSpec


class TestFaultSpec:
    def test_default_is_inactive(self):
        assert not FaultSpec().active

    def test_active_axes(self):
        assert FaultSpec(drop_rate=0.1).active
        assert FaultSpec(degraded_link_rate=0.5).active
        assert FaultSpec(straggler_rate=0.5).active
        assert FaultSpec(down_level=1).active

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(drop_rate=1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(drop_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultSpec(degradation_factor=0.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(max_retries=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec(down_level=-2)

    def test_parse_preset(self):
        assert FaultSpec.parse("mild") == FAULT_PRESETS["mild"]
        assert FaultSpec.parse("none") == FaultSpec()

    def test_parse_kv_string(self):
        spec = FaultSpec.parse("drop=0.05,degrade=0.25x4,straggler=0.1x3,down=2,seed=7")
        assert spec.drop_rate == 0.05
        assert spec.degraded_link_rate == 0.25
        assert spec.degradation_factor == 4.0
        assert spec.straggler_rate == 0.1
        assert spec.straggler_slowdown == 3.0
        assert spec.down_level == 2
        assert spec.seed == 7

    def test_parse_retries_shorthand_and_bare_rate(self):
        spec = FaultSpec.parse("drop=0.02,retries=5,degrade=0.3")
        assert spec.max_retries == 5
        assert spec.degradation_factor == 2.0

    def test_parse_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse("dropp=0.1")
        with pytest.raises(ConfigurationError):
            FaultSpec.parse("justaword")


class TestFaultSchedule:
    def test_identical_seeds_identical_samples(self):
        a = FaultSchedule(FAULT_PRESETS["harsh"], 16)
        b = FaultSchedule(FAULT_PRESETS["harsh"], 16)
        assert a._link_multipliers == b._link_multipliers
        assert np.array_equal(a._compute_multipliers, b._compute_multipliers)
        assert a._down_pair == b._down_pair

    def test_down_link_gated_by_level(self):
        spec = FaultSpec(down_level=3, down_detour_factor=5.0)
        sched = FaultSchedule(spec, 4)
        src, dst = sched.report.link_down
        sched.begin_level(2)
        assert sched.link_multiplier(src, dst) == 1.0
        sched.begin_level(3)
        assert sched.link_multiplier(src, dst) == 5.0

    def test_retry_penalty_backoff(self):
        spec = FaultSpec(retry_timeout=1.0, backoff=2.0)
        sched = FaultSchedule(spec, 2)
        assert sched.retry_penalty(0) == 0.0
        assert sched.retry_penalty(3) == pytest.approx(1.0 + 2.0 + 4.0)


class TestFaultedRuns:
    def test_levels_match_serial_under_drops(self, small_graph):
        result = distributed_bfs(
            small_graph, (2, 2), 0, faults=FaultSpec(seed=2, drop_rate=0.08)
        )
        assert result.faults is not None
        assert result.faults.injected > 0
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_levels_match_serial_1d(self, small_graph):
        result = distributed_bfs(
            small_graph, (4, 1), 0, layout="1d",
            faults=FaultSpec(seed=2, drop_rate=0.08),
        )
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_deterministic_report_and_time(self, small_graph):
        spec = FaultSpec.parse("harsh")
        a = distributed_bfs(small_graph, (2, 2), 0, faults=spec)
        b = distributed_bfs(small_graph, (2, 2), 0, faults=spec)
        assert a.elapsed == b.elapsed
        assert a.faults == b.faults
        assert np.array_equal(a.levels, b.levels)

    def test_fault_free_time_unchanged(self, small_graph):
        plain = distributed_bfs(small_graph, (2, 2), 0)
        inactive = distributed_bfs(small_graph, (2, 2), 0, faults=FaultSpec())
        assert plain.faults is None
        assert inactive.faults is not None
        assert inactive.faults.added_seconds == 0.0
        assert inactive.elapsed == plain.elapsed
        assert np.array_equal(inactive.levels, plain.levels)

    def test_drops_cost_time(self, small_graph):
        plain = distributed_bfs(small_graph, (2, 2), 0)
        faulted = distributed_bfs(
            small_graph, (2, 2), 0, faults=FaultSpec(seed=1, drop_rate=0.05)
        )
        assert faulted.elapsed > plain.elapsed
        assert faulted.faults.added_seconds > 0.0

    def test_stragglers_cost_time(self, small_graph):
        plain = distributed_bfs(small_graph, (2, 2), 0)
        faulted = distributed_bfs(
            small_graph, (2, 2), 0,
            faults=FaultSpec(seed=1, straggler_rate=0.5, straggler_slowdown=4.0),
        )
        assert faulted.faults.straggler_ranks > 0
        assert faulted.elapsed > plain.elapsed

    def test_degraded_links_cost_comm_time(self, small_graph):
        plain = distributed_bfs(small_graph, (2, 2), 0)
        faulted = distributed_bfs(
            small_graph, (2, 2), 0,
            faults=FaultSpec(seed=1, degraded_link_rate=0.5, degradation_factor=6.0),
        )
        assert faulted.faults.degraded_links > 0
        assert faulted.elapsed > plain.elapsed
        assert np.array_equal(faulted.levels, plain.levels)

    def test_rollback_recovers_correctness(self, small_graph):
        # No retries: every drop is an unrecovered loss, forcing rollbacks.
        result = distributed_bfs(
            small_graph, (2, 2), 0,
            faults=FaultSpec(seed=0, drop_rate=0.05, max_retries=0),
        )
        assert result.faults.unrecovered > 0
        assert result.faults.rollbacks > 0
        assert result.faults.rollback_seconds > 0.0
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_checkpoint_disabled_raises(self, small_graph):
        with pytest.raises(FaultError):
            distributed_bfs(
                small_graph, (2, 2), 0,
                opts=BfsOptions(checkpoint=False),
                faults=FaultSpec(seed=0, drop_rate=0.05, max_retries=0),
            )

    def test_report_summary_and_messages_uninflated(self, small_graph):
        plain = distributed_bfs(small_graph, (2, 2), 0)
        faulted = distributed_bfs(
            small_graph, (2, 2), 0, faults=FaultSpec(seed=2, drop_rate=0.08)
        )
        # Retransmissions live in the fault counters, not total_messages.
        assert faulted.faults.rollbacks > 0 or (
            faulted.stats.total_messages == plain.stats.total_messages
        )
        text = faulted.faults.summary()
        assert "injected" in text and "recovered" in text
