"""Edge cases and error paths not covered by the main suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import build_communicator, build_engine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.errors import ConfigurationError
from repro.graph.csr import CsrGraph
from repro.machine.bluegene import BLUEGENE_L
from repro.machine.cluster import flat_network_for
from repro.runtime.comm import Communicator
from repro.runtime.network import Network, Transfer
from repro.types import GridShape, UNREACHED


class TestOptionsValidation:
    def test_unknown_expand_rejected(self):
        with pytest.raises(ConfigurationError, match="expand"):
            BfsOptions(expand_collective="telepathy")

    def test_unknown_fold_rejected(self):
        with pytest.raises(ConfigurationError, match="fold"):
            BfsOptions(fold_collective="telepathy")

    def test_bad_buffer_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="buffer_capacity"):
            BfsOptions(buffer_capacity=0)

    def test_frozen(self):
        opts = BfsOptions()
        with pytest.raises(AttributeError):
            opts.fold_collective = "ring"


class TestCommunicatorEdges:
    def test_single_rank_allreduce(self):
        comm = Communicator(flat_network_for(GridShape(1, 1)), BLUEGENE_L)
        assert comm.allreduce_sum(np.array([5.0])) == 5.0
        assert comm.allreduce_min(np.array([5.0])) == 5.0

    def test_exchange_without_sync(self):
        comm = Communicator(flat_network_for(GridShape(1, 2)), BLUEGENE_L)
        comm.exchange({0: {1: np.array([1, 2])}}, "fold", sync=False)
        # without the barrier, rank 1's receive cost may differ from rank 0's
        assert comm.clock.time[0] > 0

    def test_empty_round(self):
        comm = Communicator(flat_network_for(GridShape(1, 2)), BLUEGENE_L)
        inbox = comm.exchange({}, "fold")
        assert inbox == {}


class TestNetworkEdges:
    def test_empty_round_times(self):
        net = Network(flat_network_for(GridShape(1, 2)), BLUEGENE_L)
        send, recv = net.round_times([])
        assert send.sum() == 0 and recv.sum() == 0

    def test_route_cache_consistency(self):
        net = Network(flat_network_for(GridShape(1, 3)), BLUEGENE_L)
        first = net._route(0, 2)
        second = net._route(0, 2)
        assert first is second  # cached object reused

    def test_zero_length_transfer_still_pays_latency(self):
        net = Network(flat_network_for(GridShape(1, 2)), BLUEGENE_L)
        send, _ = net.round_times([Transfer(0, 1, 0)])
        assert send[0] >= BLUEGENE_L.alpha


class TestEngineEdges:
    def test_level_of_unlabelled(self, small_graph):
        engine = build_engine(small_graph, GridShape(2, 2))
        engine.start(0)
        assert engine.level_of(0) == 0
        assert engine.level_of(small_graph.n - 1) == UNREACHED

    def test_assemble_levels_before_any_step(self, small_graph):
        engine = build_engine(small_graph, GridShape(2, 2))
        engine.start(3)
        levels = engine.assemble_levels()
        assert levels[3] == 0
        assert (levels != UNREACHED).sum() == 1

    def test_empty_graph_single_vertex_component(self):
        g = CsrGraph.empty(6)
        result = run_bfs(build_engine(g, GridShape(2, 3)), 2)
        assert result.levels[2] == 0
        assert result.num_reached == 1

    def test_summary_unreachable_target(self):
        g = CsrGraph.from_edges(4, np.array([[0, 1]]))
        result = run_bfs(build_engine(g, GridShape(2, 2)), 0, target=3)
        assert "unreachable" in result.summary()

    def test_comm_reuse_rejected_when_grid_differs(self, small_graph):
        comm = build_communicator(GridShape(4, 1))
        with pytest.raises(ConfigurationError):
            build_engine(small_graph, GridShape(2, 2), comm=comm)


class TestReprHelpers:
    def test_csr_repr(self, small_graph):
        assert "CsrGraph" in repr(small_graph)

    def test_torus_repr(self):
        from repro.machine.torus import Torus3D

        assert "Torus3D" in repr(Torus3D(2, 2, 2))

    def test_balance_report_str(self, small_graph):
        from repro.partition.balance import balance_report
        from repro.partition.one_d import OneDPartition

        text = str(balance_report(OneDPartition(small_graph, 4), "owned_vertices"))
        assert "imbalance" in text
