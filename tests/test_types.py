"""Tests for repro.types: grid shapes, graph specs, array coercion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import GraphSpec, GridShape, VERTEX_DTYPE, as_vertex_array


class TestAsVertexArray:
    def test_list_coerced(self):
        arr = as_vertex_array([3, 1, 2])
        assert arr.dtype == VERTEX_DTYPE
        assert arr.tolist() == [3, 1, 2]

    def test_scalar_becomes_length_one(self):
        assert as_vertex_array(5).tolist() == [5]

    def test_existing_array_kept_contiguous(self):
        src = np.arange(10, dtype=VERTEX_DTYPE)[::2]
        arr = as_vertex_array(src)
        assert arr.flags["C_CONTIGUOUS"]
        assert arr.tolist() == [0, 2, 4, 6, 8]

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            as_vertex_array(np.zeros((2, 2)))

    def test_empty_ok(self):
        assert as_vertex_array([]).size == 0


class TestGridShape:
    def test_size(self):
        assert GridShape(4, 8).size == 32

    def test_is_1d(self):
        assert GridShape(1, 7).is_1d
        assert GridShape(7, 1).is_1d
        assert not GridShape(2, 2).is_1d
        assert GridShape(1, 1).is_1d

    def test_rank_coords_roundtrip(self):
        grid = GridShape(3, 5)
        for rank in range(grid.size):
            row, col = grid.coords_of(rank)
            assert grid.rank_of(row, col) == rank

    def test_rank_of_out_of_range(self):
        with pytest.raises(IndexError):
            GridShape(2, 2).rank_of(2, 0)
        with pytest.raises(IndexError):
            GridShape(2, 2).rank_of(0, -1)

    def test_coords_of_out_of_range(self):
        with pytest.raises(IndexError):
            GridShape(2, 2).coords_of(4)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            GridShape(0, 3)
        with pytest.raises(ValueError):
            GridShape(3, -1)

    def test_row_members_are_one_row(self):
        grid = GridShape(3, 4)
        members = grid.row_members(1)
        assert members == [4, 5, 6, 7]
        assert all(grid.coords_of(m)[0] == 1 for m in members)

    def test_col_members_are_one_column(self):
        grid = GridShape(3, 4)
        members = grid.col_members(2)
        assert members == [2, 6, 10]
        assert all(grid.coords_of(m)[1] == 2 for m in members)

    def test_rows_and_cols_partition_all_ranks(self):
        grid = GridShape(4, 6)
        from_rows = sorted(r for i in range(grid.rows) for r in grid.row_members(i))
        from_cols = sorted(r for j in range(grid.cols) for r in grid.col_members(j))
        assert from_rows == list(range(grid.size))
        assert from_cols == list(range(grid.size))

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 143))
    def test_roundtrip_property(self, rows, cols, rank):
        grid = GridShape(rows, cols)
        rank = rank % grid.size
        assert grid.rank_of(*grid.coords_of(rank)) == rank


class TestGraphSpec:
    def test_expected_edges(self):
        assert GraphSpec(n=1000, k=10).expected_edges == 5000

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            GraphSpec(n=10, k=-1)

    def test_zero_vertices_rejected(self):
        with pytest.raises(ValueError):
            GraphSpec(n=0, k=1)

    def test_degree_above_n_minus_1_rejected(self):
        with pytest.raises(ValueError):
            GraphSpec(n=5, k=5)

    def test_single_vertex_zero_degree_ok(self):
        assert GraphSpec(n=1, k=0).expected_edges == 0
