"""Failure-injection tests for the SPMD backend's hub protocol.

The hub must fail loudly — never hang — when a worker dies, stalls, or
desynchronises.  These tests drive :func:`_run_hub` and :func:`_recv`
directly with fake connections/processes so no real process needs to be
killed.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.backends.spmd import _recv, _run_hub
from repro.errors import CommunicationError
from repro.graph.csr import CsrGraph
from repro.partition.two_d import TwoDPartition
from repro.types import GridShape, LEVEL_DTYPE


class FakeConn:
    """Scripted one-way connection: yields queued messages, records sends."""

    def __init__(self, incoming=None):
        self.incoming = list(incoming or [])
        self.sent = []

    def poll(self, _timeout):
        return bool(self.incoming)

    def recv(self):
        return self.incoming.pop(0)

    def send(self, obj):
        self.sent.append(obj)


class FakeWorker:
    def __init__(self, alive=True, exitcode=None):
        self._alive = alive
        self.exitcode = exitcode

    def is_alive(self):
        return self._alive


def tiny_partition(p=2) -> TwoDPartition:
    edges = np.array([[0, 1], [1, 2], [2, 3]])
    return TwoDPartition(CsrGraph.from_edges(4, edges), GridShape(1, p))


class TestRecv:
    def test_delivers_queued_message(self):
        conn = FakeConn([("sum", 1)])
        assert _recv(conn, FakeWorker(), time.monotonic() + 5, 0) == ("sum", 1)

    def test_dead_worker_raises(self):
        conn = FakeConn([])
        with pytest.raises(CommunicationError, match="died"):
            _recv(conn, FakeWorker(alive=False, exitcode=-9), time.monotonic() + 5, 3)

    def test_timeout_raises(self):
        conn = FakeConn([])
        with pytest.raises(CommunicationError, match="timed out"):
            _recv(conn, FakeWorker(alive=True), time.monotonic() - 1, 1)


def _done(levels):
    """A worker's final message: owned levels, drop counters, sieved count."""
    return ("done", (levels, None, 0))


class TestHubProtocol:
    def test_routes_exchange(self):
        part = tiny_partition(2)
        payload = np.array([7], dtype=np.int64)
        conns = [
            FakeConn([("xchg", {1: payload}), _done(np.zeros(2, dtype=LEVEL_DTYPE))]),
            FakeConn([("xchg", {}), _done(np.zeros(2, dtype=LEVEL_DTYPE))]),
        ]
        workers = [FakeWorker(), FakeWorker()]
        levels, report, sieved = _run_hub(conns, workers, part, timeout=5)
        assert levels.shape == (4,)
        assert report is None
        assert sieved == 0
        # rank 1 received [(0, payload)] in the routed inbox
        inbox = conns[1].sent[0]
        assert inbox[0][0] == 0 and inbox[0][1].tolist() == [7]

    def test_sum_reduction(self):
        part = tiny_partition(2)
        conns = [
            FakeConn([("sum", (3, 0)), _done(np.zeros(2, dtype=LEVEL_DTYPE))]),
            FakeConn([("sum", (4, 0)), _done(np.zeros(2, dtype=LEVEL_DTYPE))]),
        ]
        _run_hub(conns, [FakeWorker(), FakeWorker()], part, timeout=5)
        assert conns[0].sent[0] == (7, 0)
        assert conns[1].sent[0] == (7, 0)

    def test_sum_broadcasts_failure_flag(self):
        part = tiny_partition(2)
        conns = [
            FakeConn([("sum", (3, 0)), _done(np.zeros(2, dtype=LEVEL_DTYPE))]),
            FakeConn([("sum", (4, 1)), _done(np.zeros(2, dtype=LEVEL_DTYPE))]),
        ]
        _run_hub(conns, [FakeWorker(), FakeWorker()], part, timeout=5)
        # one worker lost a chunk: every worker is told to roll back
        assert conns[0].sent[0] == (7, 1)
        assert conns[1].sent[0] == (7, 1)

    def test_desync_raises(self):
        part = tiny_partition(2)
        conns = [FakeConn([("sum", (1, 0))]), FakeConn([("xchg", {})])]
        with pytest.raises(CommunicationError, match="desynchronised"):
            _run_hub(conns, [FakeWorker(), FakeWorker()], part, timeout=5)

    def test_bad_destination_raises(self):
        part = tiny_partition(2)
        conns = [
            FakeConn([("xchg", {5: np.array([1], dtype=np.int64)})]),
            FakeConn([("xchg", {})]),
        ]
        with pytest.raises(CommunicationError, match="addressed rank 5"):
            _run_hub(conns, [FakeWorker(), FakeWorker()], part, timeout=5)

    def test_assembles_levels_by_ownership(self):
        part = tiny_partition(2)
        lv0 = np.array([0, 1], dtype=LEVEL_DTYPE)
        lv1 = np.array([2, 3], dtype=LEVEL_DTYPE)
        conns = [FakeConn([_done(lv0)]), FakeConn([_done(lv1)])]
        levels, _report, _sieved = _run_hub(
            conns, [FakeWorker(), FakeWorker()], part, timeout=5
        )
        assert levels.tolist() == [0, 1, 2, 3]

    def test_level_retry_budget_exhaustion_raises(self):
        from repro.errors import FaultError
        from repro.faults import FaultSpec

        part = tiny_partition(2)
        spec = FaultSpec(drop_rate=0.5, max_level_retries=2)
        # every termination allreduce reports a failure: the hub must give
        # up after max_level_retries replays with a structured report
        failing = [("sum", (1, 1))] * 4
        conns = [FakeConn(list(failing)), FakeConn(list(failing))]
        with pytest.raises(FaultError, match="still failing") as excinfo:
            _run_hub(conns, [FakeWorker(), FakeWorker()], part, timeout=5, spec=spec)
        assert excinfo.value.report is not None
        assert excinfo.value.report.rollbacks == 3
