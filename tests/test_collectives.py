"""Tests for all collective algorithms: semantic equivalence + accounting.

The key property: whatever the algorithm (direct, ring, union-ring,
two-phase), every group member must end up with the same *set* of vertices
— fold delivers the union of everything addressed to it, expand delivers
every other member's contribution.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.base import get_expand, get_fold
from repro.collectives.two_phase import subgrid_shape
from repro.collectives.union import count_duplicates, union_merge
from repro.errors import CommunicationError
from repro.machine.bluegene import BLUEGENE_L
from repro.machine.cluster import flat_network_for
from repro.runtime.comm import Communicator
from repro.types import GridShape, VERTEX_DTYPE

EXPAND_NAMES = ["direct", "ring", "two-phase", "recursive-doubling"]
FOLD_NAMES = ["direct", "ring", "union-ring", "two-phase", "bruck"]


def make_comm(p: int) -> Communicator:
    return Communicator(flat_network_for(GridShape(1, p)), BLUEGENE_L)


def random_outboxes(size: int, seed: int) -> list[dict[int, np.ndarray]]:
    rng = np.random.default_rng(seed)
    outboxes = []
    for _g in range(size):
        per_dest = {}
        for d in range(size):
            if rng.random() < 0.7:
                length = int(rng.integers(0, 12))
                per_dest[d] = rng.integers(0, 40, length).astype(VERTEX_DTYPE)
        outboxes.append(per_dest)
    return outboxes


def expected_fold_sets(outboxes: list[dict[int, np.ndarray]]) -> list[set[int]]:
    size = len(outboxes)
    out = [set() for _ in range(size)]
    for g, per_dest in enumerate(outboxes):
        for d, payload in per_dest.items():
            out[d].update(payload.tolist())
    return out


class TestUnionMerge:
    def test_merge_and_count(self):
        merged, dups = union_merge(np.array([3, 1, 3]), np.array([1, 2]))
        assert merged.tolist() == [1, 2, 3]
        assert dups == 2

    def test_empty_inputs(self):
        merged, dups = union_merge()
        assert merged.size == 0 and dups == 0

    def test_count_duplicates(self):
        assert count_duplicates([np.array([1, 1]), np.array([1])]) == 2


class TestSubgridShape:
    @pytest.mark.parametrize(
        "size,expected", [(1, (1, 1)), (6, (2, 3)), (16, (4, 4)), (7, (1, 7)), (12, (3, 4))]
    )
    def test_most_square(self, size, expected):
        assert subgrid_shape(size) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            subgrid_shape(0)


class TestRegistry:
    def test_known_names(self):
        for name in EXPAND_NAMES:
            assert get_expand(name).name == name
        for name in FOLD_NAMES:
            assert get_fold(name).name == name

    def test_unknown_name(self):
        with pytest.raises(CommunicationError):
            get_fold("nope")
        with pytest.raises(CommunicationError):
            get_expand("nope")


@pytest.mark.parametrize("fold_name", FOLD_NAMES)
@pytest.mark.parametrize("size", [1, 2, 3, 4, 6, 7, 8])
class TestFoldSemantics:
    def test_every_destination_gets_its_union(self, fold_name, size):
        comm = make_comm(size)
        outboxes = random_outboxes(size, seed=size * 101)
        fold = get_fold(fold_name)
        received = fold.fold(comm, list(range(size)), outboxes)
        expected = expected_fold_sets(outboxes)
        for d in range(size):
            got = (
                set(np.concatenate(received[d]).tolist()) if received[d] else set()
            )
            assert got == expected[d], f"{fold_name} size={size} dest={d}"

    def test_clock_advances_when_data_moves(self, fold_name, size):
        if size == 1:
            pytest.skip("no wire traffic with one rank")
        comm = make_comm(size)
        outboxes = [
            {d: np.arange(5, dtype=VERTEX_DTYPE) for d in range(size)}
            for _ in range(size)
        ]
        get_fold(fold_name).fold(comm, list(range(size)), outboxes)
        assert comm.clock.elapsed > 0


@pytest.mark.parametrize("expand_name", EXPAND_NAMES)
@pytest.mark.parametrize("size", [1, 2, 3, 4, 6, 7, 8])
class TestExpandSemantics:
    def test_everyone_gets_all_other_contributions(self, expand_name, size):
        comm = make_comm(size)
        rng = np.random.default_rng(size)
        contributions = [
            rng.integers(0, 50, int(rng.integers(0, 8))).astype(VERTEX_DTYPE)
            for _ in range(size)
        ]
        expand = get_expand(expand_name)
        received = expand.expand(comm, list(range(size)), contributions)
        for g in range(size):
            expected = set()
            for other in range(size):
                if other != g:
                    expected.update(contributions[other].tolist())
            got = set(np.concatenate(received[g]).tolist()) if received[g] else set()
            assert got == expected, f"{expand_name} size={size} member={g}"


class TestExpandFilter:
    def test_direct_expand_respects_filter(self):
        size = 3
        comm = make_comm(size)
        contributions = [np.array([10 * g, 10 * g + 1], dtype=VERTEX_DTYPE) for g in range(size)]

        def dest_filter(g, d):
            # Only even entries reach destination 0; everything elsewhere.
            payload = contributions[g]
            return payload[payload % 2 == 0] if d == 0 else payload

        received = get_expand("direct").expand(
            comm, [0, 1, 2], contributions, dest_filter=dest_filter
        )
        got0 = set(np.concatenate(received[0]).tolist())
        assert got0 == {10, 20}  # odd entries filtered out
        got1 = set(np.concatenate(received[1]).tolist())
        assert got1 == {0, 1, 20, 21}


class TestUnionFoldAccounting:
    def test_duplicates_counted(self):
        size = 4
        comm = make_comm(size)
        comm.stats.begin_level(0)
        # Every rank sends the same vertex to destination 0: 3 duplicates.
        outboxes = [{0: np.array([7], dtype=VERTEX_DTYPE)} for _ in range(size)]
        received = get_fold("union-ring").fold(comm, list(range(size)), outboxes)
        level = comm.stats.end_level(0)
        assert set(np.concatenate(received[0]).tolist()) == {7}
        assert level.duplicates_eliminated == size - 1

    def test_union_fold_reduces_wire_volume_vs_plain_ring(self):
        """With heavy duplication the union-ring moves fewer vertices."""
        size = 6
        rng = np.random.default_rng(0)
        outboxes = [
            {d: rng.integers(0, 10, 30).astype(VERTEX_DTYPE) for d in range(size)}
            for _ in range(size)
        ]
        comm_plain = make_comm(size)
        get_fold("ring").fold(comm_plain, list(range(size)), outboxes)
        comm_union = make_comm(size)
        get_fold("union-ring").fold(comm_union, list(range(size)), outboxes)
        assert comm_union.stats.total_processed < comm_plain.stats.total_processed

    def test_delivery_vs_processed_split(self):
        """Ring forwarding inflates processed volume but not delivered volume."""
        size = 5
        comm = make_comm(size)
        comm.stats.begin_level(0)
        outboxes = [
            {d: np.array([g * 10 + d], dtype=VERTEX_DTYPE) for d in range(size)}
            for g in range(size)
        ]
        get_fold("ring").fold(comm, list(range(size)), outboxes)
        level = comm.stats.end_level(0)
        delivered = level.fold_received
        assert delivered == size * (size - 1)  # one vertex per (src, dst!=src)
        assert level.processed > delivered  # forwarding hops


class TestTwoPhaseRoundCount:
    def test_fold_rounds_scale_with_a_plus_b(self):
        """Two-phase fold uses O(a+b) rounds; the single ring uses G-1."""
        size = 16  # 4x4 subgrid
        outboxes = [
            {d: np.array([g], dtype=VERTEX_DTYPE) for d in range(size)}
            for g in range(size)
        ]
        comm_ring = make_comm(size)
        get_fold("union-ring").fold(comm_ring, list(range(size)), outboxes)
        comm_two = make_comm(size)
        get_fold("two-phase").fold(comm_two, list(range(size)), outboxes)
        # messages per rank ~ rounds; two-phase should send far fewer rounds
        assert comm_two.stats.total_messages < comm_ring.stats.total_messages

    def test_explicit_shape(self):
        size = 8
        comm = make_comm(size)
        outboxes = random_outboxes(size, seed=3)
        fold = get_fold("two-phase", shape=(2, 4))
        received = fold.fold(comm, list(range(size)), outboxes)
        expected = expected_fold_sets(outboxes)
        for d in range(size):
            got = set(np.concatenate(received[d]).tolist()) if received[d] else set()
            assert got == expected[d]

    def test_bad_shape_rejected(self):
        comm = make_comm(6)
        fold = get_fold("two-phase", shape=(2, 2))
        with pytest.raises(ValueError):
            fold.fold(comm, list(range(6)), random_outboxes(6, 0))


class TestGroupValidation:
    def test_mismatched_sizes(self):
        comm = make_comm(3)
        with pytest.raises(CommunicationError):
            get_fold("direct").fold(comm, [0, 1], random_outboxes(3, 0))

    def test_duplicate_ranks(self):
        comm = make_comm(3)
        with pytest.raises(CommunicationError):
            get_fold("direct").fold(comm, [0, 0, 1], random_outboxes(3, 0))

    def test_subgroup_collective(self):
        """Collectives work on a strict subset of the communicator's ranks."""
        comm = make_comm(6)
        group = [1, 3, 5]
        outboxes = [{d: np.array([10 + d], dtype=VERTEX_DTYPE) for d in range(3)}] * 3
        received = get_fold("direct").fold(comm, group, outboxes)
        for d in range(3):
            assert set(np.concatenate(received[d]).tolist()) == {10 + d}


@given(st.integers(2, 6), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_fold_property_all_algorithms_agree(size, seed):
    """All four fold algorithms deliver identical vertex sets."""
    outboxes = random_outboxes(size, seed)
    expected = expected_fold_sets(outboxes)
    for name in FOLD_NAMES:
        comm = make_comm(size)
        received = get_fold(name).fold(comm, list(range(size)), outboxes)
        for d in range(size):
            got = set(np.concatenate(received[d]).tolist()) if received[d] else set()
            assert got == expected[d], f"{name} deviates at dest {d}"


@given(st.integers(2, 6), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_expand_property_all_algorithms_agree(size, seed):
    """All three expand algorithms deliver identical contribution sets."""
    rng = np.random.default_rng(seed)
    contributions = [
        rng.integers(0, 30, int(rng.integers(0, 6))).astype(VERTEX_DTYPE)
        for _ in range(size)
    ]
    for name in EXPAND_NAMES:
        comm = make_comm(size)
        received = get_expand(name).expand(comm, list(range(size)), contributions)
        for g in range(size):
            expected = set()
            for other in range(size):
                if other != g:
                    expected.update(contributions[other].tolist())
            got = set(np.concatenate(received[g]).tolist()) if received[g] else set()
            assert got == expected, f"{name} deviates at member {g}"
