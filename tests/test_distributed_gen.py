"""Tests for distributed (per-rank) graph generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import build_communicator
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.level_sync import run_bfs
from repro.bfs.serial import serial_bfs
from repro.graph.distributed_gen import DistributedGraphBuilder, _sample_cell
from repro.partition.base import BlockDistribution
from repro.partition.two_d import TwoDPartition
from repro.errors import PartitionError
from repro.types import GraphSpec, GridShape


def assert_locals_equal(a, b):
    assert a.vertex_lo == b.vertex_lo and a.vertex_hi == b.vertex_hi
    assert np.array_equal(a.col_map.ids, b.col_map.ids)
    assert np.array_equal(a.col_indptr, b.col_indptr)
    for ci in range(len(a.col_map)):
        ra = np.sort(a.rows[a.col_indptr[ci] : a.col_indptr[ci + 1]])
        rb = np.sort(b.rows[b.col_indptr[ci] : b.col_indptr[ci + 1]])
        assert np.array_equal(ra, rb)


class TestCellSampling:
    def test_cell_determinism(self):
        spec = GraphSpec(n=500, k=6, seed=2)
        dist = BlockDistribution(500, 8)
        a = _sample_cell(spec, dist, 1, 3)
        b = _sample_cell(spec, dist, 1, 3)
        assert np.array_equal(a, b)

    def test_cells_disjoint_and_valid(self):
        spec = GraphSpec(n=400, k=5, seed=1)
        dist = BlockDistribution(400, 4)
        seen = set()
        for bu in range(4):
            for bv in range(bu, 4):
                edges = _sample_cell(spec, dist, bu, bv)
                u_lo, u_hi = dist.range_of(bu)
                v_lo, v_hi = dist.range_of(bv)
                for u, v in edges.tolist():
                    assert u < v
                    assert u_lo <= u < u_hi and v_lo <= v < v_hi
                    assert (u, v) not in seen
                    seen.add((u, v))

    def test_noncanonical_cell_rejected(self):
        spec = GraphSpec(n=100, k=3, seed=0)
        dist = BlockDistribution(100, 4)
        with pytest.raises(ValueError):
            _sample_cell(spec, dist, 2, 1)

    def test_zero_degree(self):
        spec = GraphSpec(n=100, k=0, seed=0)
        dist = BlockDistribution(100, 2)
        assert _sample_cell(spec, dist, 0, 1).size == 0

    def test_expected_edge_count(self):
        spec = GraphSpec(n=4000, k=10, seed=3)
        builder = DistributedGraphBuilder(spec, GridShape(2, 2))
        graph = builder.reference_graph()
        expected = spec.expected_edges
        assert abs(graph.num_edges - expected) < 5 * np.sqrt(expected)


class TestBuilderEquivalence:
    @pytest.mark.parametrize("grid", [GridShape(2, 2), GridShape(3, 4), GridShape(1, 6),
                                      GridShape(6, 1)], ids=str)
    def test_matches_central_partition(self, grid):
        spec = GraphSpec(n=900, k=7, seed=4)
        builder = DistributedGraphBuilder(spec, grid)
        central = TwoDPartition(builder.reference_graph(), grid)
        for rank, local in enumerate(builder.build_all()):
            assert_locals_equal(central.local(rank), local)

    def test_cells_for_rank_cover_storage(self):
        spec = GraphSpec(n=600, k=6, seed=7)
        grid = GridShape(2, 3)
        builder = DistributedGraphBuilder(spec, grid)
        # every canonical cell that can place an entry on the rank is listed
        for rank in range(grid.size):
            cells = set(builder.cells_for_rank(rank))
            assert len(cells) <= 2 * grid.size
            R, C = grid.rows, grid.cols
            i, j = grid.coords_of(rank)
            for bu in range(grid.size):
                for bv in range(grid.size):
                    stores = bu % R == i and bv // R == j
                    if stores:
                        assert (min(bu, bv), max(bu, bv)) in cells

    def test_build_partition_runs_bfs(self):
        """BFS on a distributed-built partition equals serial BFS on the
        assembled reference graph."""
        spec = GraphSpec(n=1500, k=8, seed=9)
        grid = GridShape(3, 3)
        builder = DistributedGraphBuilder(spec, grid)
        partition = builder.build_partition()
        comm = build_communicator(grid)
        result = run_bfs(Bfs2DEngine(partition, comm), 0)
        assert np.array_equal(result.levels, serial_bfs(builder.reference_graph(), 0))

    def test_from_locals_validation(self):
        spec = GraphSpec(n=300, k=4, seed=1)
        builder = DistributedGraphBuilder(spec, GridShape(2, 2))
        locals_ = builder.build_all()
        with pytest.raises(PartitionError):
            TwoDPartition.from_locals(300, GridShape(2, 2), locals_[:3])
        with pytest.raises(PartitionError):
            TwoDPartition.from_locals(300, GridShape(2, 2), list(reversed(locals_)))

    @given(st.integers(0, 500), st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_property(self, seed, rows, cols):
        spec = GraphSpec(n=240, k=4, seed=seed)
        grid = GridShape(rows, cols)
        builder = DistributedGraphBuilder(spec, grid)
        central = TwoDPartition(builder.reference_graph(), grid)
        for rank, local in enumerate(builder.build_all()):
            assert_locals_equal(central.local(rank), local)
