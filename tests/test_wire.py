"""Tests for the repro.wire frontier-compression codecs.

Three layers: codec round-trip properties (hypothesis), engine-level
equivalence (every codec must reproduce the serial BFS level array and
the raw codec must be byte- and time-identical to the pre-codec runtime),
and the γ-model predictions in ``repro.analysis.bounds``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    level_traffic_bytes,
    predicted_compression_ratio,
    predicted_level_traffic_bytes,
    predicted_message_bytes,
)
from repro.api import distributed_bfs
from repro.backends.spmd import spmd_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.errors import CodecError, ConfigurationError
from repro.machine.bluegene import BLUEGENE_L
from repro.types import GridShape, SystemSpec, VERTEX_DTYPE
from repro.wire import (
    WIRE_CODECS,
    AdaptiveCodec,
    BitmapCodec,
    DeltaVarintCodec,
    RawCodec,
    get_codec,
    resolve_wire,
    varint_nbytes,
    zigzag,
)

ALL_CODECS = ["raw", "delta-varint", "bitmap", "adaptive"]

FAST = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: sorted, duplicate-free vertex ids from a bounded universe — what every
#: collective wire payload looks like in practice (ids are < n, so bitmap
#: spans stay proportional to the owned block) and what all four codecs
#: must accept
sorted_unique_arrays = st.lists(
    st.integers(0, 1 << 16), max_size=300, unique=True
).map(lambda xs: np.sort(np.array(xs, dtype=VERTEX_DTYPE)))

#: like the above but with ids up to 2^40 — raw/varint/adaptive handle
#: these in O(m); the bitmap's dense bitset is not meant for such spans
sorted_unique_sparse_arrays = st.lists(
    st.integers(0, 1 << 40), max_size=300, unique=True
).map(lambda xs: np.sort(np.array(xs, dtype=VERTEX_DTYPE)))

#: arbitrary int64 content, including unsorted, duplicated, and negative
#: values with overflowing deltas — raw and delta-varint must survive these
arbitrary_arrays = st.lists(
    st.integers(-(1 << 63), (1 << 63) - 1), max_size=200
).map(lambda xs: np.array(xs, dtype=VERTEX_DTYPE))


class TestRoundTrip:
    @pytest.mark.parametrize("name", ALL_CODECS)
    @FAST
    @given(payload=sorted_unique_arrays)
    def test_sorted_unique_round_trips(self, name, payload):
        codec = get_codec(name)
        blob = codec.encode(payload)
        assert isinstance(blob, bytes)
        out = codec.decode(blob)
        assert out.dtype == VERTEX_DTYPE
        np.testing.assert_array_equal(out, payload)

    @pytest.mark.parametrize("name", ["raw", "delta-varint"])
    @FAST
    @given(payload=arbitrary_arrays)
    def test_arbitrary_round_trips(self, name, payload):
        codec = get_codec(name)
        np.testing.assert_array_equal(codec.decode(codec.encode(payload)), payload)

    @pytest.mark.parametrize("name", ["raw", "delta-varint", "adaptive"])
    @FAST
    @given(payload=sorted_unique_sparse_arrays)
    def test_sparse_ids_round_trip(self, name, payload):
        # adaptive must reject the bitmap here: huge spans over few ids
        # would cost span/8 bytes on the wire (and in memory)
        codec = get_codec(name)
        np.testing.assert_array_equal(codec.decode(codec.encode(payload)), payload)

    @pytest.mark.parametrize("name", ALL_CODECS)
    @FAST
    @given(payload=sorted_unique_arrays)
    def test_nbytes_matches_encoding(self, name, payload):
        codec = get_codec(name)
        assert codec.encoded_nbytes(payload) == len(codec.encode(payload))

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_fixed_cases(self, name):
        codec = get_codec(name)
        for values in ([], [0], [7], [2**40], list(range(100)), [0, 1, 5, 1000]):
            payload = np.array(values, dtype=VERTEX_DTYPE)
            np.testing.assert_array_equal(
                codec.decode(codec.encode(payload)), payload
            )

    def test_adaptive_round_trips_unsorted(self):
        # bruck/two-phase collectives concatenate buckets, so adaptive
        # must fall back to varint and still round-trip
        codec = AdaptiveCodec()
        payload = np.array([9, 3, 3, -4, 10**12], dtype=VERTEX_DTYPE)
        np.testing.assert_array_equal(codec.decode(codec.encode(payload)), payload)

    def test_bitmap_rejects_invalid(self):
        codec = BitmapCodec()
        for bad in ([3, 1], [1, 1], [-1, 2]):
            with pytest.raises(CodecError):
                codec.encode(np.array(bad, dtype=VERTEX_DTYPE))


class TestCompression:
    def test_dense_payload_ordering(self):
        rng = np.random.default_rng(0)
        payload = np.sort(
            rng.choice(100_000, size=40_000, replace=False).astype(VERTEX_DTYPE)
        )
        raw = RawCodec().encoded_nbytes(payload)
        varint = DeltaVarintCodec().encoded_nbytes(payload)
        bitmap = BitmapCodec().encoded_nbytes(payload)
        adaptive = AdaptiveCodec().encoded_nbytes(payload)
        assert bitmap < varint < raw
        assert adaptive <= min(varint, bitmap) + 1  # one tag byte

    def test_sparse_payload_prefers_varint(self):
        payload = np.arange(0, 10**7, 10**4, dtype=VERTEX_DTYPE)
        assert (
            DeltaVarintCodec().encoded_nbytes(payload)
            < BitmapCodec().encoded_nbytes(payload)
        )

    def test_helpers(self):
        assert zigzag(np.array([0, -1, 1], dtype=VERTEX_DTYPE)).tolist() == [0, 1, 2]
        assert varint_nbytes(np.array([0, 127, 128], dtype=np.uint64)).tolist() == [
            1, 1, 2,
        ]

    def test_codec_time_costs(self):
        payload = np.arange(1000, dtype=VERTEX_DTYPE)
        raw = RawCodec()
        assert raw.encode_seconds(payload) == 0.0 == raw.decode_seconds(payload)
        varint = DeltaVarintCodec()
        assert varint.encode_seconds(payload) > 0.0
        assert varint.decode_seconds(payload) > 0.0


class TestResolution:
    def test_registry_has_builtins(self):
        get_codec("raw")  # force registration
        assert set(ALL_CODECS) <= set(WIRE_CODECS)

    def test_resolve_forms(self):
        assert resolve_wire(None).name == "raw"
        assert resolve_wire("bitmap").name == "bitmap"
        codec = AdaptiveCodec()
        assert resolve_wire(codec) is codec

    def test_unknown_name_rejected(self):
        with pytest.raises(CodecError):
            get_codec("gzip")

    def test_system_spec_validates_wire(self):
        assert SystemSpec(wire="adaptive").wire == "adaptive"
        with pytest.raises(ConfigurationError):
            SystemSpec(wire="gzip")
        # duck-typed codec instances pass validation
        assert SystemSpec(wire=RawCodec()).wire.name == "raw"


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", ALL_CODECS)
    @pytest.mark.parametrize("layout,grid", [("2d", (2, 2)), ("1d", (4, 1))])
    def test_levels_match_serial(self, small_graph, name, layout, grid):
        result = distributed_bfs(small_graph, grid, 0, layout=layout, wire=name)
        np.testing.assert_array_equal(result.levels, serial_bfs(small_graph, 0))

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_frontier_sizes_identical(self, small_graph, name):
        base = distributed_bfs(small_graph, (2, 2), 0)
        coded = distributed_bfs(small_graph, (2, 2), 0, wire=name)
        assert (
            [ls.frontier_size for ls in base.stats.levels]
            == [ls.frontier_size for ls in coded.stats.levels]
        )

    def test_raw_is_byte_identical(self, small_graph):
        base = distributed_bfs(small_graph, (2, 2), 0)
        raw = distributed_bfs(small_graph, (2, 2), 0, wire="raw")
        assert raw.elapsed == base.elapsed
        assert raw.comm_time == base.comm_time
        assert raw.compute_time == base.compute_time
        assert raw.stats.total_bytes == base.stats.total_bytes
        assert raw.stats.total_encoded_bytes == raw.stats.total_bytes

    def test_adaptive_compresses(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0, wire="adaptive")
        assert result.stats.total_encoded_bytes < result.stats.total_bytes
        assert result.stats.compression_ratio > 1.0

    def test_codec_charges_compute_time(self, small_graph):
        base = distributed_bfs(small_graph, (2, 2), 0)
        coded = distributed_bfs(small_graph, (2, 2), 0, wire="delta-varint")
        assert coded.compute_time > base.compute_time

    @pytest.mark.parametrize("expand,fold", [("two-phase", "bruck"), ("ring", "ring")])
    def test_unsorted_collectives_still_exact(self, small_graph, expand, fold):
        opts = BfsOptions(expand_collective=expand, fold_collective=fold)
        result = distributed_bfs(small_graph, (2, 2), 0, opts=opts, wire="adaptive")
        np.testing.assert_array_equal(result.levels, serial_bfs(small_graph, 0))

    @pytest.mark.parametrize("preset", [
        "bluegene-2d-varint", "bluegene-2d-bitmap", "bluegene-2d-adaptive",
    ])
    def test_presets(self, small_graph, preset):
        result = distributed_bfs(small_graph, (2, 2), 0, system=preset)
        np.testing.assert_array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_per_level_ratio_exposed(self, small_graph):
        result = distributed_bfs(small_graph, (2, 2), 0, wire="adaptive")
        raw = result.stats.bytes_per_level(kind="raw")
        enc = result.stats.bytes_per_level(kind="encoded")
        assert raw.shape == enc.shape
        assert (enc <= raw).all()


class TestSpmdRoundTrip:
    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_matches_serial(self, small_graph, name):
        levels = spmd_bfs(small_graph, (2, 2), 0, wire=name, timeout=60)
        np.testing.assert_array_equal(levels, serial_bfs(small_graph, 0))

    def test_ring_collectives_encoded(self, small_graph):
        opts = BfsOptions(expand_collective="ring", fold_collective="union-ring")
        levels = spmd_bfs(small_graph, (2, 3), 7, opts=opts, wire="adaptive", timeout=60)
        np.testing.assert_array_equal(levels, serial_bfs(small_graph, 7))


class TestGammaPredictions:
    def test_raw_matches_uncompressed_traffic(self):
        grid = GridShape(4, 4)
        exact = level_traffic_bytes(20_000, 10.0, grid, BLUEGENE_L)
        predicted = predicted_level_traffic_bytes(
            20_000, 10.0, grid, BLUEGENE_L, "raw"
        )
        assert predicted == pytest.approx(exact)

    @pytest.mark.parametrize("name", ["delta-varint", "bitmap", "adaptive"])
    def test_compressed_below_raw(self, name):
        grid = GridShape(4, 4)
        raw = predicted_level_traffic_bytes(50_000, 10.0, grid, BLUEGENE_L, "raw")
        coded = predicted_level_traffic_bytes(50_000, 10.0, grid, BLUEGENE_L, name)
        assert 0.0 < coded < raw
        assert predicted_compression_ratio(50_000, 10.0, grid, BLUEGENE_L, name) > 1.0

    def test_adaptive_tracks_minimum(self):
        for m, span in [(10, 100_000), (50_000, 100_000), (1, 8)]:
            varint = predicted_message_bytes("delta-varint", m, span)
            bitmap = predicted_message_bytes("bitmap", m, span)
            adaptive = predicted_message_bytes("adaptive", m, span)
            assert adaptive == pytest.approx(1.0 + min(varint, bitmap))

    def test_bitmap_constant_in_density(self):
        sparse = predicted_message_bytes("bitmap", 10, 80_000)
        dense = predicted_message_bytes("bitmap", 70_000, 80_000)
        assert sparse == dense

    def test_empty_message_costs_nothing(self):
        for name in ALL_CODECS:
            assert predicted_message_bytes(name, 0, 1000) == 0.0

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            predicted_message_bytes("gzip", 10, 100)
