"""High-diameter stress workloads: lattices and rings.

The paper's Poisson graphs have O(log n) diameters, so the BFS loop runs a
handful of levels with explosive frontiers.  Lattices and rings invert the
regime — hundreds of levels with small frontiers — stressing the per-level
machinery (termination reductions, empty-frontier ranks, level counters).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import build_engine, distributed_bfs
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.graph.csr import CsrGraph
from repro.graph.generators import lattice_edges, ring_edges
from repro.types import GridShape


class TestLatticeGenerator:
    def test_open_lattice_edge_count(self):
        # w x h grid: h*(w-1) horizontal + w*(h-1) vertical
        g = CsrGraph.from_edges(12, lattice_edges(4, 3))
        assert g.num_edges == 3 * 3 + 4 * 2

    def test_periodic_lattice_regular(self):
        g = CsrGraph.from_edges(16, lattice_edges(4, 4, periodic=True))
        assert (g.degree() == 4).all()

    def test_degenerate_dimensions(self):
        g = CsrGraph.from_edges(5, lattice_edges(5, 1))
        assert g.num_edges == 4  # a path
        assert CsrGraph.from_edges(1, lattice_edges(1, 1)).num_edges == 0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            lattice_edges(0, 3)

    def test_distances_are_manhattan(self):
        w, h = 7, 5
        g = CsrGraph.from_edges(w * h, lattice_edges(w, h))
        levels = serial_bfs(g, 0)
        for y in range(h):
            for x in range(w):
                assert levels[y * w + x] == x + y

    def test_ring_generator(self):
        g = CsrGraph.from_edges(8, ring_edges(8))
        assert (g.degree() == 2).all()
        assert serial_bfs(g, 0).max() == 4

    def test_tiny_ring(self):
        assert ring_edges(1).shape == (0, 2)
        assert CsrGraph.from_edges(2, ring_edges(2)).num_edges == 1


class TestDeepGraphStress:
    def test_lattice_bfs_many_levels(self):
        """60x20 lattice: 79 levels of tiny frontiers; all variants agree."""
        w, h = 60, 20
        g = CsrGraph.from_edges(w * h, lattice_edges(w, h))
        ref = serial_bfs(g, 0)
        assert ref.max() == w + h - 2
        for opts in (
            BfsOptions(),
            BfsOptions(expand_collective="two-phase", fold_collective="two-phase"),
            BfsOptions(fold_collective="bruck"),
        ):
            result = distributed_bfs(g, (3, 4), 0, opts=opts)
            assert np.array_equal(result.levels, ref)
            assert result.num_levels == w + h - 1  # 78 expansions + empty final

    def test_ring_bfs_maximum_diameter(self):
        n = 300
        g = CsrGraph.from_edges(n, ring_edges(n))
        result = run_bfs(build_engine(g, GridShape(2, 2)), 0)
        assert np.array_equal(result.levels, serial_bfs(g, 0))
        assert result.levels.max() == n // 2

    def test_per_level_stats_depth(self):
        """Per-level statistics stay consistent over hundreds of levels."""
        n = 240
        g = CsrGraph.from_edges(n, ring_edges(n))
        result = run_bfs(build_engine(g, GridShape(2, 2)), 0)
        sizes = [s.frontier_size for s in result.stats.levels]
        # a ring frontier is two vertices per level until the antipode
        assert sizes[: n // 2 - 1] == [2] * (n // 2 - 1)
        assert result.stats.time_per_level("comm").shape[0] == result.num_levels
