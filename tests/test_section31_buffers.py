"""Section 3.1 end-to-end: gamma-bound buffers are big enough in practice.

The paper's argument: because the expected per-processor message length is
bounded by the gamma expressions, fixed-size buffers sized from those
bounds suffice — messages virtually never need splitting.  We verify that
on real simulated runs: capping buffers at the analytic bound leaves the
message count (and the results) essentially unchanged, while a cap far
below the bound forces heavy chunking.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.model import (
    expected_expand_length_2d,
    expected_fold_length_2d,
)
from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.graph.generators import poisson_random_graph
from repro.types import GraphSpec, GridShape


@pytest.mark.parametrize("k", [8.0, 30.0])
def test_gamma_bound_buffers_suffice(k):
    n = 6000
    grid = GridShape(4, 4)
    graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=8))
    p = grid.size
    bound = max(
        expected_expand_length_2d(n, k, p, grid.rows),
        expected_fold_length_2d(n, k, p, grid.cols),
    )
    cap = max(1, math.ceil(bound))

    uncapped = run_bfs(build_engine(graph, grid), 0)
    capped = run_bfs(
        build_engine(graph, grid, opts=BfsOptions(buffer_capacity=cap)), 0
    )
    assert np.array_equal(capped.levels, uncapped.levels)
    # The analytic bound is a worst-case *expectation*; single messages may
    # exceed it slightly, so allow a small amount of chunking — but nothing
    # like the blow-up an undersized buffer causes.
    assert capped.stats.total_messages <= 1.2 * uncapped.stats.total_messages

    tiny = run_bfs(
        build_engine(graph, grid, opts=BfsOptions(buffer_capacity=max(1, cap // 50))), 0
    )
    assert tiny.stats.total_messages > 2 * uncapped.stats.total_messages


def test_bound_grows_with_degree_as_paper_warns():
    """Section 3.2: the bound approaches (n/P)k for large n — the reason
    the paper moves to point-to-point collectives with k-independent
    buffers."""
    n, p = 10**7, 1024
    low = expected_fold_length_2d(n, 10, p, 256)
    high = expected_fold_length_2d(n, 100, p, 256)
    assert high > 5 * low
