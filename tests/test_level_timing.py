"""Tests for per-level simulated time attribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.types import GridShape


class TestPerLevelTimes:
    def test_levels_sum_to_totals(self, small_graph):
        result = run_bfs(build_engine(small_graph, GridShape(2, 4)), 0)
        comm = result.stats.time_per_level("comm")
        compute = result.stats.time_per_level("compute")
        assert comm.sum() == pytest.approx(result.comm_time, rel=1e-9)
        assert compute.sum() == pytest.approx(result.compute_time, rel=1e-9)

    def test_nonnegative(self, small_graph):
        result = run_bfs(build_engine(small_graph, GridShape(2, 2)), 0)
        assert (result.stats.time_per_level("comm") >= 0).all()
        assert (result.stats.time_per_level("compute") >= 0).all()

    def test_busy_levels_cost_more(self, small_graph):
        """The level with the largest frontier must cost the most compute."""
        result = run_bfs(build_engine(small_graph, GridShape(2, 2)), 0)
        compute = result.stats.time_per_level("compute")
        frontiers = np.array([s.frontier_size for s in result.stats.levels])
        # compare the peak-frontier level against the first level
        assert compute[np.argmax(frontiers)] > compute[0]

    def test_unknown_kind_rejected(self, small_graph):
        result = run_bfs(build_engine(small_graph, GridShape(2, 2)), 0)
        with pytest.raises(ValueError):
            result.stats.time_per_level("waiting")

    def test_single_rank_has_zero_comm_levels(self, small_graph):
        result = run_bfs(build_engine(small_graph, GridShape(1, 1)), 0)
        assert result.stats.time_per_level("comm").sum() == 0.0
