"""Tests for repro.utils: rng streams, timers, validation, sorted-array ops."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.arrays import in_sorted, intersect_sorted
from repro.utils.rng import RngFactory, spawn_rank_rngs
from repro.utils.timer import PhaseTimer, Timer
from repro.utils.validation import check_in_range, check_positive, check_probability


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(42).named("edges").integers(0, 1 << 30, 100)
        b = RngFactory(42).named("edges").integers(0, 1 << 30, 100)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        a = RngFactory(42).named("edges").integers(0, 1 << 30, 100)
        b = RngFactory(42).named("sources").integers(0, 1 << 30, 100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).named("edges").integers(0, 1 << 30, 100)
        b = RngFactory(2).named("edges").integers(0, 1 << 30, 100)
        assert not np.array_equal(a, b)

    def test_rank_streams_independent(self):
        rngs = spawn_rank_rngs(7, 4)
        draws = [rng.integers(0, 1 << 30, 50) for rng in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_rank_stream_reproducible(self):
        a = RngFactory(7).for_rank("gen", 3).integers(0, 1 << 30, 50)
        b = RngFactory(7).for_rank("gen", 3).integers(0, 1 << 30, 50)
        assert np.array_equal(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(0).for_rank("x", -2)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        with t:
            pass
        assert t.calls == 2
        assert t.elapsed > 0

    def test_double_start_rejected(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestPhaseTimer:
    def test_phases_tracked_separately(self):
        pt = PhaseTimer()
        with pt.phase("expand"):
            pass
        with pt.phase("fold"):
            pass
        with pt.phase("expand"):
            pass
        snapshot = pt.as_dict()
        assert set(snapshot) == {"expand", "fold"}
        assert pt.elapsed("expand") >= 0
        assert pt.elapsed("never-entered") == 0.0


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_in_range(self):
        check_in_range("v", 3, 0, 5)
        with pytest.raises(ValueError):
            check_in_range("v", 5, 0, 5)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)


class TestInSorted:
    def test_basic(self):
        mask = in_sorted(np.array([1, 4, 7]), np.array([0, 1, 2, 7]))
        assert mask.tolist() == [True, False, True]

    def test_empty_haystack(self):
        assert not in_sorted(np.array([1, 2]), np.array([], dtype=np.int64)).any()

    def test_empty_needles(self):
        assert in_sorted(np.array([], dtype=np.int64), np.array([1, 2])).size == 0

    def test_intersect_sorted(self):
        out = intersect_sorted(np.array([1, 3, 5, 9]), np.array([3, 4, 5]))
        assert out.tolist() == [3, 5]

    @given(
        st.lists(st.integers(0, 100), max_size=50),
        st.lists(st.integers(0, 100), max_size=50),
    )
    def test_matches_python_set(self, needles, haystack):
        haystack_arr = np.unique(np.array(haystack, dtype=np.int64))
        needles_arr = np.array(sorted(needles), dtype=np.int64)
        mask = in_sorted(needles_arr, haystack_arr)
        expected = [x in set(haystack) for x in sorted(needles)]
        assert mask.tolist() == expected
