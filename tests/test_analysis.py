"""Tests for the analytic model: gamma, message-length bounds, crossover, fits."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.crossover import crossover_degree, partition_message_gap
from repro.analysis.gamma import gamma
from repro.analysis.model import (
    MessageLengthModel,
    expected_expand_length_2d,
    expected_fold_length_1d,
    expected_fold_length_2d,
    worst_case_expand_length_2d,
)
from repro.analysis.scaling import expected_diameter, log_fit, speedup_curve, sqrt_fit


class TestGamma:
    def test_zero_rows(self):
        assert gamma(0, 1000, 10) == 0.0

    def test_large_m_approaches_one(self):
        assert gamma(1e9, 1e9, 10) == pytest.approx(1.0, abs=1e-4)

    def test_small_m_approaches_mk_over_n(self):
        n, k = 1e9, 10
        assert gamma(1, n, k) == pytest.approx(k / n, rel=1e-3)

    def test_monotone_in_m(self):
        values = gamma(np.array([1, 10, 100, 1000]), 1e6, 8)
        assert np.all(np.diff(values) > 0)

    def test_vectorised_matches_scalar(self):
        ms = np.array([3.0, 30.0, 300.0])
        vec = gamma(ms, 1e5, 12)
        assert vec.tolist() == [gamma(float(m), 1e5, 12) for m in ms]

    def test_exact_formula_small_n(self):
        # gamma(m) = 1 - ((n-1)/n)^{mk} directly
        n, k, m = 100, 5, 7
        assert gamma(m, n, k) == pytest.approx(1 - (99 / 100) ** (m * k))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            gamma(1, 0, 5)
        with pytest.raises(ValueError):
            gamma(1, 10, -1)
        with pytest.raises(ValueError):
            gamma(-1, 10, 5)

    @given(st.floats(1, 1e6), st.floats(1.01, 1e9), st.floats(0, 100))
    @settings(max_examples=50)
    def test_is_probability(self, m, n, k):
        value = gamma(m, n, k)
        assert 0.0 <= value <= 1.0


class TestMessageLengthBounds:
    def test_1d_worst_case_is_nk_over_p(self):
        """Message length never exceeds nk/P (every edge communicates)."""
        n, k, p = 1e6, 10, 128
        assert expected_fold_length_1d(n, k, p) <= n * k / p

    def test_2d_lengths_bounded_by_n_over_p_times_groups(self):
        n, k, p, r, c = 1e6, 10, 256, 16, 16
        assert expected_expand_length_2d(n, k, p, r) <= (n / p) * (r - 1)
        assert expected_fold_length_2d(n, k, p, c) <= (n / p) * (c - 1)

    def test_dense_expand_grows_with_r(self):
        n, p = 1e6, 1024
        small_r = worst_case_expand_length_2d(n, p, 8)
        large_r = worst_case_expand_length_2d(n, p, 512)
        assert large_r > 10 * small_r

    def test_sparse_expand_saturates_with_r(self):
        """The gamma factor caps the sparse expand as R grows (Section 3.1:
        'the maximum expected message size is bounded as R increases')."""
        n, k, p = 1e7, 10, 4096
        lengths = [expected_expand_length_2d(n, k, p, r) for r in (8, 64, 512, 4096)]
        # saturation: growth from R=512 to R=4096 far below proportional (8x)
        assert lengths[3] < 2.0 * lengths[2]
        # and stays within a small multiple of n/P * k
        assert lengths[3] <= (n / p) * k

    def test_large_n_limit_is_nk_over_p(self):
        """For large n the expected size approaches (n/P)k (Section 3.2)."""
        n, k, p = 1e12, 50, 1024
        model = MessageLengthModel(n=int(n), k=k, rows=32, cols=32)
        assert model.fold_1d == pytest.approx(n * k / p, rel=0.05)

    def test_model_bundle_consistency(self):
        model = MessageLengthModel(n=10**6, k=10, rows=16, cols=16)
        assert model.p == 256
        assert model.total_2d == pytest.approx(model.expand_2d + model.fold_2d)
        assert model.per_processor_bound == 10**6 / 256
        assert model.expand_2d <= model.expand_2d_dense


class TestCrossover:
    def test_paper_design_point(self):
        """Paper: k = 34 for P=400, n=4e7.  Exact root of the printed
        equation is ~31.3; accept the paper's neighbourhood."""
        k = crossover_degree(4e7, 400)
        assert 28 <= k <= 37

    def test_gap_signs_around_crossover(self):
        n, p = 4e7, 400
        k_star = crossover_degree(n, p)
        assert partition_message_gap(k_star * 0.5, n, p) < 0  # low degree: 1D better
        assert partition_message_gap(k_star * 2.0, n, p) > 0  # high degree: 2D better

    def test_scaled_down_instance(self):
        k = crossover_degree(40_000, 100)
        assert 1 < k < 200

    def test_too_few_processors_rejected(self):
        with pytest.raises(ValueError):
            crossover_degree(1e6, 2)


class TestScalingHelpers:
    def test_speedup_curve(self):
        sp = speedup_curve(np.array([8.0, 4.0, 2.0]))
        assert sp.tolist() == [1.0, 2.0, 4.0]

    def test_speedup_custom_baseline(self):
        sp = speedup_curve(np.array([4.0, 2.0]), baseline=8.0)
        assert sp.tolist() == [2.0, 4.0]

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup_curve(np.array([1.0, 0.0]))

    def test_log_fit_recovers_coefficients(self):
        p = np.array([1, 4, 16, 64, 256])
        times = 0.5 * np.log2(p) + 2.0
        a, b, r2 = log_fit(p, times)
        assert a == pytest.approx(0.5)
        assert b == pytest.approx(2.0)
        assert r2 == pytest.approx(1.0)

    def test_sqrt_fit_recovers_coefficient(self):
        p = np.array([1, 4, 16, 64])
        speedups = 1.5 * np.sqrt(p)
        a, r2 = sqrt_fit(p, speedups)
        assert a == pytest.approx(1.5)
        assert r2 == pytest.approx(1.0)

    def test_fit_input_validation(self):
        with pytest.raises(ValueError):
            log_fit(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            sqrt_fit(np.array([1, 2]), np.array([1.0]))

    def test_expected_diameter(self):
        assert expected_diameter(1000, 10) == pytest.approx(3.0)
        assert expected_diameter(1, 10) == 0.0
        assert expected_diameter(100, 1) == float("inf")

    def test_diameter_shrinks_with_degree(self):
        assert expected_diameter(1e6, 100) < expected_diameter(1e6, 10)


class TestModelAgainstMeasurement:
    def test_expected_vs_measured_fold_1d(self):
        """The gamma model should predict the measured worst-case (all
        vertices on the frontier) 1D fold volume within ~25%."""
        from repro.api import build_engine
        from repro.graph.generators import poisson_random_graph
        from repro.types import GraphSpec, GridShape

        n, k, p = 3000, 8, 4
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=2))
        engine = build_engine(
            graph, GridShape(p, 1), layout="1d",
        )
        engine.start(0)
        # Run to exhaustion and accumulate total fold deliveries; the model
        # bounds the *sum over levels* because every vertex is on the
        # frontier exactly once and every edge fires at most once per side.
        while engine.step():
            pass
        measured_total = engine.comm.stats.volume_per_level("fold").sum()
        predicted = expected_fold_length_1d(n, k, p) * p  # all P senders
        # sent-cache dedup keeps measured below the model's no-dedup bound
        assert measured_total <= predicted * 1.25
        assert measured_total >= predicted * 0.2
