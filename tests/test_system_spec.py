"""Tests for the SystemSpec value object and the shared resolver.

The redesign's contract: every entry point accepts ``system=`` (a
:class:`SystemSpec` or a preset name), the old per-axis keyword arguments
remain a compatibility path, and both roads produce *identical* runs.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro
from repro.api import build_communicator, build_engine, distributed_bfs
from repro.bfs.bfs_1d import Bfs1DEngine
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.errors import ConfigurationError
from repro.faults import FaultSpec
from repro.machine.bluegene import BLUEGENE_L
from repro.session import BfsSession
from repro.types import SYSTEM_PRESETS, GridShape, SystemSpec, resolve_system


class TestSystemSpec:
    def test_defaults(self):
        spec = SystemSpec()
        assert spec.machine == "bluegene"
        assert spec.mapping == "planar"
        assert spec.layout == "2d"
        assert spec.faults is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SystemSpec().layout = "1d"  # type: ignore[misc]

    def test_unknown_machine_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemSpec(machine="cray")

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemSpec(mapping="hilbert")

    def test_unknown_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemSpec(layout="3d")

    def test_bad_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemSpec(faults=3.14)  # type: ignore[arg-type]

    def test_faults_preset_string(self):
        # Regression: SystemSpec used to reject the documented preset names.
        from repro.faults import FAULT_PRESETS

        spec = SystemSpec(faults="harsh")
        assert spec.faults == FAULT_PRESETS["harsh"]
        assert SystemSpec(faults="none").faults == FAULT_PRESETS["none"]
        assert SystemSpec(faults="mild").faults == FAULT_PRESETS["mild"]

    def test_faults_keyvalue_string(self):
        spec = SystemSpec(faults="drop=0.05,seed=7")
        assert isinstance(spec.faults, FaultSpec)
        assert spec.faults.drop_rate == 0.05
        assert spec.faults.seed == 7

    def test_unknown_faults_preset_lists_names(self):
        expected = r"\['none', 'mild', 'harsh', 'crash-spare', 'crash-shrink', 'crash-harsh'\]"
        with pytest.raises(ConfigurationError, match=expected):
            SystemSpec(faults="extreme")

    def test_custom_machine_object_allowed(self):
        model = BLUEGENE_L.with_overrides(alpha=1e-5)
        assert SystemSpec(machine=model).machine is model


class TestResolveSystem:
    def test_none_is_default_spec(self):
        assert resolve_system(None) == SystemSpec()

    def test_preset_names(self):
        for name, spec in SYSTEM_PRESETS.items():
            assert resolve_system(name) == spec

    def test_explicit_spec_passes_through(self):
        spec = SystemSpec(machine="mcr", layout="1d")
        assert resolve_system(spec) is spec

    def test_legacy_kwargs_override_preset(self):
        spec = resolve_system("bluegene-2d", mapping="row-major", layout="1d")
        assert spec.mapping == "row-major"
        assert spec.layout == "1d"
        assert spec.machine == "bluegene"

    def test_faults_merge(self):
        faults = FaultSpec(drop_rate=0.01)
        assert resolve_system("mcr-2d", faults=faults).faults is faults

    def test_faults_preset_string_merge(self):
        from repro.faults import FAULT_PRESETS

        spec = resolve_system("bluegene-2d", faults="mild")
        assert spec.faults == FAULT_PRESETS["mild"]

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_system("bluegene-3d")

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_system(42)  # type: ignore[arg-type]

    def test_reexported_from_package_root(self):
        assert repro.SystemSpec is SystemSpec
        assert repro.resolve_system is resolve_system
        assert repro.SYSTEM_PRESETS is SYSTEM_PRESETS
        assert repro.FaultSpec is FaultSpec


class TestEntryPoints:
    def test_build_communicator_preset(self):
        comm = build_communicator(GridShape(2, 2), system="mcr-2d")
        assert comm.model.name == "MCR"

    def test_build_engine_preset_picks_layout(self, small_graph):
        engine = build_engine(small_graph, (4, 1), system="bluegene-1d")
        assert isinstance(engine, Bfs1DEngine)
        engine = build_engine(small_graph, (2, 2), system="bluegene-2d")
        assert isinstance(engine, Bfs2DEngine)

    def test_distributed_bfs_faults_preset_string(self, small_graph):
        from repro.faults import FAULT_PRESETS

        by_name = distributed_bfs(small_graph, (2, 2), 0, faults="mild")
        by_spec = distributed_bfs(
            small_graph, (2, 2), 0, faults=FAULT_PRESETS["mild"]
        )
        assert np.array_equal(by_name.levels, by_spec.levels)
        assert by_name.elapsed == by_spec.elapsed
        assert by_name.faults is not None

    def test_spec_object_accepted(self, small_graph):
        spec = SystemSpec(machine="mcr", layout="1d")
        engine = build_engine(small_graph, (1, 4), system=spec)
        assert isinstance(engine, Bfs1DEngine)
        assert engine.comm.model.name == "MCR"

    def test_layout_kwarg_overrides_spec(self, small_graph):
        engine = build_engine(small_graph, (4, 1), system="bluegene-2d", layout="1d")
        assert isinstance(engine, Bfs1DEngine)

    def test_old_and_new_roads_identical(self, small_graph):
        old = distributed_bfs(
            small_graph, (2, 2), 0, machine="mcr", mapping="row-major", layout="2d"
        )
        new = distributed_bfs(
            small_graph, (2, 2), 0,
            system=SystemSpec(machine="mcr", mapping="row-major", layout="2d"),
        )
        assert np.array_equal(old.levels, new.levels)
        assert old.elapsed == new.elapsed
        assert old.stats.total_messages == new.stats.total_messages

    def test_preset_equals_kwargs_road(self, small_graph):
        by_preset = distributed_bfs(small_graph, (4, 1), 0, system="bluegene-1d")
        by_kwargs = distributed_bfs(small_graph, (4, 1), 0, layout="1d")
        assert np.array_equal(by_preset.levels, by_kwargs.levels)
        assert by_preset.elapsed == by_kwargs.elapsed

    def test_session_takes_system(self, small_graph):
        session = BfsSession(small_graph, (2, 2), system="mcr-2d")
        assert session.machine == "mcr"
        assert session.system == SystemSpec(machine="mcr")
        result = session.bfs(0)
        assert result.levels[0] == 0

    def test_session_legacy_kwargs_still_work(self, small_graph):
        session = BfsSession(small_graph, (4, 1), layout="1d", mapping="row-major")
        assert session.layout == "1d"
        assert session.mapping == "row-major"
        old = session.bfs(1)
        new = BfsSession(
            small_graph, (4, 1), system=SystemSpec(layout="1d", mapping="row-major")
        ).bfs(1)
        assert np.array_equal(old.levels, new.levels)
        assert old.elapsed == new.elapsed

    def test_session_faults_threaded_through(self, small_graph):
        session = BfsSession(
            small_graph, (2, 2), faults=FaultSpec(seed=3, drop_rate=0.05)
        )
        result = session.bfs(0)
        assert result.faults is not None
        assert result.faults.injected > 0
