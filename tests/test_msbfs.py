"""MS-BFS correctness: batched traversals vs. sequential per-source runs.

The contract under test is byte-identity: row ``i`` of a batched
traversal's level matrix must equal — exactly, element for element — the
level array of a dedicated sequential run from ``sources[i]``, across
layouts, wire codecs, seeds, and target-terminated queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs import MAX_BATCH, run_bfs, run_ms_bfs
from repro.errors import ConfigurationError, FaultError, SearchError
from repro.faults import FaultSpec
from repro.graph.generators import poisson_random_graph
from repro.observability.digest import levels_digest
from repro.session import BfsSession
from repro.types import GraphSpec, GridShape, SystemSpec

LAYOUTS = [("2d", GridShape(4, 4)), ("1d", GridShape(1, 8))]


def make_session(graph, layout, grid, **kwargs) -> BfsSession:
    return BfsSession(graph, grid, system=SystemSpec(layout=layout, **kwargs))


@pytest.mark.parametrize("layout,grid", LAYOUTS)
class TestByteIdentity:
    def test_full_traversals_match_sequential(self, small_graph, layout, grid):
        session = make_session(small_graph, layout, grid)
        sources = [0, 1, 5, 17, 113, 399, 200, 3]
        batched = session.bfs_many(sources)
        for i, s in enumerate(sources):
            sequential = session.bfs(s)
            assert np.array_equal(batched.levels[i], sequential.levels)
            assert batched.levels[i].tobytes() == sequential.levels.tobytes()
            assert int(batched.num_levels[i]) == sequential.num_levels

    def test_targeted_queries_match_sequential(self, small_graph, layout, grid):
        session = make_session(small_graph, layout, grid)
        sources = [0, 1, 5, 17, 113, 399]
        targets = [10, None, 5, 42, None, 250]
        batched = session.bfs_many(sources, targets=targets)
        for i, (s, t) in enumerate(zip(sources, targets)):
            sequential = session.bfs(s, target=t)
            assert np.array_equal(batched.levels[i], sequential.levels)
            assert batched.target_levels[i] == sequential.target_level
            assert int(batched.num_levels[i]) == sequential.num_levels

    def test_disconnected_and_self_targets(self, sparse_graph, layout, grid):
        session = make_session(sparse_graph, layout, grid)
        reach = session.bfs(0).levels
        unreachable = int(np.flatnonzero(reach == -1)[0])
        sources = [0, 0, 7, 299]
        targets = [unreachable, 0, None, 7]
        batched = session.bfs_many(sources, targets=targets)
        for i, (s, t) in enumerate(zip(sources, targets)):
            sequential = session.bfs(s, target=t)
            assert np.array_equal(batched.levels[i], sequential.levels)
            assert batched.target_levels[i] == sequential.target_level
            assert int(batched.num_levels[i]) == sequential.num_levels

    @pytest.mark.parametrize("wire", ["delta-varint", "bitmap", "adaptive"])
    def test_codecs_preserve_levels(self, small_graph, layout, grid, wire):
        session = make_session(small_graph, layout, grid, wire=wire)
        sources = [3, 50, 399]
        batched = session.bfs_many(sources)
        for i, s in enumerate(sources):
            assert np.array_equal(batched.levels[i], session.bfs(s).levels)

    @pytest.mark.parametrize("seed", [1, 23])
    def test_random_graphs_and_batches(self, layout, grid, seed):
        graph = poisson_random_graph(GraphSpec(n=256, k=6, seed=seed))
        rng = np.random.default_rng(seed)
        sources = [int(s) for s in rng.integers(0, graph.n, size=12)]
        session = make_session(graph, layout, grid)
        batched = session.bfs_many(sources)
        for i, s in enumerate(sources):
            assert np.array_equal(batched.levels[i], session.bfs(s).levels)

    def test_duplicate_sources_share_levels(self, small_graph, layout, grid):
        session = make_session(small_graph, layout, grid)
        batched = session.bfs_many([5, 5, 5])
        sequential = session.bfs(5)
        for i in range(3):
            assert np.array_equal(batched.levels[i], sequential.levels)

    def test_max_levels_truncates_identically(self, small_graph, layout, grid):
        session = make_session(small_graph, layout, grid)
        batched = run_ms_bfs(
            session._new_engine(session._new_comm()), [0, 7], max_levels=2
        )
        for i, s in enumerate([0, 7]):
            sequential = run_bfs(
                session._new_engine(session._new_comm()), s, max_levels=2
            )
            assert np.array_equal(batched.levels[i], sequential.levels)
            assert int(batched.num_levels[i]) == sequential.num_levels

    def test_no_expand_filter_path(self, small_graph, layout, grid):
        from repro.bfs.options import BfsOptions

        session = BfsSession(
            small_graph, grid,
            system=SystemSpec(layout=layout),
            opts=BfsOptions(use_expand_filter=False),
        )
        batched = session.bfs_many([0, 7, 200])
        for i, s in enumerate([0, 7, 200]):
            assert np.array_equal(batched.levels[i], session.bfs(s).levels)


class TestBatchSemantics:
    def test_full_width_batch(self, small_graph):
        session = BfsSession(small_graph, (4, 4))
        sources = list(range(MAX_BATCH))
        batched = session.bfs_many(sources)
        assert batched.batch_size == MAX_BATCH
        for i in (0, 31, 63):
            assert np.array_equal(batched.levels[i], session.bfs(sources[i]).levels)

    def test_counters_count_queries_not_batches(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        session.bfs_many([0, 1, 2])
        assert session.queries_served == 3
        assert session.total_simulated_time > 0

    def test_query_view_digests(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        batched = session.bfs_many([0, 7])
        view = batched.query_view(0)
        assert view.batch_size == 2
        assert view.levels_digest == levels_digest(session.bfs(0).levels)
        assert view.to_dict()["source"] == 0
        assert batched.query_view(1, digest=False).levels_digest is None

    def test_summary_mentions_batch(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        batched = session.bfs_many([0, 7])
        assert "2 sources" in batched.summary()

    def test_levels_of_is_row_view(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        batched = session.bfs_many([0, 7])
        assert np.array_equal(batched.levels_of(1), batched.levels[1])


class TestValidation:
    def test_over_width_batch_rejected(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        with pytest.raises(ConfigurationError):
            session.bfs_many(list(range(MAX_BATCH + 1)))

    def test_empty_batch_rejected(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        with pytest.raises(SearchError):
            session.bfs_many([])

    def test_out_of_range_source_rejected(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        with pytest.raises(SearchError):
            session.bfs_many([small_graph.n])

    def test_out_of_range_target_rejected(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        with pytest.raises(SearchError):
            session.bfs_many([0], targets=[small_graph.n])

    def test_target_length_mismatch_rejected(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        with pytest.raises(SearchError):
            session.bfs_many([0, 1], targets=[None])

    def test_unchecked_faulted_batch_raises_structured(self, small_graph):
        # checkpointing disabled by hand: an unrecovered loss cannot be
        # replayed, so the batch must die loudly with a report attached
        from repro.bfs.options import BfsOptions

        session = BfsSession(
            small_graph, (2, 2),
            opts=BfsOptions(checkpoint=False),
            system=SystemSpec(
                layout="2d",
                faults=FaultSpec(seed=0, drop_rate=0.9, max_retries=0),
            ),
        )
        with pytest.raises(FaultError) as excinfo:
            session.bfs_many([0, 1])
        assert excinfo.value.report is not None

    def test_observed_batches_run(self, small_graph):
        session = BfsSession(
            small_graph, (2, 2), system=SystemSpec(layout="2d", observe="spans")
        )
        batched = session.bfs_many([0, 7])
        assert np.array_equal(batched.levels[0], session.bfs(0).levels)
