"""Tests for the reusable query session and path extraction."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.bfs.serial import serial_bfs
from repro.errors import ConfigurationError, SearchError
from repro.graph.csr import CsrGraph
from repro.session import BfsSession, extract_path


def to_networkx(graph: CsrGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edge_array().tolist())
    return g


class TestBfsSession:
    def test_bfs_matches_serial(self, small_graph):
        session = BfsSession(small_graph, (2, 4))
        result = session.bfs(0)
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_repeated_queries_accumulate(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        session.bfs(0)
        session.distance(0, 100)
        assert session.queries_served == 2
        assert session.total_simulated_time > 0

    def test_distance_matches_networkx(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        g = to_networkx(small_graph)
        for s, t in [(0, 1), (5, 300), (42, 42)]:
            try:
                expected = nx.shortest_path_length(g, s, t)
            except nx.NetworkXNoPath:
                expected = None
            assert session.distance(s, t) == expected

    def test_1d_layout(self, small_graph):
        session = BfsSession(small_graph, (4, 1), layout="1d")
        result = session.bfs(7)
        assert np.array_equal(result.levels, serial_bfs(small_graph, 7))

    def test_1d_needs_degenerate_grid(self, small_graph):
        with pytest.raises(ConfigurationError):
            BfsSession(small_graph, (2, 2), layout="1d")

    def test_unknown_layout_rejected(self, small_graph):
        with pytest.raises(ConfigurationError):
            BfsSession(small_graph, (2, 2), layout="hex")

    def test_queries_are_independent(self, small_graph):
        """Each query gets fresh statistics: same query twice, same cost."""
        session = BfsSession(small_graph, (2, 2))
        a = session.bfs(3)
        b = session.bfs(3)
        assert a.elapsed == b.elapsed
        assert a.stats.total_messages == b.stats.total_messages


class TestShortestPath:
    def test_path_is_valid_and_shortest(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        g = to_networkx(small_graph)
        for s, t in [(0, 399), (10, 200), (5, 6)]:
            path = session.shortest_path(s, t)
            expected = nx.shortest_path_length(g, s, t)
            assert path[0] == s and path[-1] == t
            assert len(path) - 1 == expected
            for u, v in zip(path, path[1:]):
                assert small_graph.has_edge(u, v)

    def test_trivial_path(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        assert session.shortest_path(9, 9) == [9]

    def test_disconnected_returns_none(self):
        g = CsrGraph.from_edges(5, np.array([[0, 1], [2, 3]]))
        session = BfsSession(g, (2, 2))
        assert session.shortest_path(0, 3) is None

    def test_extract_path_on_path_graph(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        assert extract_path(path_graph, levels, 0, 9) == list(range(10))

    def test_extract_path_unreached_rejected(self):
        g = CsrGraph.from_edges(4, np.array([[0, 1]]))
        levels = serial_bfs(g, 0)
        with pytest.raises(SearchError, match="not reached"):
            extract_path(g, levels, 0, 3)

    def test_extract_path_wrong_source_rejected(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        with pytest.raises(SearchError, match="not the search source"):
            extract_path(path_graph, levels, 1, 9)


class TestSessionCaching:
    """The session resolves machine/mapping/network/engine exactly once."""

    def test_comms_share_cached_mapping_and_network(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        c1, c2 = session._new_comm(), session._new_comm()
        assert c1 is not c2
        assert c1.mapping is c2.mapping is session._task_mapping
        assert c1.model is c2.model is session._model
        assert c1.network is c2.network is session._network

    def test_engine_is_rebound_not_rebuilt(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        e1 = session._new_engine(session._new_comm())
        e2 = session._new_engine(session._new_comm())
        assert e1 is e2 is session._engine

    def test_rebound_engine_reproduces_levels(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        first = session.bfs(0)
        second = session.bfs(0)
        assert np.array_equal(first.levels, second.levels)
        assert first.elapsed == second.elapsed

    def test_counters_safe_under_threads(self, small_graph):
        import threading

        session = BfsSession(small_graph, (2, 2))
        threads = [
            threading.Thread(target=session._record, args=(0.5,))
            for _ in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert session.queries_served == 16
        assert session.total_simulated_time == pytest.approx(8.0)

    def test_legacy_kwargs_warn(self, small_graph):
        with pytest.warns(DeprecationWarning, match="layout"):
            BfsSession(small_graph, (4, 1), layout="1d")

    def test_system_spec_path_does_not_warn(self, small_graph):
        import warnings

        from repro.types import SystemSpec

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            BfsSession(small_graph, (4, 1), system=SystemSpec(layout="1d"))
