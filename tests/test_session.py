"""Tests for the reusable query session and path extraction."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.bfs.serial import serial_bfs
from repro.errors import ConfigurationError, SearchError
from repro.graph.csr import CsrGraph
from repro.session import BfsSession, extract_path


def to_networkx(graph: CsrGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edge_array().tolist())
    return g


class TestBfsSession:
    def test_bfs_matches_serial(self, small_graph):
        session = BfsSession(small_graph, (2, 4))
        result = session.bfs(0)
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_repeated_queries_accumulate(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        session.bfs(0)
        session.distance(0, 100)
        assert session.queries_served == 2
        assert session.total_simulated_time > 0

    def test_distance_matches_networkx(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        g = to_networkx(small_graph)
        for s, t in [(0, 1), (5, 300), (42, 42)]:
            try:
                expected = nx.shortest_path_length(g, s, t)
            except nx.NetworkXNoPath:
                expected = None
            assert session.distance(s, t) == expected

    def test_1d_layout(self, small_graph):
        session = BfsSession(small_graph, (4, 1), layout="1d")
        result = session.bfs(7)
        assert np.array_equal(result.levels, serial_bfs(small_graph, 7))

    def test_1d_needs_degenerate_grid(self, small_graph):
        with pytest.raises(ConfigurationError):
            BfsSession(small_graph, (2, 2), layout="1d")

    def test_unknown_layout_rejected(self, small_graph):
        with pytest.raises(ConfigurationError):
            BfsSession(small_graph, (2, 2), layout="hex")

    def test_queries_are_independent(self, small_graph):
        """Each query gets fresh statistics: same query twice, same cost."""
        session = BfsSession(small_graph, (2, 2))
        a = session.bfs(3)
        b = session.bfs(3)
        assert a.elapsed == b.elapsed
        assert a.stats.total_messages == b.stats.total_messages


class TestShortestPath:
    def test_path_is_valid_and_shortest(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        g = to_networkx(small_graph)
        for s, t in [(0, 399), (10, 200), (5, 6)]:
            path = session.shortest_path(s, t)
            expected = nx.shortest_path_length(g, s, t)
            assert path[0] == s and path[-1] == t
            assert len(path) - 1 == expected
            for u, v in zip(path, path[1:]):
                assert small_graph.has_edge(u, v)

    def test_trivial_path(self, small_graph):
        session = BfsSession(small_graph, (2, 2))
        assert session.shortest_path(9, 9) == [9]

    def test_disconnected_returns_none(self):
        g = CsrGraph.from_edges(5, np.array([[0, 1], [2, 3]]))
        session = BfsSession(g, (2, 2))
        assert session.shortest_path(0, 3) is None

    def test_extract_path_on_path_graph(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        assert extract_path(path_graph, levels, 0, 9) == list(range(10))

    def test_extract_path_unreached_rejected(self):
        g = CsrGraph.from_edges(4, np.array([[0, 1]]))
        levels = serial_bfs(g, 0)
        with pytest.raises(SearchError, match="not reached"):
            extract_path(g, levels, 0, 3)

    def test_extract_path_wrong_source_rejected(self, path_graph):
        levels = serial_bfs(path_graph, 0)
        with pytest.raises(SearchError, match="not the search source"):
            extract_path(path_graph, levels, 1, 9)
