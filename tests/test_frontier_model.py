"""Tests for the analytic frontier-evolution model vs measured BFS runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.frontier_model import (
    predict_frontier_fractions,
    predict_frontier_sizes,
    predict_giant_component_fraction,
    predict_num_levels,
)
from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.graph.components import giant_component
from repro.graph.generators import poisson_random_graph
from repro.types import GraphSpec, GridShape


class TestRecursion:
    def test_starts_at_single_source(self):
        fractions = predict_frontier_fractions(1000, 10)
        assert fractions[0] == pytest.approx(1e-3)

    def test_total_below_one(self):
        fractions = predict_frontier_fractions(1e6, 10)
        assert fractions.sum() <= 1.0

    def test_explosive_then_flattening(self):
        """Figure 4.b shape: early levels grow ~k-fold, then saturate."""
        sizes = predict_frontier_sizes(10**7, 10)
        growth = sizes[1:4] / sizes[:3]
        assert (growth > 5).all()  # near-k growth while the graph is empty
        assert sizes.argmax() < len(sizes) - 1  # a peak exists, then decline

    def test_dies_out_below_threshold(self):
        fractions = predict_frontier_fractions(10**6, 0.5)
        assert fractions.sum() < 0.01  # subcritical: tiny component

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            predict_frontier_fractions(0, 10)
        with pytest.raises(ValueError):
            predict_frontier_fractions(100, -1)


class TestAgainstMeasurement:
    def test_level_count_matches(self):
        """Predicted level count ~ measured, the Figure 4.a driver."""
        n, k = 30_000, 10.0
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=6))
        giant = giant_component(graph)
        result = run_bfs(build_engine(graph, GridShape(2, 2)), int(giant[0]))
        predicted = predict_num_levels(n, k)
        assert abs(result.num_levels - predicted) <= 2

    def test_frontier_sizes_match(self):
        n, k = 30_000, 10.0
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=6))
        giant = giant_component(graph)
        result = run_bfs(build_engine(graph, GridShape(2, 2)), int(giant[0]))
        measured = np.array([s.frontier_size for s in result.stats.levels if s.frontier_size])
        predicted = predict_frontier_sizes(n, k)[1 : 1 + measured.size]
        # the bulk levels (where sizes are large) should agree within ~20%
        bulk = measured > 0.01 * n
        assert bulk.any()
        ratio = measured[bulk] / predicted[: measured.size][bulk]
        assert (np.abs(np.log(ratio)) < 0.35).all()

    def test_giant_component_fraction(self):
        n, k = 20_000, 5.0
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=2))
        measured = giant_component(graph).size / n
        predicted = predict_giant_component_fraction(k)
        assert measured == pytest.approx(predicted, abs=0.02)

    def test_subcritical_no_giant(self):
        assert predict_giant_component_fraction(0.8) == 0.0
        assert predict_giant_component_fraction(1.0) == 0.0

    @pytest.mark.parametrize("k", [2.0, 10.0, 50.0])
    def test_reached_total_matches_giant(self, k):
        predicted_total = predict_frontier_fractions(10**7, k).sum()
        assert predicted_total == pytest.approx(
            predict_giant_component_fraction(k), abs=0.01
        )
