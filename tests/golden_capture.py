"""Capture golden digests of the scheduling hot paths (run once per rework).

Runs the byte-identity matrix of test_sparse_schedule.py against whatever
scheduler implementation is currently checked out and writes
``tests/data/schedule_digests.json``.  The committed file was produced by
the pre-sparse *dense* scheduler, so the test suite proves the sparse
rework is byte-identical to it.  Regenerate only when an intentional
simulated-behaviour change lands:

    PYTHONPATH=src python tests/golden_capture.py
"""

from __future__ import annotations

import json
from pathlib import Path

HERE = Path(__file__).resolve().parent


def main() -> None:
    import sys

    sys.path.insert(0, str(HERE))
    from test_sparse_schedule import capture_all

    out = HERE / "data" / "schedule_digests.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(capture_all(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
