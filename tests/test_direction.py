"""Direction-optimizing BFS: policy, bottom-up kernels, hybrid equality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import build_engine
from repro.backends.spmd import spmd_bfs
from repro.bfs.direction import BOTTOM_UP, DIRECTION_MODES, TOP_DOWN, DirectionPolicy
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.errors import CommunicationError, ConfigurationError
from repro.faults import FaultSpec
from repro.graph.generators import build_graph
from repro.types import GraphSpec, GridShape, SystemSpec

RMAT = GraphSpec.rmat(10, edge_factor=8, seed=3)
POISSON = GraphSpec(n=2_000, k=8.0, seed=3)


@pytest.fixture(scope="module")
def rmat_graph():
    return build_graph(RMAT)


@pytest.fixture(scope="module")
def poisson_graph():
    return build_graph(POISSON)


class TestDirectionPolicy:
    def test_coerce_accepts_mode_names(self):
        for mode in DIRECTION_MODES:
            assert DirectionPolicy.coerce(mode).mode == mode

    def test_coerce_passes_policies_through(self):
        policy = DirectionPolicy(mode="hybrid", alpha=4.0)
        assert DirectionPolicy.coerce(policy) is policy

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError):
            DirectionPolicy.coerce(42)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown direction mode"):
            DirectionPolicy(mode="sideways")

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            DirectionPolicy(mode="hybrid", alpha=0.0)
        with pytest.raises(ValueError):
            DirectionPolicy(mode="hybrid", beta=-1.0)

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            DirectionPolicy(mode="model", schedule=("top-down", "diagonal"))

    def test_fixed_modes_never_switch(self):
        td = DirectionPolicy(mode="top-down")
        bu = DirectionPolicy(mode="bottom-up")
        assert td.decide(3, 900, 100, 1000) == TOP_DOWN
        assert bu.decide(3, 1, 999, 1000) == BOTTOM_UP
        assert not td.may_go_bottom_up
        assert bu.may_go_bottom_up

    def test_hybrid_switch_and_hysteresis(self):
        policy = DirectionPolicy(mode="hybrid", alpha=4.0, beta=10.0)
        n = 1000
        # small frontier stays top-down
        assert policy.decide(1, 10, 900, n, TOP_DOWN) == TOP_DOWN
        # frontier > unvisited/alpha flips to bottom-up
        assert policy.decide(2, 300, 700, n, TOP_DOWN) == BOTTOM_UP
        # hysteresis: once bottom-up, stays until frontier < n/beta
        assert policy.decide(3, 200, 100, n, BOTTOM_UP) == BOTTOM_UP
        assert policy.decide(4, 50, 50, n, BOTTOM_UP) == TOP_DOWN
        # empty frontier / nothing left always runs top-down
        assert policy.decide(5, 0, 500, n, BOTTOM_UP) == TOP_DOWN
        assert policy.decide(5, 500, 0, n, BOTTOM_UP) == TOP_DOWN

    def test_model_schedule_wins_within_horizon(self):
        policy = DirectionPolicy(
            mode="model", schedule=(TOP_DOWN, BOTTOM_UP, TOP_DOWN)
        )
        assert policy.decide(1, 1, 999999, 10**6, TOP_DOWN) == BOTTOM_UP
        assert policy.decide(2, 10**5, 10, 10**6, BOTTOM_UP) == TOP_DOWN

    def test_model_for_poisson_precomputes_switch(self):
        policy = DirectionPolicy.model_for(POISSON)
        assert policy.mode == "model"
        assert BOTTOM_UP in policy.schedule
        # the schedule starts top-down: level 0 is one source vertex
        assert policy.schedule[0] == TOP_DOWN

    def test_model_for_rmat_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="Poisson"):
            policy = DirectionPolicy.model_for(RMAT)
        assert policy.mode == "hybrid"

    def test_options_coerce_and_reject(self):
        opts = BfsOptions(direction="hybrid")
        assert isinstance(opts.direction, DirectionPolicy)
        assert opts.direction.mode == "hybrid"
        with pytest.raises(ConfigurationError):
            BfsOptions(direction="sideways")
        with pytest.raises(ConfigurationError):
            BfsOptions(direction=3.5)


def _levels(graph, grid, layout, direction, wire=None, observe=None):
    extra = {}
    if wire is not None:
        extra["wire"] = wire
    if observe is not None:
        extra["observe"] = observe
    engine = build_engine(
        graph,
        GridShape(*grid),
        opts=BfsOptions(direction=direction),
        system=SystemSpec(layout=layout, **extra),
    )
    return run_bfs(engine, 0)


LAYOUTS = [((4, 1), "1d"), ((2, 2), "2d"), ((2, 4), "2d")]


class TestHybridEquality:
    @pytest.mark.parametrize("grid,layout", LAYOUTS)
    @pytest.mark.parametrize("direction", ["hybrid", "bottom-up", "model"])
    def test_rmat_levels_match_top_down(self, rmat_graph, grid, layout, direction):
        policy = (
            DirectionPolicy.model_for(POISSON) if direction == "model" else direction
        )
        base = _levels(rmat_graph, grid, layout, "top-down")
        result = _levels(rmat_graph, grid, layout, policy)
        assert np.array_equal(result.levels, base.levels)

    @pytest.mark.parametrize("grid,layout", LAYOUTS)
    def test_poisson_levels_match_top_down(self, poisson_graph, grid, layout):
        base = _levels(poisson_graph, grid, layout, "top-down")
        for direction in ("hybrid", "bottom-up"):
            result = _levels(poisson_graph, grid, layout, direction)
            assert np.array_equal(result.levels, base.levels)

    @pytest.mark.parametrize("wire", ["delta-varint", "bitmap", "adaptive"])
    def test_codecs_do_not_change_hybrid_levels(self, rmat_graph, wire):
        base = _levels(rmat_graph, (2, 2), "2d", "top-down")
        result = _levels(rmat_graph, (2, 2), "2d", "hybrid", wire=wire)
        assert np.array_equal(result.levels, base.levels)

    @pytest.mark.parametrize("grid,layout", LAYOUTS)
    def test_hybrid_cuts_traversed_edges_on_rmat(self, rmat_graph, grid, layout):
        td = _levels(rmat_graph, grid, layout, "top-down")
        hy = _levels(rmat_graph, grid, layout, "hybrid")
        assert hy.stats.total_edges_scanned * 2 <= td.stats.total_edges_scanned
        counts = hy.stats.direction_counts()
        assert counts.get("bottom-up", 0) > 0
        assert td.stats.direction_counts() == {"top-down": td.num_levels}

    def test_top_down_clock_unchanged_by_policy_plumbing(self, poisson_graph):
        # the decision itself is charge-free: a pure top-down run must not
        # cost a single simulated nanosecond more than before the feature
        a = _levels(poisson_graph, (2, 2), "2d", "top-down")
        b = _levels(poisson_graph, (2, 2), "2d", DirectionPolicy(mode="top-down"))
        assert a.elapsed == b.elapsed
        assert a.stats.total_messages == b.stats.total_messages

    def test_direction_recorded_per_level(self, rmat_graph):
        result = _levels(rmat_graph, (2, 2), "2d", "hybrid")
        dirs = [s.direction for s in result.stats.levels]
        assert set(dirs) == {"top-down", "bottom-up"}
        scanned = result.stats.edges_scanned_per_level()
        assert scanned.sum() == result.stats.total_edges_scanned

    def test_direction_switch_span_emitted(self, rmat_graph):
        result = _levels(rmat_graph, (2, 2), "2d", "hybrid", observe="spans")
        spans = [s for s in result.observability.spans if s.name == "direction-switch"]
        assert spans, "hybrid run on R-MAT must emit direction-switch markers"
        assert {s.args["to"] for s in spans} >= {"bottom-up"}

    def test_metrics_expose_direction_counts(self, rmat_graph):
        from repro.observability.metrics import MetricsRegistry

        result = _levels(rmat_graph, (2, 2), "2d", "hybrid")
        reg = MetricsRegistry.from_result(result)
        assert reg.value("bfs_direction_levels_total", mode="bottom-up") > 0
        assert reg.value("bfs_edges_scanned_total") == float(
            result.stats.total_edges_scanned
        )
        total = reg.value("bfs_direction_levels_total")
        assert total == float(len(result.stats.levels))


class TestSpmdHybrid:
    @pytest.mark.parametrize("direction", ["hybrid", "bottom-up"])
    def test_matches_serial_on_rmat(self, rmat_graph, direction):
        opts = BfsOptions(direction=direction)
        levels = spmd_bfs(rmat_graph, (2, 2), 0, opts=opts, timeout=120)
        assert np.array_equal(levels, serial_bfs(rmat_graph, 0))

    def test_hybrid_with_codec_matches_serial(self, poisson_graph):
        opts = BfsOptions(direction="hybrid")
        levels = spmd_bfs(
            poisson_graph, (2, 2), 0, opts=opts, wire="delta-varint", timeout=120
        )
        assert np.array_equal(levels, serial_bfs(poisson_graph, 0))


class TestFaultRejection:
    def test_engine_rejects_faults_with_hybrid(self, small_graph):
        engine = build_engine(
            small_graph,
            GridShape(2, 2),
            opts=BfsOptions(direction="hybrid"),
            system=SystemSpec(layout="2d", faults=FaultSpec(drop_rate=0.05)),
        )
        with pytest.raises(ConfigurationError, match="fault"):
            run_bfs(engine, 0)

    def test_engine_allows_faults_top_down(self, small_graph):
        engine = build_engine(
            small_graph,
            GridShape(2, 2),
            opts=BfsOptions(direction="top-down"),
            system=SystemSpec(layout="2d", faults=FaultSpec(drop_rate=0.05)),
        )
        result = run_bfs(engine, 0)
        assert np.array_equal(result.levels, serial_bfs(small_graph, 0))

    def test_spmd_rejects_faults_with_hybrid(self, small_graph):
        with pytest.raises(CommunicationError, match="direction"):
            spmd_bfs(
                small_graph, (2, 2), 0,
                opts=BfsOptions(direction="hybrid"),
                faults=FaultSpec(drop_rate=0.05),
            )
