"""Tests for the 3D torus topology."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.machine.torus import Torus3D


dims_strategy = st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 4))


class TestCoordinates:
    def test_roundtrip(self):
        torus = Torus3D(4, 3, 2)
        for node in range(torus.num_nodes):
            assert torus.node_of(*torus.coords_of(node)) == node

    def test_x_fastest(self):
        torus = Torus3D(4, 3, 2)
        assert torus.coords_of(1) == (1, 0, 0)
        assert torus.coords_of(4) == (0, 1, 0)
        assert torus.coords_of(12) == (0, 0, 1)

    def test_bad_node_rejected(self):
        with pytest.raises(TopologyError):
            Torus3D(2, 2, 2).coords_of(8)

    def test_bad_coords_rejected(self):
        with pytest.raises(TopologyError):
            Torus3D(2, 2, 2).node_of(2, 0, 0)

    def test_bad_dims_rejected(self):
        with pytest.raises(TopologyError):
            Torus3D(0, 2, 2)


class TestDistances:
    def test_wraparound(self):
        torus = Torus3D(8, 1, 1)
        assert torus.hop_distance(0, 7) == 1  # wrap is shorter
        assert torus.hop_distance(0, 4) == 4

    def test_symmetric(self):
        torus = Torus3D(4, 4, 4)
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.integers(0, 64, 2)
            assert torus.hop_distance(int(a), int(b)) == torus.hop_distance(int(b), int(a))

    def test_identity(self):
        torus = Torus3D(4, 4, 2)
        assert torus.hop_distance(5, 5) == 0

    def test_vectorised_matches_scalar(self):
        torus = Torus3D(5, 3, 2)
        rng = np.random.default_rng(1)
        a = rng.integers(0, 30, 40)
        b = rng.integers(0, 30, 40)
        vec = torus.hop_distance_many(a, b)
        scalar = [torus.hop_distance(int(x), int(y)) for x, y in zip(a, b)]
        assert vec.tolist() == scalar

    @given(dims_strategy, st.data())
    @settings(max_examples=30)
    def test_triangle_inequality(self, dims, data):
        torus = Torus3D(*dims)
        n = torus.num_nodes
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        assert torus.hop_distance(a, c) <= torus.hop_distance(a, b) + torus.hop_distance(b, c)


class TestRouting:
    def test_route_length_equals_distance(self):
        torus = Torus3D(4, 4, 4)
        rng = np.random.default_rng(2)
        for _ in range(30):
            a, b = (int(x) for x in rng.integers(0, 64, 2))
            route = torus.route(a, b)
            assert len(route) == torus.hop_distance(a, b)

    def test_route_is_connected_path(self):
        torus = Torus3D(4, 3, 2)
        route = torus.route(0, 23)
        assert route[0][0] == 0
        assert route[-1][1] == 23
        for (u1, v1), (u2, _v2) in zip(route, route[1:]):
            assert v1 == u2

    def test_route_links_are_physical(self):
        torus = Torus3D(4, 4, 1)
        for u, v in torus.route(0, 10):
            assert v in torus.neighbors(u)

    def test_self_route_empty(self):
        assert Torus3D(3, 3, 3).route(13, 13) == []


class TestNeighbors:
    def test_interior_degree_six(self):
        torus = Torus3D(4, 4, 4)
        assert len(torus.neighbors(21)) == 6

    def test_degenerate_dims_reduce_degree(self):
        assert len(Torus3D(4, 1, 1).neighbors(0)) == 2
        assert len(Torus3D(2, 2, 1).neighbors(0)) == 2  # wrap collapses on dim=2

    def test_neighbors_at_distance_one(self):
        torus = Torus3D(3, 3, 3)
        for nb in torus.neighbors(0):
            assert torus.hop_distance(0, nb) == 1

    def test_bisection_links_positive(self):
        assert Torus3D(8, 4, 4).bisection_links == 2 * 4 * 4
        assert Torus3D(2, 1, 1).bisection_links == 1
