"""Byte-identity of the O(active-ranks) scheduler against the dense baseline.

``tests/data/schedule_digests.json`` was captured from the pre-rework
*dense* scheduler (P-length per-rank frontier lists, eager rank
iteration) by ``tests/golden_capture.py``.  Every test here re-runs one
configuration on the current scheduler and asserts the result digests —
levels, stats (message/byte/duplicate counters and per-level simulated
times), clock, trace, and fault-report counters — are byte-identical.

The matrix spans 1D/2D/bidirectional/hybrid scheduling on Poisson and
R-MAT graphs, wire codecs, buffered chunking, ring collectives, crash
recovery (spare and shrink), rollback-heavy wire faults, and the
paper-scale 64x64 grid on the reference n=20k/k=8 workload.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import bidirectional_bfs, build_engine, distributed_bfs
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.faults import FaultSpec
from repro.graph.generators import build_graph
from repro.observability.digest import result_digests
from repro.types import GraphSpec, SystemSpec

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "schedule_digests.json"

POISSON = GraphSpec(n=600, k=6.0, seed=3)
RMAT = GraphSpec.rmat(9, edge_factor=8, seed=5)
REFERENCE = GraphSpec(n=20_000, k=8.0, seed=7)

_GRAPH_CACHE: dict[GraphSpec, object] = {}


def _graph(spec: GraphSpec):
    cached = _GRAPH_CACHE.get(spec)
    if cached is None:
        cached = _GRAPH_CACHE[spec] = build_graph(spec)
    return cached


def _report_counters(report) -> dict:
    if report is None:
        return {}
    return {
        "injected": report.injected,
        "retries": report.retries,
        "recovered": report.recovered,
        "unrecovered": report.unrecovered,
        "rollbacks": report.rollbacks,
        "crashes": report.crashes,
        "spare_failovers": report.spare_failovers,
        "shrink_failovers": report.shrink_failovers,
        "replayed_levels": report.replayed_levels,
        "checkpoint_bytes": report.checkpoint_bytes,
    }


def _run(
    graph_spec: GraphSpec,
    grid: tuple[int, int],
    *,
    layout: str = "2d",
    wire: str = "raw",
    faults: str | FaultSpec | None = None,
    observe: str = "off",
    opts: BfsOptions | None = None,
    source: int = 0,
    target: int | None = None,
) -> dict:
    system = SystemSpec(
        layout=layout, wire=wire, faults=faults, observe=observe
    )
    result = distributed_bfs(
        _graph(graph_spec), grid, source, target=target,
        opts=opts, system=system,
    )
    row = dict(result_digests(result))
    row["num_levels"] = result.num_levels
    if target is not None:
        row["target_level"] = result.target_level
    row.update(_report_counters(result.faults))
    return row


def _run_bidirectional(graph_spec: GraphSpec, grid: tuple[int, int]) -> dict:
    graph = _graph(graph_spec)
    result = bidirectional_bfs(graph, grid, 0, graph.n - 1)
    return {
        "path_length": result.path_length,
        "forward_levels": result.forward_levels,
        "backward_levels": result.backward_levels,
        "elapsed": result.elapsed.hex(),
        "comm_time": result.comm_time.hex(),
        "compute_time": result.compute_time.hex(),
    }


CONFIGS = {
    "poisson-1d": lambda: _run(POISSON, (1, 8), layout="1d"),
    "poisson-2d": lambda: _run(POISSON, (4, 4)),
    "poisson-2d-target": lambda: _run(POISSON, (4, 4), target=POISSON.n - 1),
    "poisson-2d-observed": lambda: _run(POISSON, (4, 4), observe="full"),
    "poisson-2d-varint": lambda: _run(POISSON, (4, 4), wire="delta-varint"),
    "poisson-2d-buffered": lambda: _run(
        POISSON, (4, 4), opts=BfsOptions(buffer_capacity=64)
    ),
    "poisson-2d-ring": lambda: _run(
        POISSON, (4, 4),
        opts=BfsOptions(expand_collective="ring", fold_collective="ring"),
    ),
    "poisson-2d-two-phase": lambda: _run(
        POISSON, (4, 4),
        opts=BfsOptions(expand_collective="two-phase", fold_collective="two-phase"),
    ),
    "poisson-2d-no-cache": lambda: _run(
        POISSON, (4, 4), opts=BfsOptions(use_sent_cache=False)
    ),
    "rmat-1d": lambda: _run(RMAT, (8, 1), layout="1d"),
    "rmat-2d": lambda: _run(RMAT, (4, 4)),
    "rmat-2d-hybrid": lambda: _run(
        RMAT, (4, 4), opts=BfsOptions(direction="hybrid")
    ),
    "rmat-1d-hybrid": lambda: _run(
        RMAT, (8, 1), layout="1d", opts=BfsOptions(direction="hybrid")
    ),
    "poisson-2d-sieve": lambda: _run(
        POISSON, (4, 4), opts=BfsOptions(use_sieve=True)
    ),
    "poisson-1d-sieve": lambda: _run(
        POISSON, (1, 8), layout="1d", opts=BfsOptions(use_sieve=True)
    ),
    "poisson-2d-sieve-adaptive": lambda: _run(
        POISSON, (4, 4), wire="adaptive", opts=BfsOptions(use_sieve=True)
    ),
    "rmat-2d-sieve-hybrid": lambda: _run(
        RMAT, (4, 4), opts=BfsOptions(direction="hybrid", use_sieve=True)
    ),
    "poisson-2d-bidirectional": lambda: _run_bidirectional(POISSON, (4, 4)),
    "poisson-2d-mild-faults": lambda: _run(POISSON, (4, 4), faults="mild"),
    "poisson-2d-crash-spare": lambda: _run(POISSON, (4, 4), faults="crash-spare"),
    "poisson-2d-crash-shrink": lambda: _run(POISSON, (4, 4), faults="crash-shrink"),
    # sieve x faults: shadows roll back with the sent cache, summary
    # broadcasts replay deterministically (rollback-heavy drops pinned)
    "poisson-2d-sieve-mild-faults": lambda: _run(
        POISSON, (4, 4), faults="mild", opts=BfsOptions(use_sieve=True)
    ),
    "poisson-2d-sieve-rollback-heavy": lambda: _run(
        POISSON, (4, 4), faults=FaultSpec(seed=0, drop_rate=0.3, max_retries=3),
        opts=BfsOptions(use_sieve=True),
    ),
    "poisson-1d-sieve-rollback-heavy": lambda: _run(
        POISSON, (1, 8), layout="1d",
        faults=FaultSpec(seed=0, drop_rate=0.3, max_retries=3),
        opts=BfsOptions(use_sieve=True),
    ),
    "poisson-2d-sieve-crash-spare": lambda: _run(
        POISSON, (4, 4), faults="crash-spare", opts=BfsOptions(use_sieve=True)
    ),
    "reference-64x64": lambda: _run(REFERENCE, (64, 64)),
}


def capture_all() -> dict:
    """Run the whole matrix (used by golden_capture.py)."""
    return {name: fn() for name, fn in CONFIGS.items()}


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN_PATH.exists():  # pragma: no cover - capture-time guard
        pytest.skip("no golden digests; run tests/golden_capture.py")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_byte_identical_to_dense_baseline(name: str, golden: dict) -> None:
    assert name in golden, f"golden file lacks {name}; re-run golden_capture.py"
    assert CONFIGS[name]() == golden[name]
