"""Tests for the experiment harness: configs, sweeps, reports."""

from __future__ import annotations

import pytest

from repro.bfs.options import BfsOptions
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.report import format_series, format_table
from repro.harness.sweep import sweep
from repro.types import GraphSpec, GridShape


def tiny_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        name="tiny",
        graph=GraphSpec(n=200, k=6, seed=1),
        grid=GridShape(2, 2),
        num_searches=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestRunExperiment:
    def test_basic_run(self):
        result = run_experiment(tiny_config())
        assert len(result.runs) == 2
        assert result.mean_time > 0
        assert result.mean_comm_time >= 0
        assert result.mean_compute_time > 0

    def test_deterministic(self):
        a = run_experiment(tiny_config())
        b = run_experiment(tiny_config())
        assert a.mean_time == b.mean_time
        assert a.mean_message_length("fold") == b.mean_message_length("fold")

    def test_pinned_source_target(self):
        config = tiny_config(source=0, target=5, num_searches=1)
        result = run_experiment(config)
        assert result.runs[0].source == 0
        assert result.runs[0].target == 5

    def test_pinned_source_full_search(self):
        config = tiny_config(source=3, num_searches=1)
        result = run_experiment(config)
        assert result.runs[0].target is None

    def test_1d_layout(self):
        config = tiny_config(grid=GridShape(4, 1), layout="1d")
        result = run_experiment(config)
        assert result.mean_time > 0

    def test_redundancy_metric(self):
        config = tiny_config(opts=BfsOptions(fold_collective="union-ring"))
        result = run_experiment(config)
        assert 0.0 <= result.mean_redundancy < 1.0


class TestSweep:
    def test_graph_overrides(self):
        results = sweep(tiny_config(), [{"n": 100}, {"n": 300}])
        assert results[0].config.graph.n == 100
        assert results[1].config.graph.n == 300
        assert results[0].config.graph.k == 6  # untouched

    def test_field_overrides(self):
        results = sweep(tiny_config(), [{"grid": GridShape(1, 4), "layout": "1d"}])
        assert results[0].config.layout == "1d"

    def test_names(self):
        results = sweep(tiny_config(), [{"name": "a"}, {}])
        assert results[0].config.name == "a"
        assert results[1].config.name == "tiny[1]"


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["P", "time"], [[1, 0.5], [128, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("P")
        assert "128" in lines[3]

    def test_format_table_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        text = format_series("2-D (k=10)", [0, 1], [5, 10])
        assert text == "2-D (k=10): (0, 5), (1, 10)"

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], [1])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000012], [123456.0], [1.5], [0]])
        assert "1.200e-05" in text
        assert "1.235e+05" in text
