"""Tests for bi-directional BFS (Section 2.3) against networkx distances."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import bidirectional_bfs, build_communicator, build_engine
from repro.bfs.bidirectional import run_bidirectional_bfs
from repro.bfs.level_sync import run_bfs
from repro.errors import ConfigurationError
from repro.graph.csr import CsrGraph
from repro.graph.generators import poisson_random_graph
from repro.types import GraphSpec, GridShape


def nx_distance(graph: CsrGraph, s: int, t: int) -> int | None:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edge_array().tolist())
    try:
        return nx.shortest_path_length(g, s, t)
    except nx.NetworkXNoPath:
        return None


class TestCorrectness:
    @pytest.mark.parametrize("pair", [(0, 1), (0, 399), (10, 350), (42, 43)])
    def test_distances_match_networkx(self, small_graph, pair):
        s, t = pair
        result = bidirectional_bfs(small_graph, (4, 4), s, t)
        assert result.path_length == nx_distance(small_graph, s, t)

    def test_source_equals_target(self, small_graph):
        result = bidirectional_bfs(small_graph, (2, 2), 7, 7)
        assert result.path_length == 0

    def test_adjacent_vertices(self, path_graph):
        result = bidirectional_bfs(path_graph, (2, 2), 3, 4)
        assert result.path_length == 1

    def test_path_graph_extremes(self, path_graph):
        result = bidirectional_bfs(path_graph, (2, 2), 0, 9)
        assert result.path_length == 9

    def test_disconnected_returns_none(self):
        g = CsrGraph.from_edges(6, np.array([[0, 1], [1, 2], [3, 4]]))
        result = bidirectional_bfs(g, (2, 2), 0, 4)
        assert result.path_length is None
        assert not result.found

    def test_1d_layout(self, small_graph):
        result = bidirectional_bfs(small_graph, (4, 1), 0, 200, layout="1d")
        assert result.path_length == nx_distance(small_graph, 0, 200)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_pairs_property(self, seed):
        rng = np.random.default_rng(seed)
        graph = poisson_random_graph(GraphSpec(n=150, k=4, seed=seed % 7))
        s, t = (int(x) for x in rng.integers(0, graph.n, 2))
        result = bidirectional_bfs(graph, (2, 2), s, t)
        assert result.path_length == nx_distance(graph, s, t)


class TestEfficiency:
    def test_fewer_levels_than_unidirectional(self, small_graph):
        """Both sides together expand about d levels, vs d for one side —
        but each side's frontier stays small; total processed volume drops."""
        s, t = 0, 399
        d = nx_distance(small_graph, s, t)
        result = bidirectional_bfs(small_graph, (4, 4), s, t)
        assert result.forward_levels + result.backward_levels <= d + 2

    def test_less_volume_than_unidirectional_on_large_graph(self):
        graph = poisson_random_graph(GraphSpec(n=4000, k=10, seed=1))
        s, t = 11, 3777
        grid = (4, 4)
        uni = run_bfs(build_engine(graph, grid), s, target=t)
        bi = bidirectional_bfs(graph, grid, s, t)
        assert bi.stats.total_processed < uni.stats.total_processed

    def test_summary(self, small_graph):
        result = bidirectional_bfs(small_graph, (2, 2), 0, 5)
        assert "bi-directional BFS 0->5" in result.summary()


class TestValidation:
    def test_same_engine_twice_rejected(self, small_graph):
        comm = build_communicator(GridShape(2, 2))
        engine = build_engine(small_graph, (2, 2), comm=comm)
        with pytest.raises(ConfigurationError):
            run_bidirectional_bfs(engine, engine, 0, 1)

    def test_different_comms_rejected(self, small_graph):
        fwd = build_engine(small_graph, (2, 2))
        bwd = build_engine(small_graph, (2, 2))
        with pytest.raises(ConfigurationError):
            run_bidirectional_bfs(fwd, bwd, 0, 1)

    def test_out_of_range_vertices_rejected(self, small_graph):
        comm = build_communicator(GridShape(2, 2))
        fwd = build_engine(small_graph, (2, 2), comm=comm)
        bwd = build_engine(small_graph, (2, 2), comm=comm)
        from repro.errors import SearchError

        with pytest.raises(SearchError):
            run_bidirectional_bfs(fwd, bwd, 0, small_graph.n)
