"""Tests for the repro-bfs command-line interface (driven in-process)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


class TestGenerate:
    def test_poisson(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        assert main(["generate", "--out", str(out), "--n", "500", "--k", "6"]) == 0
        assert out.exists()
        assert "n=500" in capsys.readouterr().out

    def test_rmat(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        code = main(
            ["generate", "--out", str(out), "--rmat", "--scale", "8", "--edge-factor", "4"]
        )
        assert code == 0
        assert "n=256" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "extra", [["--n", "500"], ["--k", "6"], ["--n", "500", "--k", "6"]]
    )
    def test_rmat_rejects_poisson_parameters(self, tmp_path, extra):
        # --n/--k were silently ignored under --rmat; now they error clearly
        argv = ["generate", "--out", str(tmp_path / "g.npz"), "--rmat",
                "--scale", "8", *extra]
        with pytest.raises(SystemExit, match="--scale"):
            main(argv)
        assert not (tmp_path / "g.npz").exists()


class TestBfs:
    def test_generated_graph(self, capsys):
        assert main(["bfs", "--n", "800", "--k", "8", "--source", "0"]) == 0
        out = capsys.readouterr().out
        assert "BFS from 0" in out
        assert "volume/level" in out

    def test_stored_graph(self, tmp_path, capsys):
        path = tmp_path / "g.npz"
        main(["generate", "--out", str(path), "--n", "400", "--k", "6"])
        assert main(["bfs", "--graph", str(path), "--grid", "2x2", "--source", "3"]) == 0

    def test_with_target(self, capsys):
        assert main(["bfs", "--n", "500", "--k", "8", "--source", "0", "--target", "99"]) == 0
        assert "target 99" in capsys.readouterr().out

    def test_validate_flag(self, capsys):
        code = main(["bfs", "--n", "400", "--k", "6", "--source", "1", "--validate"])
        assert code == 0
        assert "validation OK" in capsys.readouterr().out

    def test_1d_layout_and_collectives(self, capsys):
        code = main(
            ["bfs", "--n", "300", "--k", "5", "--grid", "4x1", "--layout", "1d",
             "--fold", "bruck", "--no-sent-cache"]
        )
        assert code == 0

    def test_bad_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["bfs", "--grid", "four-by-four"])

    def test_rmat_graph_kind(self, capsys):
        code = main(
            ["bfs", "--graph-kind", "rmat", "--scale", "9", "--edge-factor", "4",
             "--grid", "2x2", "--source", "0"]
        )
        assert code == 0
        assert "BFS from 0" in capsys.readouterr().out

    @pytest.mark.parametrize("direction", ["hybrid", "bottom-up", "model"])
    def test_direction_flags(self, direction, capsys):
        code = main(
            ["bfs", "--graph-kind", "rmat", "--scale", "9", "--edge-factor", "4",
             "--grid", "2x2", "--source", "0", "--direction", direction,
             "--alpha", "4", "--beta", "16"]
        )
        assert code == 0
        assert "BFS from 0" in capsys.readouterr().out

    def test_model_direction_needs_generated_graph(self, tmp_path):
        path = tmp_path / "g.npz"
        main(["generate", "--out", str(path), "--n", "400", "--k", "6"])
        with pytest.raises(SystemExit, match="model"):
            main(["bfs", "--graph", str(path), "--direction", "model"])


class TestBidir:
    def test_search(self, capsys):
        code = main(["bidir", "--n", "600", "--k", "8", "--source", "0", "--target", "500"])
        assert code == 0
        assert "bi-directional BFS 0->500" in capsys.readouterr().out


class TestCrossover:
    def test_paper_point(self, capsys):
        assert main(["crossover", "--n", "4e7", "--p", "400"]) == 0
        out = capsys.readouterr().out
        assert "k = 31." in out


class TestFigure:
    @pytest.mark.parametrize("name", ["fig4c", "fig7"])
    def test_quick_figures(self, name, capsys):
        assert main(["figure", "--name", name]) == 0
        assert capsys.readouterr().out.strip()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "--name", "fig99"])


class TestFigureExtra:
    def test_fig6(self, capsys):
        assert main(["figure", "--name", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "1d" in out and "2d" in out

    def test_fig5(self, capsys):
        assert main(["figure", "--name", "fig5"]) == 0
        assert "time(s)" in capsys.readouterr().out

    def test_fig4a(self, capsys):
        assert main(["figure", "--name", "fig4a"]) == 0
        assert "comm(s)" in capsys.readouterr().out


class TestScorecard:
    def test_all_claims_pass(self, capsys):
        assert main(["scorecard"]) == 0
        out = capsys.readouterr().out
        assert "9/9 claims reproduced" in out
        assert "FAIL" not in out
