"""Tests for machine models: task mapping, BlueGene/L costs, flat cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.machine.bluegene import BLUEGENE_L, MachineModel, bluegene_l_torus_for
from repro.machine.cluster import MCR_CLUSTER, FlatNetwork, flat_network_for
from repro.machine.mapping import TaskMapping, planar_mapping, row_major_mapping
from repro.machine.torus import Torus3D
from repro.types import GridShape


class TestMachineModel:
    def test_message_time_components(self):
        model = MachineModel(
            name="t", alpha=1e-6, per_hop=1e-7, bandwidth=1e8,
            bytes_per_vertex=8, edge_scan_cost=0, hash_lookup_cost=0, update_cost=0,
        )
        t = model.message_time(1000, hops=3)
        assert t == pytest.approx(1e-6 + 3e-7 + 8000 / 1e8)

    def test_contention_slows_transfer(self):
        base = BLUEGENE_L.message_time(10_000, hops=2, contention=1.0)
        congested = BLUEGENE_L.message_time(10_000, hops=2, contention=4.0)
        assert congested > base

    def test_compute_time(self):
        t = BLUEGENE_L.compute_time(edges_scanned=10, hash_lookups=5, updates=2)
        expected = (
            10 * BLUEGENE_L.edge_scan_cost
            + 5 * BLUEGENE_L.hash_lookup_cost
            + 2 * BLUEGENE_L.update_cost
        )
        assert t == pytest.approx(expected)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BLUEGENE_L.message_time(-1)

    def test_with_overrides(self):
        model = BLUEGENE_L.with_overrides(alpha=9e-6)
        assert model.alpha == 9e-6
        assert model.bandwidth == BLUEGENE_L.bandwidth

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(
                name="bad", alpha=0, per_hop=0, bandwidth=1,
                bytes_per_vertex=8, edge_scan_cost=0, hash_lookup_cost=0, update_cost=0,
            )

    def test_hashing_dominates_bluegene(self):
        """The paper profiled hashing as the dominant cost; the calibrated
        model must charge more per hash lookup than per wire byte-time."""
        per_vertex_wire = BLUEGENE_L.bytes_per_vertex / BLUEGENE_L.bandwidth
        assert BLUEGENE_L.hash_lookup_cost > 3 * per_vertex_wire


class TestBlueGeneTorusFor:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16, 64, 128, 512])
    def test_exact_node_count(self, p):
        torus = bluegene_l_torus_for(p)
        assert torus.num_nodes == p

    def test_cubic_preference(self):
        assert sorted(bluegene_l_torus_for(64).dims, reverse=True) == [4, 4, 4]
        assert sorted(bluegene_l_torus_for(8).dims, reverse=True) == [2, 2, 2]

    def test_prime_falls_back_to_line(self):
        assert sorted(bluegene_l_torus_for(13).dims, reverse=True) == [13, 1, 1]


class TestTaskMapping:
    def test_row_major_identity(self):
        grid = GridShape(2, 4)
        mapping = row_major_mapping(grid, Torus3D(2, 2, 2))
        assert mapping.node_of(5) == 5

    def test_permutation_required(self):
        grid = GridShape(2, 2)
        with pytest.raises(TopologyError):
            TaskMapping(grid, Torus3D(2, 2, 1), np.array([0, 0, 1, 2]))

    def test_too_small_torus_rejected(self):
        with pytest.raises(TopologyError):
            TaskMapping(GridShape(2, 4), Torus3D(2, 2, 1), np.arange(8))

    def test_planar_mapping_is_permutation(self):
        grid = GridShape(4, 4)
        mapping = planar_mapping(grid, Torus3D(2, 4, 2))
        assert sorted(mapping.rank_to_node.tolist()) == list(range(16))

    def test_planar_mapping_shortens_column_rings(self):
        """The Figure 1 mapping should make expand rings (processor-columns)
        at least as short as the naive row-major placement."""
        grid = GridShape(8, 8)
        torus = Torus3D(4, 4, 4)
        planar = planar_mapping(grid, torus)
        naive = row_major_mapping(grid, torus)
        assert planar.column_ring_hops() <= naive.column_ring_hops()

    def test_planar_fallback_when_incompatible(self):
        grid = GridShape(3, 5)
        torus = Torus3D(15, 1, 1)
        mapping = planar_mapping(grid, torus)  # C=5 not divisible by Z=1 -> ok
        assert sorted(mapping.rank_to_node.tolist()) == list(range(15))

    def test_mean_group_hops(self):
        grid = GridShape(2, 2)
        mapping = row_major_mapping(grid, Torus3D(4, 1, 1))
        assert mapping.mean_group_hops([0, 1]) == 1.0
        assert mapping.mean_group_hops([0]) == 0.0

    def test_ring_hops(self):
        grid = GridShape(1, 4)
        mapping = row_major_mapping(grid, Torus3D(4, 1, 1))
        assert mapping.ring_hops([0, 1, 2, 3]) == 4  # unit steps + wrap


class TestFlatNetwork:
    def test_all_pairs_one_hop(self):
        net = FlatNetwork(6)
        assert net.hop_distance(0, 5) == 1
        assert net.hop_distance(2, 2) == 0

    def test_vectorised(self):
        net = FlatNetwork(4)
        d = net.hop_distance_many(np.array([0, 1]), np.array([0, 3]))
        assert d.tolist() == [0, 1]

    def test_route_single_link(self):
        net = FlatNetwork(4)
        assert net.route(1, 3) == [(1, 3)]
        assert net.route(2, 2) == []

    def test_flat_network_for(self):
        mapping = flat_network_for(GridShape(2, 3))
        assert mapping.hops(0, 5) == 1

    def test_mcr_faster_cpu_than_bluegene(self):
        assert MCR_CLUSTER.hash_lookup_cost < BLUEGENE_L.hash_lookup_cost
