"""Tests for repro.partition.base (BlockDistribution) and indexing (VertexIndexMap)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partition.base import BlockDistribution
from repro.partition.indexing import VertexIndexMap


class TestBlockDistribution:
    def test_even_split(self):
        dist = BlockDistribution(12, 4)
        assert [dist.size_of(p) for p in range(4)] == [3, 3, 3, 3]

    def test_remainder_goes_to_first_parts(self):
        dist = BlockDistribution(10, 4)
        assert [dist.size_of(p) for p in range(4)] == [3, 3, 2, 2]

    def test_more_parts_than_items(self):
        dist = BlockDistribution(2, 5)
        assert [dist.size_of(p) for p in range(5)] == [1, 1, 0, 0, 0]

    def test_ranges_cover_everything(self):
        dist = BlockDistribution(17, 5)
        covered = []
        for p in range(5):
            lo, hi = dist.range_of(p)
            covered.extend(range(lo, hi))
        assert covered == list(range(17))

    def test_part_of_vectorised(self):
        dist = BlockDistribution(10, 3)  # sizes 4,3,3
        parts = dist.part_of(np.array([0, 3, 4, 6, 7, 9]))
        assert parts.tolist() == [0, 0, 1, 1, 2, 2]

    def test_part_of_scalar(self):
        dist = BlockDistribution(10, 3)
        assert dist.part_of_scalar(5) == 1

    def test_local_index(self):
        dist = BlockDistribution(10, 3)
        local = dist.local_index(np.array([0, 4, 9]))
        assert local.tolist() == [0, 0, 2]

    def test_out_of_range_rejected(self):
        dist = BlockDistribution(10, 3)
        with pytest.raises(PartitionError):
            dist.part_of(np.array([10]))
        with pytest.raises(PartitionError):
            dist.range_of(3)

    def test_zero_parts_rejected(self):
        with pytest.raises(PartitionError):
            BlockDistribution(10, 0)

    @given(st.integers(0, 500), st.integers(1, 32))
    def test_balance_invariant(self, n, parts):
        dist = BlockDistribution(n, parts)
        sizes = [dist.size_of(p) for p in range(parts)]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(1, 500), st.integers(1, 32), st.data())
    def test_ownership_consistent(self, n, parts, data):
        dist = BlockDistribution(n, parts)
        item = data.draw(st.integers(0, n - 1))
        part = dist.part_of_scalar(item)
        lo, hi = dist.range_of(part)
        assert lo <= item < hi


class TestVertexIndexMap:
    def test_roundtrip(self):
        vmap = VertexIndexMap([30, 10, 20])
        local = vmap.to_local(np.array([10, 20, 30]))
        assert local.tolist() == [0, 1, 2]
        assert vmap.to_global(local).tolist() == [10, 20, 30]

    def test_duplicates_collapsed(self):
        assert len(VertexIndexMap([5, 5, 5])) == 1

    def test_missing_id_raises(self):
        vmap = VertexIndexMap([1, 2, 3])
        with pytest.raises(PartitionError):
            vmap.to_local(np.array([4]))

    def test_partial_lookup(self):
        vmap = VertexIndexMap([10, 20, 30])
        mask, local = vmap.to_local_partial(np.array([5, 20, 35, 10]))
        assert mask.tolist() == [False, True, False, True]
        assert local.tolist() == [1, 0]

    def test_partial_lookup_empty_map(self):
        vmap = VertexIndexMap(np.array([], dtype=np.int64))
        mask, local = vmap.to_local_partial(np.array([1, 2]))
        assert not mask.any() and local.size == 0

    def test_contains(self):
        vmap = VertexIndexMap([7, 9])
        assert vmap.contains(np.array([7, 8, 9])).tolist() == [True, False, True]

    def test_to_global_out_of_range(self):
        vmap = VertexIndexMap([7, 9])
        with pytest.raises(PartitionError):
            vmap.to_global(np.array([2]))

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=80), st.data())
    def test_roundtrip_property(self, ids, data):
        vmap = VertexIndexMap(ids)
        unique = sorted(set(ids))
        probe = data.draw(st.lists(st.sampled_from(unique), max_size=40))
        probe_arr = np.array(probe, dtype=np.int64) if probe else np.empty(0, np.int64)
        assert vmap.to_global(vmap.to_local(probe_arr)).tolist() == probe
