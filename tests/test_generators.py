"""Tests for repro.graph.generators: G(n,p), G(n,m), R-MAT, pair-id inversion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    _pair_ids_to_edges,
    dedup_undirected_edges,
    gnm_edges,
    gnp_edges,
    poisson_random_graph,
    rmat_edges,
)
from repro.types import GraphSpec
from repro.utils.rng import RngFactory


def _rng(seed=0):
    return RngFactory(seed).named("test-gen")


class TestPairIdInversion:
    def test_first_and_last(self):
        n = 6
        total = n * (n - 1) // 2
        edges = _pair_ids_to_edges(np.arange(total), n)
        assert edges[0].tolist() == [0, 1]
        assert edges[n - 2].tolist() == [0, n - 1]
        assert edges[n - 1].tolist() == [1, 2]
        assert edges[-1].tolist() == [n - 2, n - 1]

    def test_bijective_small(self):
        n = 9
        total = n * (n - 1) // 2
        edges = _pair_ids_to_edges(np.arange(total), n)
        seen = set(map(tuple, edges.tolist()))
        assert len(seen) == total
        assert all(0 <= u < v < n for u, v in seen)

    @given(st.integers(2, 2000))
    @settings(max_examples=40)
    def test_bijective_boundaries(self, n):
        """Row boundaries are where float rounding could bite — test them."""
        total = n * (n - 1) // 2
        probe = np.unique(
            np.clip(
                np.concatenate(
                    [
                        np.array([0, total - 1]),
                        np.cumsum(np.arange(n - 1, 0, -1))[:-1],  # row starts
                        np.cumsum(np.arange(n - 1, 0, -1))[:-1] - 1,  # row ends
                    ]
                ),
                0,
                total - 1,
            )
        )
        edges = _pair_ids_to_edges(probe, n)
        u, v = edges[:, 0], edges[:, 1]
        assert (u < v).all() and (u >= 0).all() and (v < n).all()
        # invert: id = u*n - u*(u+1)/2 + (v - u - 1)
        ids = u * n - u * (u + 1) // 2 + (v - u - 1)
        assert np.array_equal(ids, probe)


class TestGnp:
    def test_zero_probability(self):
        assert gnp_edges(100, 0.0, _rng()).shape == (0, 2)

    def test_full_probability(self):
        edges = gnp_edges(6, 1.0, _rng())
        assert edges.shape == (15, 2)

    def test_expected_count(self):
        n, p = 2000, 0.005
        m = gnp_edges(n, p, _rng()).shape[0]
        expected = n * (n - 1) / 2 * p
        sigma = np.sqrt(expected * (1 - p))
        assert abs(m - expected) < 5 * sigma

    def test_edges_valid_and_unique(self):
        edges = gnp_edges(300, 0.02, _rng(3))
        assert (edges[:, 0] < edges[:, 1]).all()
        assert len(set(map(tuple, edges.tolist()))) == edges.shape[0]

    def test_deterministic(self):
        a = gnp_edges(200, 0.05, _rng(9))
        b = gnp_edges(200, 0.05, _rng(9))
        assert np.array_equal(a, b)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            gnp_edges(10, 1.5, _rng())

    def test_tiny_graph(self):
        assert gnp_edges(1, 0.5, _rng()).shape == (0, 2)


class TestGnm:
    def test_exact_count(self):
        edges = gnm_edges(100, 250, _rng())
        assert edges.shape == (250, 2)
        assert len(set(map(tuple, edges.tolist()))) == 250

    def test_zero_edges(self):
        assert gnm_edges(10, 0, _rng()).shape == (0, 2)

    def test_complete_graph(self):
        edges = gnm_edges(5, 10, _rng())
        assert edges.shape == (10, 2)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm_edges(4, 7, _rng())

    def test_edges_on_one_vertex_rejected(self):
        with pytest.raises(ValueError):
            gnm_edges(1, 1, _rng())


class TestPoissonRandomGraph:
    def test_degree_distribution_poisson(self):
        g = poisson_random_graph(GraphSpec(n=5000, k=8, seed=1))
        deg = g.degree()
        # Poisson(8): mean == variance == 8 (tolerances ~5 sigma).
        assert abs(deg.mean() - 8) < 0.5
        assert abs(deg.var() - 8) < 1.5

    def test_deterministic_per_seed(self):
        a = poisson_random_graph(GraphSpec(n=500, k=5, seed=2))
        b = poisson_random_graph(GraphSpec(n=500, k=5, seed=2))
        assert np.array_equal(a.indices, b.indices)

    def test_seed_changes_graph(self):
        a = poisson_random_graph(GraphSpec(n=500, k=5, seed=2))
        b = poisson_random_graph(GraphSpec(n=500, k=5, seed=3))
        assert not np.array_equal(a.indices, b.indices)

    def test_single_vertex(self):
        g = poisson_random_graph(GraphSpec(n=1, k=0))
        assert g.n == 1 and g.num_edges == 0


class TestRmat:
    def test_size(self):
        edges = rmat_edges(6, 8, _rng())
        assert edges.shape == (64 * 8, 2)
        assert edges.max() < 64 and edges.min() >= 0

    def test_skewed_degrees(self):
        from repro.graph.csr import CsrGraph

        edges = rmat_edges(10, 16, _rng(4))
        g = CsrGraph.from_edges(1 << 10, edges)
        deg = g.degree()
        # R-MAT is heavy-tailed: max degree far above the mean.
        assert deg.max() > 4 * deg.mean()

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat_edges(0, 4, _rng())

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 4, _rng(), a=0.6, b=0.3, c=0.2)


class TestDedup:
    def test_canonicalises(self):
        edges = np.array([[2, 1], [1, 2], [3, 3], [0, 4]])
        out = dedup_undirected_edges(edges)
        assert out.tolist() == [[0, 4], [1, 2]]

    def test_empty(self):
        assert dedup_undirected_edges(np.empty((0, 2))).shape == (0, 2)

    @given(
        st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=80)
    )
    def test_property(self, pairs):
        arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
        out = dedup_undirected_edges(arr)
        expected = sorted({(min(u, v), max(u, v)) for u, v in pairs if u != v})
        assert list(map(tuple, out.tolist())) == expected
