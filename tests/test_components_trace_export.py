"""Tests for graph components, the trace recorder, and result export."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.api import build_communicator, build_engine
from repro.bfs.level_sync import run_bfs
from repro.graph.components import (
    component_sizes,
    connected_components,
    giant_component,
    sample_connected_pair,
    sample_unreachable_pair,
)
from repro.graph.csr import CsrGraph
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.export import results_to_rows, write_csv, write_json
from repro.runtime.trace import TraceRecorder
from repro.types import GraphSpec, GridShape


@pytest.fixture()
def two_component_graph() -> CsrGraph:
    edges = np.array([[0, 1], [1, 2], [2, 0], [3, 4], [4, 5]])
    return CsrGraph.from_edges(7, edges)  # vertex 6 isolated


class TestComponents:
    def test_labels(self, two_component_graph):
        labels = connected_components(two_component_graph)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]
        assert labels[6] not in (labels[0], labels[3])

    def test_sizes_sorted(self, two_component_graph):
        assert component_sizes(two_component_graph).tolist() == [3, 3, 1]

    def test_giant_component(self):
        edges = np.array([[0, 1], [1, 2], [2, 3], [5, 6]])
        giant = giant_component(CsrGraph.from_edges(7, edges))
        assert giant.tolist() == [0, 1, 2, 3]

    def test_sample_connected_pair(self, two_component_graph):
        rng = np.random.default_rng(0)
        for _ in range(5):
            s, t = sample_connected_pair(two_component_graph, rng)
            labels = connected_components(two_component_graph)
            assert labels[s] == labels[t] and s != t

    def test_sample_unreachable_pair(self, two_component_graph):
        rng = np.random.default_rng(0)
        for _ in range(5):
            s, t = sample_unreachable_pair(two_component_graph, rng)
            labels = connected_components(two_component_graph)
            assert labels[s] != labels[t]

    def test_connected_graph_has_no_unreachable_pair(self, path_graph):
        with pytest.raises(ValueError):
            sample_unreachable_pair(path_graph, np.random.default_rng(0))

    def test_empty_graph_has_no_connected_pair(self):
        with pytest.raises(ValueError):
            sample_connected_pair(CsrGraph.empty(3), np.random.default_rng(0))


class TestTraceRecorder:
    def _run_traced(self, graph):
        grid = GridShape(2, 2)
        comm = build_communicator(grid)
        engine = build_engine(graph, grid, comm=comm)
        with TraceRecorder(comm) as trace:
            run_bfs(engine, 0)
        return comm, trace

    def test_captures_messages(self, small_graph):
        comm, trace = self._run_traced(small_graph)
        assert len(trace.events) == comm.stats.total_messages
        total = sum(e.num_vertices for e in trace.events)
        assert total == comm.stats.total_processed
        assert sum(e.raw_bytes for e in trace.events) == comm.stats.total_bytes
        assert (
            sum(e.encoded_bytes for e in trace.events)
            == comm.stats.total_encoded_bytes
        )

    def test_event_fields_valid(self, small_graph):
        comm, trace = self._run_traced(small_graph)
        for event in trace.events:
            assert 0 <= event.src < comm.nranks
            assert 0 <= event.dst < comm.nranks
            assert event.num_vertices > 0
            assert event.raw_bytes == event.num_vertices * comm.model.bytes_per_vertex
            assert event.encoded_bytes == event.raw_bytes  # raw codec default
            assert event.phase in ("expand", "fold")
            assert event.time >= 0

    def test_encoded_bytes_match_stats_under_codec(self, small_graph):
        grid = GridShape(2, 2)
        comm = build_communicator(grid, wire="adaptive")
        engine = build_engine(small_graph, grid, comm=comm)
        with TraceRecorder(comm) as trace:
            run_bfs(engine, 0)
        assert (
            sum(e.encoded_bytes for e in trace.events)
            == comm.stats.total_encoded_bytes
        )
        assert any(e.encoded_bytes < e.raw_bytes for e in trace.events)

    def test_analysis_helpers(self, small_graph):
        comm, trace = self._run_traced(small_graph)
        sent = trace.per_rank_sent()
        assert sent.sum() == comm.stats.total_processed
        volumes = trace.per_phase_volume()
        assert set(volumes) <= {"expand", "fold"}
        src, dst, volume = trace.busiest_pair()
        assert volume >= max(1, sent.max() // comm.nranks)

    def test_uninstall_restores(self, small_graph):
        grid = GridShape(2, 2)
        comm = build_communicator(grid)
        trace = TraceRecorder(comm).install()
        trace.uninstall()
        engine = build_engine(small_graph, grid, comm=comm)
        run_bfs(engine, 0)
        assert trace.events == []

    def test_empty_trace(self, small_graph):
        comm = build_communicator(GridShape(2, 2))
        trace = TraceRecorder(comm)
        assert trace.busiest_pair() is None

    def test_csv_export(self, small_graph, tmp_path):
        _comm, trace = self._run_traced(small_graph)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(trace.events)
        assert set(rows[0]) == {
            "time", "src", "dst", "num_vertices",
            "raw_bytes", "encoded_bytes", "phase",
        }

    def test_json_export(self, small_graph, tmp_path):
        _comm, trace = self._run_traced(small_graph)
        path = tmp_path / "trace.json"
        trace.to_json(path)
        data = json.loads(path.read_text())
        assert len(data) == len(trace.events)
        assert data[0]["phase"] in ("expand", "fold")


class TestExport:
    def _results(self):
        config = ExperimentConfig(
            name="export-test",
            graph=GraphSpec(n=150, k=5, seed=1),
            grid=GridShape(2, 2),
            num_searches=1,
        )
        return [run_experiment(config)]

    def test_rows(self):
        rows = results_to_rows(self._results())
        assert rows[0]["name"] == "export-test"
        assert rows[0]["mean_time_s"] > 0

    def test_csv(self, tmp_path):
        path = tmp_path / "results.csv"
        write_csv(self._results(), path)
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        assert float(rows[0]["mean_time_s"]) > 0

    def test_json(self, tmp_path):
        path = tmp_path / "results.json"
        write_json(self._results(), path)
        data = json.loads(path.read_text())
        assert data[0]["layout"] == "2d"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "empty.csv")
