"""Tests for the communication sieve (cross-level fold deduplication).

The sieve keeps a sender-side shadow of each fold destination's visited
set and drops candidates the shadow already marks.  Shadows are sound
subsets of the true visited sets, so the sieve may only remove
guaranteed-duplicates: every sieved run must reproduce the unsieved
levels byte for byte while measurably shrinking fold traffic, on both
the simulator (1D and 2D) and the SPMD backend — with identical sieved
counts across backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import (
    predicted_level_traffic_bytes,
    predicted_sieved_level_traffic_bytes,
)
from repro.api import build_engine, distributed_bfs
from repro.backends.spmd import spmd_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.sieve import PooledSieve
from repro.errors import CommunicationError, ConfigurationError
from repro.faults import FaultSpec
from repro.graph.generators import build_graph
from repro.machine.bluegene import BLUEGENE_L
from repro.observability.digest import stats_digest
from repro.types import SYSTEM_PRESETS, GraphSpec, GridShape, SystemSpec

SPEC = GraphSpec(n=1_500, k=8.0, seed=11)


@pytest.fixture(scope="module")
def graph():
    return build_graph(SPEC)


def _pair(graph, grid, *, layout="2d", wire="raw", opts=None):
    off = distributed_bfs(
        graph, grid, 0, opts=opts, system=SystemSpec(layout=layout, wire=wire)
    )
    on = distributed_bfs(
        graph, grid, 0, opts=opts,
        system=SystemSpec(layout=layout, wire=wire, sieve=True),
    )
    return off, on


class TestLevelsIdentity:
    @pytest.mark.parametrize("wire", ["raw", "bitmap", "adaptive"])
    @pytest.mark.parametrize(
        "grid,layout", [((4, 4), "2d"), ((1, 8), "1d")]
    )
    def test_sieved_levels_match_unsieved(self, graph, grid, layout, wire):
        off, on = _pair(graph, grid, layout=layout, wire=wire)
        assert np.array_equal(off.levels, on.levels)
        assert off.num_levels == on.num_levels
        frontier = [s.frontier_size for s in off.stats.levels]
        assert [s.frontier_size for s in on.stats.levels] == frontier

    def test_hybrid_direction_composes(self, graph):
        opts = BfsOptions(direction="hybrid")
        off, on = _pair(graph, (4, 4), opts=opts)
        assert np.array_equal(off.levels, on.levels)
        assert on.stats.total_sieved > 0

    def test_spmd_levels_match_simulator(self, graph):
        sim = distributed_bfs(graph, (2, 2), 0, system=SystemSpec(sieve=True))
        spmd = spmd_bfs(graph, (2, 2), 0, opts=BfsOptions(use_sieve=True))
        assert np.array_equal(sim.levels, spmd)


class TestTrafficReduction:
    def test_sieve_fires_and_cuts_fold_bytes(self, graph):
        off, on = _pair(graph, (4, 4))
        assert on.stats.total_sieved > 0
        assert (
            on.stats.encoded_bytes_by_phase["fold"]
            < off.stats.encoded_bytes_by_phase["fold"]
        )
        # the summary broadcasts are accounted under their own phase
        assert on.stats.encoded_bytes_by_phase["sieve"] > 0
        assert "sieve" not in off.stats.encoded_bytes_by_phase

    def test_per_level_sieved_sums_to_total(self, graph):
        _, on = _pair(graph, (4, 4))
        assert sum(on.stats.sieved_per_level()) == on.stats.total_sieved

    def test_stats_digest_tracks_sieving(self, graph):
        off, on = _pair(graph, (4, 4))
        # sieve-off runs hash exactly as before (no sieve block), and a
        # run that sieved anything must not collide with it
        assert on.stats.total_sieved > 0
        assert stats_digest(on.stats) != stats_digest(off.stats)


class TestBackendParity:
    @pytest.mark.parametrize("wire", ["raw", "adaptive"])
    def test_sieved_counts_match_simulator(self, graph, wire):
        sim = distributed_bfs(
            graph, (2, 2), 0, system=SystemSpec(wire=wire, sieve=True)
        )
        levels, sieved = spmd_bfs(
            graph, (2, 2), 0, opts=BfsOptions(use_sieve=True), wire=wire,
            return_sieved=True,
        )
        assert np.array_equal(sim.levels, levels)
        assert sieved == sim.stats.total_sieved > 0

    def test_single_rank_sieves_nothing(self, graph):
        levels, sieved = spmd_bfs(
            graph, (1, 1), 0, opts=BfsOptions(use_sieve=True),
            return_sieved=True,
        )
        assert sieved == 0
        sim = distributed_bfs(graph, (1, 1), 0, system=SystemSpec(sieve=True))
        assert sim.stats.total_sieved == 0
        assert np.array_equal(sim.levels, levels)


class TestFaultComposition:
    """Sieve × faults: shadows checkpoint/roll back with everything else."""

    #: heavy enough to force rollbacks, recoverable enough to converge
    HEAVY = FaultSpec(seed=0, drop_rate=0.3, max_retries=3)

    @pytest.mark.parametrize(
        "grid,layout", [((4, 4), "2d"), ((1, 8), "1d")]
    )
    @pytest.mark.parametrize("faults", [HEAVY, "crash-spare", "crash-harsh"])
    def test_faulted_sieved_levels_match_fault_free(
        self, graph, grid, layout, faults
    ):
        clean = distributed_bfs(
            graph, grid, 0, system=SystemSpec(layout=layout, sieve=True)
        )
        faulted = distributed_bfs(
            graph, grid, 0,
            system=SystemSpec(layout=layout, sieve=True, faults=faults),
        )
        assert np.array_equal(clean.levels, faulted.levels)
        assert faulted.stats.total_sieved > 0

    def test_rollbacks_fire_and_sieved_counts_deterministic(self, graph):
        def run():
            r = distributed_bfs(
                graph, (4, 4), 0,
                system=SystemSpec(layout="2d", sieve=True, faults=self.HEAVY),
            )
            return r.stats.total_sieved, r.faults.rollbacks, r.levels.tobytes()

        sieved, rollbacks, _ = run()
        assert rollbacks > 0
        # replayed attempts re-count their sieved candidates (run totals
        # survive abort_level), so the faulted tally exceeds fault-free
        clean = distributed_bfs(
            graph, (4, 4), 0, system=SystemSpec(layout="2d", sieve=True)
        )
        assert sieved > clean.stats.total_sieved
        assert run() == (sieved, rollbacks, clean.levels.tobytes())

    def test_spmd_parity_under_faults(self, graph):
        # expand filters change the droppable message set, so parity
        # comparisons pin use_expand_filter=False (the SPMD convention)
        opts = BfsOptions(use_sieve=True, use_expand_filter=False)
        spec = FaultSpec(seed=0, drop_rate=0.18, max_retries=1)
        sim = distributed_bfs(
            graph, (2, 2), 0, opts=opts,
            system=SystemSpec(sieve=True, faults=spec),
        )
        levels, report, sieved = spmd_bfs(
            graph, (2, 2), 0, opts=opts, faults=spec,
            return_report=True, return_sieved=True,
        )
        assert np.array_equal(sim.levels, levels)
        assert sieved == sim.stats.total_sieved > 0
        assert report.rollbacks == sim.faults.rollbacks > 0
        assert report.injected == sim.faults.injected


class TestRejections:
    @pytest.mark.parametrize("fold", ["ring", "two-phase"])
    def test_non_csr_fold_rejected(self, graph, fold):
        opts = BfsOptions(use_sieve=True, fold_collective=fold)
        with pytest.raises(ConfigurationError, match="union-ring"):
            build_engine(graph, (2, 2), opts=opts)
        with pytest.raises(CommunicationError, match="union-ring"):
            spmd_bfs(graph, (2, 2), 0, opts=opts)

    def test_system_spec_validates_sieve(self):
        with pytest.raises(Exception, match="sieve must be a bool"):
            SystemSpec(sieve="yes")


class TestConfiguration:
    def test_preset_enables_sieve(self, graph):
        assert SYSTEM_PRESETS["bluegene-2d-sieve"].sieve is True
        result = distributed_bfs(graph, (2, 2), 0, system="bluegene-2d-sieve")
        assert result.stats.total_sieved > 0

    def test_cli_flag_enables_sieve(self, capsys):
        from repro.cli import main

        assert main([
            "bfs", "--n", "400", "--k", "6", "--seed", "3",
            "--grid", "2x2", "--sieve",
        ]) == 0
        assert capsys.readouterr().out


class TestPooledSieveUnit:
    def _sieve(self):
        # two fold groups of two ranks over a 4-rank machine, 10 vertices
        return PooledSieve(
            [[0, 1], [2, 3]], np.array([3, 2, 3, 2], dtype=np.int64), 10
        )

    def test_keep_mask_defaults_open(self):
        sieve = self._sieve()
        senders = np.array([0, 1, 2], dtype=np.int64)
        flat = np.array([5, 0, 9], dtype=np.int64)
        assert sieve.keep_mask(senders, flat).all()

    def test_observe_marks_peers_not_self(self):
        sieve = self._sieve()
        fresh = np.array([4], dtype=np.int64)  # rank 1's fresh vertex
        bounds = np.array([0, 0, 1, 1, 1], dtype=np.int64)
        marks = sieve.observe_segmented(fresh, bounds)
        # only rank 0 (rank 1's sole fold peer) gains a shadow mark
        assert marks.tolist() == [1, 0, 0, 0]
        assert not sieve.keep_mask(
            np.array([0], dtype=np.int64), np.array([4], dtype=np.int64)
        ).any()
        assert sieve.keep_mask(
            np.array([1, 2, 3], dtype=np.int64),
            np.array([4, 4, 4], dtype=np.int64),
        ).all()

    def test_summary_messages_skip_idle_ranks(self):
        sieve = self._sieve()
        src, dst, nbytes = sieve.summary_messages(
            np.array([2, 0, 0, 1], dtype=np.int64)
        )
        assert src.tolist() == [0, 3]
        assert dst.tolist() == [1, 2]
        # header word plus the sender's span bitmap
        assert nbytes.tolist() == [8 + (3 + 7) // 8, 8 + (2 + 7) // 8]
        empty = sieve.summary_messages(np.zeros(4, dtype=np.int64))
        assert all(a.size == 0 for a in empty)

    def test_snapshot_restore_round_trip(self):
        sieve = self._sieve()
        fresh = np.array([1], dtype=np.int64)
        bounds = np.array([0, 1, 1, 1, 1], dtype=np.int64)
        clean = sieve.snapshot()
        sieve.observe_segmented(fresh, bounds)
        marked = sieve.snapshot()
        sieve.restore(clean)
        assert sieve.keep_mask(
            np.array([1], dtype=np.int64), np.array([1], dtype=np.int64)
        ).all()
        sieve.restore(marked)
        assert not sieve.keep_mask(
            np.array([1], dtype=np.int64), np.array([1], dtype=np.int64)
        ).any()
        sieve.reset()
        assert sieve.keep_mask(
            np.array([1], dtype=np.int64), np.array([1], dtype=np.int64)
        ).all()

    def test_checkpoint_cost_is_per_rank_bitmap(self):
        sieve = self._sieve()
        # each rank shadows its peers' spans: rank 0 shadows rank 1's 2
        # vertices, rank 1 shadows rank 0's 3, and so on
        assert sieve.checkpoint_nbytes().tolist() == [
            (2 + 7) // 8, (3 + 7) // 8, (2 + 7) // 8, (3 + 7) // 8,
        ]


class TestBoundsModel:
    def test_sieved_prediction_below_unsieved_fold(self):
        model = BLUEGENE_L
        grid = GridShape(8, 8)
        base = predicted_level_traffic_bytes(20_000, 8.0, grid, model, "raw")
        sieved = predicted_sieved_level_traffic_bytes(
            20_000, 8.0, grid, model, "raw", visited_fraction=0.5
        )
        free = predicted_sieved_level_traffic_bytes(
            20_000, 8.0, grid, model, "raw", visited_fraction=0.0
        )
        # summaries are pure overhead at visited_fraction=0...
        assert free > base
        # ...but a dense mid-search level more than pays for them
        assert sieved < base

    def test_visited_fraction_validated(self):
        model = BLUEGENE_L
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError, match="visited_fraction"):
                predicted_sieved_level_traffic_bytes(
                    1_000, 8.0, GridShape(4, 4), model,
                    visited_fraction=bad,
                )
