"""Tests for repro.graph.csr."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.csr import CsrGraph
from repro.types import VERTEX_DTYPE


def edges_strategy(n: int):
    """Random (m, 2) edge arrays over n vertices (may include loops/dups)."""
    return st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=60
    ).map(lambda pairs: np.array(pairs, dtype=VERTEX_DTYPE).reshape(-1, 2))


class TestConstruction:
    def test_from_edges_symmetric(self):
        g = CsrGraph.from_edges(4, np.array([[0, 1], [1, 2]]))
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == [0, 2]
        assert g.neighbors(2).tolist() == [1]
        assert g.neighbors(3).tolist() == []

    def test_self_loops_dropped(self):
        g = CsrGraph.from_edges(3, np.array([[0, 0], [0, 1]]))
        assert g.num_edges == 1

    def test_duplicate_edges_dropped(self):
        g = CsrGraph.from_edges(3, np.array([[0, 1], [1, 0], [0, 1]]))
        assert g.num_edges == 1

    def test_empty(self):
        g = CsrGraph.empty(5)
        assert g.n == 5
        assert g.num_edges == 0
        assert g.average_degree == 0

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CsrGraph.from_edges(3, np.array([[0, 3]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            CsrGraph.from_edges(3, np.array([0, 1, 2]))

    def test_inconsistent_indptr_rejected(self):
        with pytest.raises(ValueError):
            CsrGraph(2, np.array([0, 1, 0]), np.array([1, 0]))

    def test_no_edges_input(self):
        g = CsrGraph.from_edges(4, np.empty((0, 2)))
        assert g.num_edges == 0


class TestQueries:
    def test_degree_array_and_scalar(self, path_graph):
        degrees = path_graph.degree()
        assert degrees.tolist() == [1] + [2] * 8 + [1]
        assert path_graph.degree(0) == 1
        assert path_graph.degree(5) == 2

    def test_degree_out_of_range(self, path_graph):
        with pytest.raises(IndexError):
            path_graph.degree(10)

    def test_average_degree(self, star_graph):
        assert star_graph.average_degree == pytest.approx(18 / 10)

    def test_neighbors_view_readonly(self, path_graph):
        view = path_graph.neighbors(5)
        with pytest.raises(ValueError):
            view[0] = 99

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(3, 4)
        assert not path_graph.has_edge(3, 5)

    def test_edge_array_roundtrip(self, small_graph):
        rebuilt = CsrGraph.from_edges(small_graph.n, small_graph.edge_array())
        assert np.array_equal(rebuilt.indptr, small_graph.indptr)
        assert np.array_equal(rebuilt.indices, small_graph.indices)

    def test_num_edges_consistent(self, small_graph):
        assert small_graph.num_directed_edges == 2 * small_graph.num_edges


class TestNeighborsOfSet:
    def test_star_center(self, star_graph):
        neigh = star_graph.neighbors_of_set(np.array([0]))
        assert sorted(neigh.tolist()) == list(range(1, 10))

    def test_duplicates_preserved(self, star_graph):
        # Two leaves both report the centre: duplicates are the caller's job.
        neigh = star_graph.neighbors_of_set(np.array([1, 2]))
        assert neigh.tolist() == [0, 0]

    def test_empty_frontier(self, star_graph):
        assert star_graph.neighbors_of_set(np.array([], dtype=VERTEX_DTYPE)).size == 0

    def test_isolated_vertices(self):
        g = CsrGraph.empty(4)
        assert g.neighbors_of_set(np.array([0, 1, 2, 3])).size == 0

    def test_matches_per_vertex_concat(self, small_graph):
        frontier = np.array([3, 17, 101, 250])
        expected = np.concatenate([small_graph.neighbors(int(v)) for v in frontier])
        got = small_graph.neighbors_of_set(frontier)
        assert np.array_equal(got, expected)

    @given(edges_strategy(12), st.lists(st.integers(0, 11), min_size=1, max_size=12))
    def test_property_matches_loop(self, edges, frontier):
        g = CsrGraph.from_edges(12, edges)
        frontier_arr = np.array(sorted(set(frontier)), dtype=VERTEX_DTYPE)
        expected = (
            np.concatenate([g.neighbors(int(v)) for v in frontier_arr])
            if frontier_arr.size
            else np.empty(0, dtype=VERTEX_DTYPE)
        )
        assert np.array_equal(g.neighbors_of_set(frontier_arr), expected)


class TestSymmetryInvariant:
    @given(edges_strategy(10))
    def test_adjacency_symmetric(self, edges):
        g = CsrGraph.from_edges(10, edges)
        for u in range(10):
            for v in g.neighbors(u):
                assert g.has_edge(int(v), u)

    @given(edges_strategy(10))
    def test_rows_sorted_no_dups_no_loops(self, edges):
        g = CsrGraph.from_edges(10, edges)
        for u in range(10):
            row = g.neighbors(u)
            assert np.all(np.diff(row) > 0)  # strictly increasing
            assert u not in row.tolist()
