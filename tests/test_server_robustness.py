"""Protocol robustness: hostile clients must never take `serve_tcp` down.

Malformed JSON, unknown ops, oversized lines, truncated frames, and
mid-query disconnects all hit a live TCP server here; after each abuse
the server must still answer a well-formed query on a fresh connection.
A hypothesis fuzz pass hammers :func:`decode_request` directly — the only
exception it may ever raise is :class:`ProtocolError`.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server import BfsService, TcpQueryClient, serve_tcp
from repro.server.protocol import ProtocolError, decode_request
from repro.session import BfsSession


async def _raw_exchange(port: int, payload: bytes, *, read_reply: bool = True):
    """Open a socket, ship raw bytes, optionally read one reply line."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        if read_reply:
            return await asyncio.wait_for(reader.readline(), timeout=10)
        return b""
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _serve(small_graph, scenario):
    """Boot a service + TCP server, run ``scenario(port)``, tear down."""

    async def runner():
        session = BfsSession(small_graph, (2, 2))
        service = BfsService(session)
        server = await serve_tcp(service, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await scenario(port)
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    return asyncio.run(runner())


async def _server_still_answers(port: int) -> None:
    async with TcpQueryClient("127.0.0.1", port) as client:
        reply = await client.query(0)
        assert reply.ok, f"server broken after abuse: {reply}"


class TestTcpRobustness:
    @pytest.mark.parametrize(
        "line",
        [
            b"not json at all\n",
            b"[1, 2, 3]\n",
            b'{"op": "detonate"}\n',
            b'{"op": "query"}\n',
            b'{"op": "query", "source": "NaN"}\n',
            b'\xff\xfe garbage bytes \x00\n',
        ],
    )
    def test_malformed_lines_get_error_replies(self, small_graph, line):
        async def scenario(port):
            raw = await _raw_exchange(port, line)
            reply = json.loads(raw)
            assert reply["ok"] is False
            await _server_still_answers(port)

        _serve(small_graph, scenario)

    def test_oversized_line_is_refused_not_fatal(self, small_graph):
        # beyond the StreamReader's 64 KiB default limit: the server
        # answers with a protocol error and hangs up, then keeps serving
        async def scenario(port):
            blob = b'{"op": "query", "source": ' + b"1" * 100_000 + b"}\n"
            raw = await _raw_exchange(port, blob)
            reply = json.loads(raw)
            assert reply["ok"] is False
            assert reply["error_code"] == "protocol"
            await _server_still_answers(port)

        _serve(small_graph, scenario)

    def test_truncated_frame_then_disconnect(self, small_graph):
        async def scenario(port):
            # no trailing newline: the line never completes, the client
            # vanishes, and the handler must just clean up
            await _raw_exchange(
                port, b'{"op": "query", "sour', read_reply=False
            )
            await _server_still_answers(port)

        _serve(small_graph, scenario)

    def test_disconnect_with_query_in_flight(self, small_graph):
        async def scenario(port):
            # ship a valid query and slam the connection before the
            # reply: the write path must swallow the broken pipe
            await _raw_exchange(
                port, b'{"op": "query", "source": 0}\n', read_reply=False
            )
            await asyncio.sleep(0.2)  # let the traversal finish and reply fail
            await _server_still_answers(port)

        _serve(small_graph, scenario)

    def test_many_bad_lines_one_connection(self, small_graph):
        async def scenario(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                for _ in range(20):
                    writer.write(b"junk\n")
                await writer.drain()
                for _ in range(20):
                    reply = json.loads(await reader.readline())
                    assert reply["ok"] is False
                writer.write(b'{"op": "ping"}\n')
                await writer.drain()
                assert json.loads(await reader.readline())["ok"] is True
            finally:
                writer.close()
                await writer.wait_closed()
            await _server_still_answers(port)

        _serve(small_graph, scenario)


class TestDecodeRequestFuzz:
    """decode_request must raise ProtocolError or return — never crash."""

    def _probe(self, line: str) -> None:
        try:
            payload = decode_request(line)
        except ProtocolError:
            return
        assert isinstance(payload, dict)
        assert payload["op"] in ("query", "stats", "ping", "health")
        if payload["op"] == "query":
            assert isinstance(payload["source"], int)

    def test_fuzz_arbitrary_text(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import strategies as st

        @hypothesis.given(st.text(max_size=200))
        @hypothesis.settings(max_examples=300, deadline=None)
        def run(line):
            self._probe(line)

        run()

    def test_fuzz_json_objects(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import strategies as st

        scalars = st.one_of(
            st.none(), st.booleans(), st.integers(), st.floats(),
            st.text(max_size=30),
        )
        objects = st.dictionaries(
            st.sampled_from(
                ["op", "source", "target", "id", "deadline_ms", "x"]
            ),
            st.one_of(scalars, st.lists(scalars, max_size=3)),
            max_size=6,
        )

        @hypothesis.given(objects)
        @hypothesis.settings(max_examples=300, deadline=None)
        def run(obj):
            self._probe(json.dumps(obj))

        run()
