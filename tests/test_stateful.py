"""Stateful property tests (hypothesis RuleBasedStateMachine) for the
mutable runtime structures: message buffers, sent caches, simulated clocks.
Each machine mirrors the real structure against a trivial Python model and
asserts they never diverge under arbitrary operation sequences.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import BufferOverflowError
from repro.bfs.sent_cache import SentCache
from repro.partition.indexing import VertexIndexMap
from repro.runtime.clock import SimClock
from repro.runtime.message import MessageBuffer

CAPACITY = 16
UNIVERSE = list(range(0, 100, 7))


class MessageBufferMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.buffer = MessageBuffer(CAPACITY)
        self.model: list[int] = []

    @rule(vertices=st.lists(st.integers(0, 1000), max_size=8))
    def append(self, vertices):
        arr = np.array(vertices, dtype=np.int64)
        if arr.size == 0:
            return
        if arr.size > self.buffer.remaining:
            try:
                self.buffer.append(arr)
            except BufferOverflowError:
                return
            raise AssertionError("overflow not raised")
        self.buffer.append(arr)
        self.model.extend(vertices)

    @rule()
    def drain(self):
        assert self.buffer.drain().tolist() == self.model
        self.model = []

    @invariant()
    def lengths_agree(self):
        assert len(self.buffer) == len(self.model)
        assert self.buffer.remaining == CAPACITY - len(self.model)


class SentCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = SentCache(VertexIndexMap(UNIVERSE))
        self.model: set[int] = set()

    @rule(vertices=st.lists(st.sampled_from(UNIVERSE), max_size=6, unique=True))
    def filter_unsent(self, vertices):
        arr = np.array(sorted(vertices), dtype=np.int64)
        fresh = self.cache.filter_unsent(arr)
        expected = sorted(set(vertices) - self.model)
        assert fresh.tolist() == expected
        self.model.update(vertices)

    @rule()
    def reset(self):
        self.cache.reset()
        self.model = set()

    @invariant()
    def counts_agree(self):
        assert self.cache.num_sent == len(self.model)


class SimClockMachine(RuleBasedStateMachine):
    RANKS = 4

    def __init__(self):
        super().__init__()
        self.clock = SimClock(self.RANKS)
        self.model = np.zeros(self.RANKS)
        self.model_comm = np.zeros(self.RANKS)
        self.model_compute = np.zeros(self.RANKS)

    @rule(
        rank=st.integers(0, RANKS - 1),
        seconds=st.floats(0, 10, allow_nan=False),
        kind=st.sampled_from(["comm", "compute"]),
    )
    def advance(self, rank, seconds, kind):
        self.clock.advance(rank, seconds, kind)
        self.model[rank] += seconds
        (self.model_comm if kind == "comm" else self.model_compute)[rank] += seconds

    @rule(ranks=st.lists(st.integers(0, RANKS - 1), min_size=1, max_size=4, unique=True))
    def sync(self, ranks):
        self.clock.sync(ranks)
        horizon = self.model[ranks].max()
        self.model_comm[ranks] += horizon - self.model[ranks]
        self.model[ranks] = horizon

    @invariant()
    def totals_agree(self):
        assert np.allclose(self.clock.time, self.model)
        assert np.allclose(self.clock.comm_time, self.model_comm)
        assert np.allclose(self.clock.compute_time, self.model_compute)
        # time decomposes exactly into comm + compute
        assert np.allclose(self.clock.time, self.clock.comm_time + self.clock.compute_time)


TestMessageBufferMachine = MessageBufferMachine.TestCase
TestSentCacheMachine = SentCacheMachine.TestCase
TestSimClockMachine = SimClockMachine.TestCase

for case in (TestMessageBufferMachine, TestSentCacheMachine, TestSimClockMachine):
    case.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)
