"""Smoke + shape tests for the per-figure data builders (small design points)."""

from __future__ import annotations

import pytest

from repro.harness import figures as F
from repro.types import GridShape


class TestSquareGrid:
    def test_perfect_square(self):
        assert F.square_grid(16) == GridShape(4, 4)

    def test_rectangular(self):
        assert F.square_grid(8) == GridShape(2, 4)

    def test_prime(self):
        assert F.square_grid(7) == GridShape(1, 7)


class TestFig4a:
    def test_weak_scaling_points(self):
        points = F.fig4a_weak_scaling([1, 4, 16], 200, 8, searches=1)
        assert [p.p for p in points] == [1, 4, 16]
        assert all(p.n == 200 * p.p for p in points)
        assert all(p.mean_time > 0 for p in points)

    def test_comm_small_relative_to_compute(self):
        """The paper's Figure 4.a observation: comm << compute."""
        points = F.fig4a_weak_scaling([16], 400, 10, searches=2)
        assert points[0].comm_time < points[0].compute_time


class TestFig4b:
    def test_volume_grows_with_path_length(self):
        series = F.fig4b_message_volume(3000, 8, 4, seed=1)
        distances = [d for d, _v in series]
        volumes = [v for _d, v in series]
        assert distances == sorted(distances)
        # volume at the farthest distance dwarfs the nearest
        assert volumes[-1] > 3 * volumes[0]


class TestFig4c:
    def test_bidirectional_wins(self):
        rows = F.fig4c_bidirectional([4, 16], 300, 10, searches=2)
        for _p, uni, bi in rows:
            assert bi < uni


class TestFig5:
    def test_strong_scaling_speedup(self):
        rows = F.fig5_strong_scaling(4000, 10, [1, 4, 16], searches=1)
        times = [t for _p, t in rows]
        assert times[1] < times[0]  # parallelism helps at small P


class TestTable1:
    def test_topology_rows(self):
        grids = [GridShape(2, 4), GridShape(4, 2), GridShape(8, 1), GridShape(1, 8)]
        rows = F.table1_topologies(150, 8, grids, searches=1)
        assert len(rows) == 4
        by_grid = {str(r.grid): r for r in rows}
        # 8x1: expand-only communication; 1x8: fold-only.
        assert by_grid["GridShape(rows=8, cols=1)"].fold_length == 0
        assert by_grid["GridShape(rows=1, cols=8)"].expand_length == 0

    def test_mixed_p_rejected(self):
        with pytest.raises(ValueError):
            F.table1_topologies(100, 8, [GridShape(2, 2), GridShape(2, 4)])


class TestFig6:
    def test_series_shapes(self):
        series = F.fig6_partition_volume(1200, 8, 4, seed=0)
        assert set(series) == {"1d", "2d"}
        assert series["1d"].sum() > 0 and series["2d"].sum() > 0

    def test_unreachable_target_exhausts(self):
        """With an unreachable target both searches run past the diameter."""
        series = F.fig6_partition_volume(1200, 8, 4, seed=0)
        assert len(series["2d"]) >= 3

    def test_crossover_bundle(self):
        out = F.fig6b_crossover(20_000, 16, seed=0)
        assert out["k"] > 1
        assert set(out["volumes"]) == {"1d", "2d"}


class TestFig7:
    def test_redundancy_rows(self):
        rows = F.fig7_redundancy([4, 16], 250, 10)
        assert [p for p, _ in rows] == [4, 16]
        for _p, ratio in rows:
            assert 0.0 <= ratio < 100.0

    def test_higher_degree_more_redundancy(self):
        low_k = F.fig7_redundancy([16], 250, 10)[0][1]
        high_k = F.fig7_redundancy([16], 50, 40)[0][1]
        assert high_k > low_k
