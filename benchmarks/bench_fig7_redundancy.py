"""Figure 7 — redundancy ratio of the union-fold on BlueGene/L.

Paper: (|V|=100000, k=10) and (|V|=10000, k=100) weak-scaling sweeps,
P from ~1k to ~10k.  The union-fold eliminates up to ~80% of vertices a
processor would otherwise receive; the high-degree graph shows the higher
ratio, and the ratio declines with P because ring forwarding inflates the
received volume.  Here: P in {9, 36, 144} with (|V|=500, k=10) and
(|V|=50, k=100), using the single-ring union-fold (the variant whose ring
grows with P, which is exactly the paper's explanation for the decline;
the two-phase variant's shorter rings appear in the collective ablation
benchmark).
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.bfs.options import BfsOptions
from repro.harness.figures import fig7_redundancy
from repro.harness.report import format_table

P_VALUES = [9, 36, 144]
UNION_OPTS = BfsOptions(fold_collective="union-ring")


def test_fig7_redundancy_ratio(once):
    def run_both():
        low = fig7_redundancy(P_VALUES, 500, 10.0, opts=UNION_OPTS)
        high = fig7_redundancy(P_VALUES, 50, 100.0, opts=UNION_OPTS)
        return low, high

    low, high = once(run_both)
    table = [
        [p, f"{lo:.1f}", f"{hi:.1f}"]
        for (p, lo), (_p, hi) in zip(low, high)
    ]
    emit(
        "Figure 7  union-fold redundancy ratio (%), ring reduce-scatter",
        format_table(["P", "|V|=500,k=10", "|V|=50,k=100"], table),
    )
    low_r = np.array([r for _p, r in low])
    high_r = np.array([r for _p, r in high])
    # Shape 1: the high-degree graph eliminates a larger share at every P.
    assert (high_r > low_r).all()
    # Shape 2: a substantial share of traffic is eliminated on the dense
    # design point (paper: up to ~80% at BG/L scale).
    assert high_r.max() > 20.0
    # Shape 3: the ratio declines as P grows (ring forwarding inflates the
    # denominator — the paper's own explanation); endpoint comparison to
    # tolerate small-instance noise.
    assert high_r[-1] < high_r[0]
    assert low_r[-1] < low_r[0]
