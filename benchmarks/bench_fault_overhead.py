"""Fault-injection overhead — graceful degradation under faults and crashes.

Sweeps the transient message-drop probability and the rank-crash presets
on a pinned 2D search and reports the simulated-time overhead relative to
the fault-free baseline.  Expected shape: overhead grows monotonically-ish
with the drop rate (more retries, occasionally a level rollback), crash
recovery costs checkpoint traffic plus one level replay per failover,
every faulted run still produces exactly the baseline's level labels, and
the zero-rate point is *free* — an empty schedule must not change the
simulated time at all.

Also runnable as a plain script (the fault-resilience baseline for CI):

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py --tiny --check

It writes ``BENCH_faults.json`` (repo root).  Because every quantity in
the report is *simulated* (no wall clock), ``--check`` demands an exact
match against the committed baseline — any drift is a determinism bug or
an intentional cost-model change (refresh with ``--update-baseline``).
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from conftest import emit  # noqa: E402
from repro.faults import FAULT_PRESETS, FaultSpec  # noqa: E402
from repro.graph.generators import poisson_random_graph  # noqa: E402
from repro.harness.fault_sweep import fault_sweep, format_fault_sweep  # noqa: E402
from repro.types import GraphSpec, GridShape  # noqa: E402

GRID = GridShape(4, 4)
SPEC = GraphSpec(n=8_000, k=10, seed=3)

DROP_RATES = [0.0, 0.01, 0.02, 0.05, 0.10]

#: the named crash workloads, pinned to a seed that recovers on GRID
CRASH_PRESETS = ("crash-spare", "crash-shrink", "crash-harsh")


def _crash_specs(seed: int = 0) -> list[FaultSpec]:
    return [replace(FAULT_PRESETS[name], seed=seed) for name in CRASH_PRESETS]


def test_fault_overhead(once):
    def run_all():
        graph = poisson_random_graph(SPEC)
        specs = [
            FaultSpec(seed=11, drop_rate=rate, max_retries=4) for rate in DROP_RATES
        ]
        return fault_sweep(graph, GRID, 0, specs)

    points = once(run_all)
    emit(
        "Fault overhead  drop-rate sweep (n=8000, k=10, 4x4 mesh)",
        format_fault_sweep(points),
    )
    # Recovery is mandatory: every faulted run matches the baseline levels.
    assert all(p.levels_match for p in points)
    # An inactive schedule costs nothing.
    assert points[0].overhead_seconds == 0.0
    assert points[0].report.injected == 0
    # Faults cost simulated time, and the harshest point costs the most.
    assert all(p.overhead_seconds > 0 for p in points[1:])
    assert points[-1].overhead_seconds == max(p.overhead_seconds for p in points)
    # The paper's resilience story: overhead stays graceful, not catastrophic.
    assert points[-1].overhead_ratio < 2.0


def test_straggler_overhead(once):
    def run_all():
        graph = poisson_random_graph(SPEC)
        specs = [
            FaultSpec(seed=5, straggler_rate=0.25, straggler_slowdown=slow)
            for slow in (1.5, 3.0)
        ]
        return fault_sweep(graph, GRID, 0, specs)

    mild, harsh = once(run_all)
    emit(
        "Fault overhead  stragglers (25% of ranks slowed)",
        format_fault_sweep([mild, harsh]),
    )
    assert mild.levels_match and harsh.levels_match
    # A slower straggler stretches the level barrier further.
    assert harsh.overhead_seconds > mild.overhead_seconds > 0


def test_crash_recovery_overhead(once):
    def run_all():
        graph = poisson_random_graph(SPEC)
        return fault_sweep(graph, GRID, 0, _crash_specs())

    points = once(run_all)
    emit(
        "Fault overhead  rank crashes (buddy checkpoint + failover, 4x4 mesh)",
        format_fault_sweep(points),
    )
    for point in points:
        report = point.report
        # Recovery is mandatory and observable: crashes fired, every one
        # failed over, the lost levels were replayed, and the answer is
        # still byte-identical to the fault-free baseline.
        assert point.levels_match
        assert report.crashes > 0
        assert report.failovers == report.crashes
        assert report.replayed_levels > 0
        assert report.checkpoint_bytes > 0
        assert point.overhead_seconds > 0
    # The combined workload (drops + stragglers + more crashes) costs the
    # most, but degradation stays graceful even there.
    by_name = dict(zip(CRASH_PRESETS, points))
    assert by_name["crash-harsh"].overhead_seconds == max(
        p.overhead_seconds for p in points
    )
    assert all(p.overhead_ratio < 8.0 for p in points)


# --------------------------------------------------------------------- #
# script mode: the exact-match resilience baseline (BENCH_faults.json)
# --------------------------------------------------------------------- #

TINY_SPEC = GraphSpec(n=2_000, k=8.0, seed=3)


def _rows(tiny: bool) -> list[dict]:
    graph_spec = TINY_SPEC if tiny else SPEC
    graph = poisson_random_graph(graph_spec)
    drop_specs = [
        FaultSpec(seed=11, drop_rate=rate, max_retries=4) for rate in DROP_RATES
    ]
    names = [f"drop={rate}" for rate in DROP_RATES] + list(CRASH_PRESETS)
    points = fault_sweep(graph, GRID, 0, drop_specs + _crash_specs())
    rows = []
    for name, point in zip(names, points):
        report = point.report
        rows.append({
            "scenario": name,
            "drop_rate": point.spec.drop_rate,
            "crash_rate": point.spec.crash_rate,
            "baseline_s": point.baseline.elapsed.hex(),
            "faulted_s": point.result.elapsed.hex(),
            "injected": report.injected,
            "retries": report.retries,
            "rollbacks": report.rollbacks,
            "crashes": report.crashes,
            "spare_failovers": report.spare_failovers,
            "shrink_failovers": report.shrink_failovers,
            "replayed_levels": report.replayed_levels,
            "checkpoint_bytes": report.checkpoint_bytes,
            "levels_match": point.levels_match,
        })
        print(
            f"  {name:>12}  overhead={100 * point.overhead_ratio:7.2f}%  "
            f"rollbacks={report.rollbacks}  crashes={report.crashes}  "
            f"replays={report.replayed_levels}  "
            f"match={'yes' if point.levels_match else 'NO'}"
        )
    return rows


def _check(report: dict, baseline_path: Path) -> int:
    import json

    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update-baseline first")
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    key = "tiny" if report["tiny"] else "full"
    expected = baseline.get(key)
    if expected is None:
        print(f"baseline has no {key!r} section; run with --update-baseline")
        return 2
    if expected != report["results"]:
        print("fault-resilience report DIVERGED from the committed baseline:")
        have = {row["scenario"]: row for row in report["results"]}
        for row in expected:
            got = have.get(row["scenario"])
            if got != row:
                print(f"  {row['scenario']}: expected {row}")
                print(f"  {' ' * len(row['scenario'])}  got      {got}")
        return 1
    print("fault-resilience report matches the committed baseline exactly")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke size (n=2k) instead of n=8k")
    parser.add_argument("--check", action="store_true",
                        help="require an exact match with the committed baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="merge this run's section into the baseline file")
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_faults.json")
    args = parser.parse_args(argv)

    size = "tiny" if args.tiny else "full"
    print(f"fault-resilience sweep ({size}: drops {DROP_RATES} + {list(CRASH_PRESETS)})")
    report = {"tiny": args.tiny, "results": _rows(args.tiny)}

    if not all(row["levels_match"] for row in report["results"]):
        print("FATAL: a faulted run diverged from the fault-free levels")
        return 1
    if args.update_baseline:
        merged = (
            json.loads(args.baseline.read_text(encoding="utf-8"))
            if args.baseline.exists() else {}
        )
        merged[size] = report["results"]
        args.baseline.write_text(json.dumps(merged, indent=1), encoding="utf-8")
        print(f"baseline section {size!r} written to {args.baseline}")
        return 0
    if args.check:
        return _check(report, args.baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
