"""Fault-injection overhead — graceful degradation under transient faults.

Sweeps the transient message-drop probability on a pinned 2D search and
reports the simulated-time overhead relative to the fault-free baseline.
Expected shape: overhead grows monotonically-ish with the drop rate (more
retries, occasionally a level rollback), every faulted run still produces
exactly the baseline's level labels, and the zero-rate point is *free* —
an empty schedule must not change the simulated time at all.
"""

from __future__ import annotations

from conftest import emit
from repro.faults import FaultSpec
from repro.graph.generators import poisson_random_graph
from repro.harness.fault_sweep import fault_sweep, format_fault_sweep
from repro.types import GraphSpec, GridShape

GRID = GridShape(4, 4)
SPEC = GraphSpec(n=8_000, k=10, seed=3)

DROP_RATES = [0.0, 0.01, 0.02, 0.05, 0.10]


def test_fault_overhead(once):
    def run_all():
        graph = poisson_random_graph(SPEC)
        specs = [
            FaultSpec(seed=11, drop_rate=rate, max_retries=4) for rate in DROP_RATES
        ]
        return fault_sweep(graph, GRID, 0, specs)

    points = once(run_all)
    emit(
        "Fault overhead  drop-rate sweep (n=8000, k=10, 4x4 mesh)",
        format_fault_sweep(points),
    )
    # Recovery is mandatory: every faulted run matches the baseline levels.
    assert all(p.levels_match for p in points)
    # An inactive schedule costs nothing.
    assert points[0].overhead_seconds == 0.0
    assert points[0].report.injected == 0
    # Faults cost simulated time, and the harshest point costs the most.
    assert all(p.overhead_seconds > 0 for p in points[1:])
    assert points[-1].overhead_seconds == max(p.overhead_seconds for p in points)
    # The paper's resilience story: overhead stays graceful, not catastrophic.
    assert points[-1].overhead_ratio < 2.0


def test_straggler_overhead(once):
    def run_all():
        graph = poisson_random_graph(SPEC)
        specs = [
            FaultSpec(seed=5, straggler_rate=0.25, straggler_slowdown=slow)
            for slow in (1.5, 3.0)
        ]
        return fault_sweep(graph, GRID, 0, specs)

    mild, harsh = once(run_all)
    emit(
        "Fault overhead  stragglers (25% of ranks slowed)",
        format_fault_sweep([mild, harsh]),
    )
    assert mild.levels_match and harsh.levels_match
    # A slower straggler stretches the level barrier further.
    assert harsh.overhead_seconds > mild.overhead_seconds > 0
