"""Platform comparison — simulated BlueGene/L torus vs MCR-style flat cluster.

The paper ran comparative experiments on MCR (a Quadrics Linux cluster) as
the conventional platform.  We compare the same search on both machine
models: MCR's faster per-element compute must show in the compute share,
while both must return identical levels (the model only affects time).
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.graph.generators import poisson_random_graph
from repro.harness.figures import PAPER_OPTS
from repro.harness.report import format_table
from repro.types import GraphSpec, GridShape

GRID = GridShape(6, 6)
SPEC = GraphSpec(n=14_400, k=10, seed=12)


def test_bluegene_vs_mcr(once):
    def run_both():
        graph = poisson_random_graph(SPEC)
        return {
            machine: run_bfs(build_engine(graph, GRID, opts=PAPER_OPTS, machine=machine), 0)
            for machine in ("bluegene", "mcr")
        }

    results = once(run_both)
    rows = [
        [name, f"{r.elapsed:.6f}", f"{r.comm_time:.6f}", f"{r.compute_time:.6f}"]
        for name, r in results.items()
    ]
    emit(
        "Platform comparison  (n=14400, k=10, 6x6 mesh)",
        format_table(["machine", "time(s)", "comm(s)", "compute(s)"], rows),
    )
    assert np.array_equal(results["bluegene"].levels, results["mcr"].levels)
    # MCR's cores are faster per element: its compute time must be lower.
    assert results["mcr"].compute_time < results["bluegene"].compute_time
    # Message traffic is identical on both (same algorithm, same graph).
    assert (
        results["mcr"].stats.total_messages == results["bluegene"].stats.total_messages
    )
