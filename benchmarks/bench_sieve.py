"""Communication sieve — fold wire bytes with and without the sieve.

Runs the reference Poisson workload across every wire codec with the
cross-level sieve off and on, and reports fold-phase encoded bytes, the
summary-broadcast overhead, and the number of candidates the sieve kept
off the wire.  Expected shape: levels are byte-identical in every pair
(the sieve only drops guaranteed-duplicates), and on the reference
n=20k/k=8 workload at 8x8 the sieve cuts measured fold traffic by at
least 25% under the raw, delta-varint, and adaptive codecs.  The bitmap
codec's fold messages are span-priced rather than vertex-priced, so its
reduction is real but smaller and carries no 25% bar — see
docs/PERFORMANCE.md for when the sieve beats codec-only compression.

Also runnable as a plain script (the sieve baseline for CI):

    PYTHONPATH=src python benchmarks/bench_sieve.py --tiny --check

It writes ``BENCH_sieve.json`` (repo root).  Byte counts are fully
deterministic, so ``--check`` fails when a scenario drifts by more than
``--tolerance`` (default 30%) against the committed baseline, and
*always* fails if a sieved run stops matching the unsieved levels or the
reference reduction drops below the 25% bar (refresh intentional
cost-model changes with ``--update-baseline``).  The reference gate rows
run even under ``--tiny``: they are the acceptance contract, not a
scaling study.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from conftest import emit  # noqa: E402
from repro.api import distributed_bfs  # noqa: E402
from repro.graph.generators import build_graph  # noqa: E402
from repro.observability.digest import levels_digest  # noqa: E402
from repro.types import GraphSpec, GridShape, SystemSpec  # noqa: E402

CODECS = ("raw", "delta-varint", "bitmap", "adaptive")

#: the acceptance workload: every gate below is evaluated on these rows
REFERENCE = ("reference", GraphSpec(n=20_000, k=8.0, seed=7), GridShape(8, 8))

#: (name, spec, grid) density sweep around the reference point
FULL = [
    ("sparse", GraphSpec(n=20_000, k=4.0, seed=7), GridShape(8, 8)),
    REFERENCE,
    ("dense", GraphSpec(n=20_000, k=16.0, seed=7), GridShape(8, 8)),
]
TINY = [
    ("smoke", GraphSpec(n=2_000, k=8.0, seed=7), GridShape(4, 4)),
    REFERENCE,
]

SOURCE = 0

#: the acceptance bar: sieve-on must cut fold encoded bytes by >= 25% on
#: the reference workload under these codecs (bitmap is span-priced, so
#: it only owes a strictly positive reduction)
REDUCTION_BAR = 0.25
BARRED_CODECS = ("raw", "delta-varint", "adaptive")


def _run(graph, grid: GridShape, wire: str, sieve: bool):
    return distributed_bfs(
        graph, grid, SOURCE, system=SystemSpec(wire=wire, sieve=sieve)
    )


def _measure(workloads: list) -> list[dict]:
    rows: list[dict] = []
    for name, spec, grid in workloads:
        graph = build_graph(spec)
        for wire in CODECS:
            off = _run(graph, grid, wire, sieve=False)
            on = _run(graph, grid, wire, sieve=True)
            fold_off = int(off.stats.encoded_bytes_by_phase.get("fold", 0))
            fold_on = int(on.stats.encoded_bytes_by_phase.get("fold", 0))
            frontier_off = [int(s.frontier_size) for s in off.stats.levels]
            frontier_on = [int(s.frontier_size) for s in on.stats.levels]
            rows.append({
                "scenario": f"{name}:{wire}",
                "workload": name,
                "wire": wire,
                "fold_bytes_off": fold_off,
                "fold_bytes_on": fold_on,
                "fold_reduction": (fold_off - fold_on) / max(1, fold_off),
                "sieve_summary_bytes": int(
                    on.stats.encoded_bytes_by_phase.get("sieve", 0)
                ),
                "sieved_vertices": int(on.stats.total_sieved),
                "num_levels": on.num_levels,
                "sim_s_off": off.elapsed.hex(),
                "sim_s_on": on.elapsed.hex(),
                "levels_match": bool(
                    levels_digest(on.levels) == levels_digest(off.levels)
                    and np.array_equal(on.levels, off.levels)
                ),
                "schedule_match": bool(
                    on.num_levels == off.num_levels
                    and frontier_on == frontier_off
                ),
            })
    return rows


def _print_rows(rows: list[dict]) -> None:
    for row in rows:
        print(
            f"  {row['scenario']:>24}  fold={row['fold_bytes_off']:>8} -> "
            f"{row['fold_bytes_on']:>8}  (-{100 * row['fold_reduction']:.1f}%)  "
            f"summaries={row['sieve_summary_bytes']:>7}  "
            f"sieved={row['sieved_vertices']:>6}  "
            f"match={'yes' if row['levels_match'] else 'NO'}"
        )


def _gate_failures(rows: list[dict]) -> list[str]:
    """The hard gates, independent of the baseline file."""
    failures = []
    for row in rows:
        if not row["levels_match"]:
            failures.append(f"{row['scenario']}: sieved levels diverged")
        if not row["schedule_match"]:
            failures.append(f"{row['scenario']}: level schedule diverged")
    gate = {r["wire"]: r for r in rows if r["workload"] == "reference"}
    for wire in BARRED_CODECS:
        reduction = gate[wire]["fold_reduction"]
        if reduction < REDUCTION_BAR:
            failures.append(
                f"reference:{wire}: fold reduction {100 * reduction:.1f}% "
                f"below the {100 * REDUCTION_BAR:.0f}% bar"
            )
    if gate["bitmap"]["fold_reduction"] <= 0.0:
        failures.append("reference:bitmap: sieve no longer reduces fold bytes")
    return failures


# --------------------------------------------------------------------- #
# pytest mode: the qualitative shape
# --------------------------------------------------------------------- #
def test_sieve_traffic(once):
    rows = once(_measure, TINY)
    emit(
        "Communication sieve  fold wire bytes (tiny + reference workloads)",
        "\n".join(
            f"{r['scenario']:>24}: {r['fold_bytes_off']} -> "
            f"{r['fold_bytes_on']} bytes ({r['sieved_vertices']} sieved)"
            for r in rows
        ),
    )
    # Correctness before economics: sieved runs reproduce the exact
    # unsieved level labels and level schedule under every codec.
    assert all(r["levels_match"] for r in rows)
    assert all(r["schedule_match"] for r in rows)
    # The sieve actually fired everywhere...
    assert all(r["sieved_vertices"] > 0 for r in rows)
    # ...and the reference gates hold.
    assert _gate_failures(rows) == []


# --------------------------------------------------------------------- #
# script mode: the regression baseline (BENCH_sieve.json)
# --------------------------------------------------------------------- #
def _check(report: dict, baseline_path: Path, tolerance: float) -> int:
    import json

    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update-baseline first")
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    key = "tiny" if report["tiny"] else "full"
    expected = baseline.get(key)
    if expected is None:
        print(f"baseline has no {key!r} section; run with --update-baseline")
        return 2
    want = {row["scenario"]: row for row in expected}
    failures = []
    for row in report["results"]:
        base = want.get(row["scenario"])
        if base is None:
            failures.append(f"{row['scenario']}: not in baseline")
            continue
        for field in ("fold_bytes_on", "sieve_summary_bytes"):
            got, exp = row[field], base[field]
            if exp and abs(got - exp) / exp > tolerance:
                failures.append(
                    f"{row['scenario']}: {field} drifted "
                    f"{exp} -> {got} ({100 * (got - exp) / exp:+.1f}%)"
                )
        if row["sieved_vertices"] != base["sieved_vertices"]:
            failures.append(
                f"{row['scenario']}: sieved_vertices changed "
                f"{base['sieved_vertices']} -> {row['sieved_vertices']}"
            )
    if failures:
        print(f"sieve baseline DIVERGED (tolerance {100 * tolerance:.0f}%):")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"sieve report within {100 * tolerance:.0f}% of the committed baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke size (still runs the reference gate rows)")
    parser.add_argument("--check", action="store_true",
                        help="fail on >tolerance drift vs the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative drift (default 0.30)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="merge this run's section into the baseline file")
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_sieve.json")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write this run's report here")
    args = parser.parse_args(argv)

    size = "tiny" if args.tiny else "full"
    workloads = TINY if args.tiny else FULL
    print(f"communication sieve sweep ({size}: {CODECS} x "
          f"{[name for name, _, _ in workloads]})")
    rows = _measure(workloads)
    _print_rows(rows)
    report = {"tiny": args.tiny, "results": rows}

    # Hard gates, independent of the baseline: correctness and the 25% bar.
    failures = _gate_failures(rows)
    gate = {r["wire"]: r for r in rows if r["workload"] == "reference"}
    for wire in CODECS:
        bar = f"bar {100 * REDUCTION_BAR:.0f}%" if wire in BARRED_CODECS else "bar >0%"
        print(f"reference {wire} fold reduction: "
              f"{100 * gate[wire]['fold_reduction']:.1f}% ({bar})")
    if failures:
        for line in failures:
            print(f"FATAL: {line}")
        return 1

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=1), encoding="utf-8")
        print(f"report written to {args.output}")
    if args.update_baseline:
        merged = (
            json.loads(args.baseline.read_text(encoding="utf-8"))
            if args.baseline.exists() else {}
        )
        merged[size] = rows
        args.baseline.write_text(json.dumps(merged, indent=1), encoding="utf-8")
        print(f"baseline section {size!r} written to {args.baseline}")
        return 0
    if args.check:
        return _check(report, args.baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
