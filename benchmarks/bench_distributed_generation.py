"""Distributed generation bench — per-rank construction without a global graph.

Not a paper table, but the substrate the paper's largest runs require: at
3.2B vertices each node must generate exactly its own blocks.  Checks the
two properties that make that sound:

* per-rank generation is *exact* — assembling all ranks' cells yields the
  same structures as centrally partitioning the reference graph;
* per-rank generation work is proportional to the rank's stored edges
  (cells touched: at most 2P of (R*C)^2).
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.graph.distributed_gen import DistributedGraphBuilder
from repro.harness.report import format_table
from repro.partition.two_d import TwoDPartition
from repro.types import GraphSpec, GridShape

SPEC = GraphSpec(n=100_000, k=8, seed=17)
GRID = GridShape(6, 6)


def test_distributed_generation_exactness(once):
    def build_both():
        builder = DistributedGraphBuilder(SPEC, GRID)
        return builder, builder.build_all(), TwoDPartition(builder.reference_graph(), GRID)

    builder, locals_, central = once(build_both)
    entries = np.array([loc.num_stored_entries for loc in locals_])
    cells = [len(builder.cells_for_rank(r)) for r in range(GRID.size)]
    emit(
        "Distributed generation (n=100000, k=8, 6x6 mesh)",
        format_table(
            ["metric", "value"],
            [
                ["total entries", int(entries.sum())],
                ["entries/rank mean", f"{entries.mean():.0f}"],
                ["entries/rank max", int(entries.max())],
                ["cells/rank", f"{min(cells)}..{max(cells)} (bound {2 * GRID.size})"],
            ],
        ),
    )
    for rank, local in enumerate(locals_):
        ref = central.local(rank)
        assert np.array_equal(ref.col_map.ids, local.col_map.ids)
        assert np.array_equal(ref.col_indptr, local.col_indptr)
        assert local.num_stored_entries == ref.num_stored_entries
    assert max(cells) <= 2 * GRID.size
    # balance: Poisson graphs keep contiguous blocks tight
    assert entries.max() < 1.2 * entries.mean()
