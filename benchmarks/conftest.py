"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
scaled-down design points recorded in DESIGN.md, prints the series in the
paper's row format, and asserts the paper's qualitative *shape* (who wins,
what grows, where the crossover falls).  Simulated times are not expected
to match the paper's absolute seconds — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print a labelled report block (shown with pytest -s; captured otherwise)."""
    bar = "=" * max(20, len(title))
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once (simulations are deterministic)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
