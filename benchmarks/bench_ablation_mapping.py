"""Ablation — task mapping onto the torus (Figure 1 / Section 3.2.1).

Compares the paper's planar mapping of the logical mesh onto the 3D torus
against a naive row-major placement: expand/fold ring lengths in physical
hops, and the end-to-end simulated search time.  Expected: the planar
mapping's communicator groups are physically tighter, and the search is no
slower.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.graph.generators import poisson_random_graph
from repro.harness.figures import PAPER_OPTS
from repro.harness.report import format_table
from repro.machine.bluegene import bluegene_l_torus_for
from repro.machine.mapping import planar_mapping, row_major_mapping
from repro.types import GraphSpec, GridShape

GRID = GridShape(8, 8)  # maps onto the 4x4x4 torus
SPEC = GraphSpec(n=16_000, k=10, seed=8)


def test_mapping_ring_lengths(once):
    def measure():
        torus = bluegene_l_torus_for(GRID.size)
        planar = planar_mapping(GRID, torus)
        naive = row_major_mapping(GRID, torus)
        return {
            "planar": (planar.column_ring_hops(), planar.row_ring_hops()),
            "row-major": (naive.column_ring_hops(), naive.row_ring_hops()),
        }

    hops = once(measure)
    rows = [
        [name, f"{col:.1f}", f"{row:.1f}"] for name, (col, row) in hops.items()
    ]
    emit(
        "Ablation  ring lengths in physical hops (8x8 mesh on 4x4x4 torus)",
        format_table(["mapping", "expand ring (col)", "fold ring (row)"], rows),
    )
    planar_total = sum(hops["planar"])
    naive_total = sum(hops["row-major"])
    assert planar_total <= naive_total


def test_mapping_end_to_end(once):
    def run_both():
        graph = poisson_random_graph(SPEC)
        out = {}
        for mapping in ("planar", "row-major"):
            result = run_bfs(
                build_engine(graph, GRID, opts=PAPER_OPTS, mapping=mapping), 0
            )
            out[mapping] = result
        return out

    results = once(run_both)
    rows = [
        [name, f"{r.elapsed:.6f}", f"{r.comm_time:.6f}"]
        for name, r in results.items()
    ]
    emit(
        "Ablation  task mapping, end-to-end (n=16000, k=10, 8x8 mesh)",
        format_table(["mapping", "time(s)", "comm(s)"], rows),
    )
    assert np.array_equal(results["planar"].levels, results["row-major"].levels)
    # Hop terms are small next to bandwidth, so demand only "not worse".
    assert results["planar"].comm_time <= 1.05 * results["row-major"].comm_time
