"""Figure 4.b — total message volume vs search-path length.

Paper: a 12M-vertex / 120M-edge graph; volume rises quickly with the path
length until it reaches the graph diameter, then flattens.  Here: the same
experiment on a 120k-vertex / ~600k-edge graph (k=10) on a 4x4 mesh.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.harness.figures import fig4b_message_volume
from repro.harness.report import format_series


def test_fig4b_volume_vs_path_length(once):
    series = once(fig4b_message_volume, 120_000, 10.0, 16)
    distances = [d for d, _v in series]
    volumes = np.array([v for _d, v in series], dtype=float)
    emit(
        "Figure 4.b  total message volume vs search-path length "
        "(n=120000, k=10, 4x4 mesh; paper: n=12M)",
        format_series("volume(vertices)", distances, volumes.astype(int).tolist()),
    )
    # Shape 1: volume grows monotonically in the early levels...
    early = volumes[: max(2, len(volumes) // 2)]
    assert np.all(np.diff(early) > 0)
    # Shape 2: ...and explosively — the last early level dominates the first.
    assert early[-1] > 10 * early[0]
    # Shape 3: it flattens near the diameter: the final volume is within a
    # small factor of the volume one level earlier (no more doubling).
    assert volumes[-1] < 1.5 * volumes[-2]
