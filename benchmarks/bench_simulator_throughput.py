"""Simulator throughput — wall-clock regression harness for the hot paths.

Runs the reference workload (Poisson graph, n=20k, k=8, seed 7) through
``distributed_bfs`` on growing virtual grids and records *host* throughput:
wall seconds per run, BFS levels per wall second, and simulated adjacency
entries processed per wall second.  The simulation itself is deterministic,
so any change in these numbers is a change in the simulator's own speed —
the quantity the vectorized kernels exist to protect.

Unlike the ``bench_*`` pytest files (which regenerate the paper's figures),
this is a plain script so CI can gate on it:

    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py
    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py --tiny --check

It writes ``BENCH_simulator.json`` (repo root by default).  ``--check``
compares edges-per-wall-second against the committed baseline
(``benchmarks/simulator_baseline.json``) and exits non-zero if any grid's
throughput dropped more than ``--tolerance`` (default 30%).  Refresh the
baseline with ``--update-baseline`` after an intentional perf change.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import build_engine  # noqa: E402
from repro.bfs.level_sync import run_bfs  # noqa: E402
from repro.graph.generators import poisson_random_graph  # noqa: E402
from repro.types import GraphSpec, SystemSpec  # noqa: E402

BASELINE_PATH = REPO_ROOT / "benchmarks" / "simulator_baseline.json"

FULL = {
    "n": 20_000,
    "k": 8.0,
    "seed": 7,
    "grids": [(4, 4), (8, 8), (16, 16), (32, 32), (64, 64), (128, 128)],
}
TINY = {"n": 2_000, "k": 8.0, "seed": 7, "grids": [(2, 2), (4, 4), (64, 64)]}


def measure(workload: dict, repeats: int) -> list[dict]:
    graph = poisson_random_graph(
        GraphSpec(n=workload["n"], k=workload["k"], seed=workload["seed"])
    )
    num_entries = int(graph.indices.size)  # directed adjacency entries
    rows = []
    for grid in workload["grids"]:
        best = None
        result = None
        for _ in range(repeats):
            engine = build_engine(graph, grid, system=SystemSpec(layout="2d"))
            t0 = time.perf_counter()
            result = run_bfs(engine, 0)
            wall = time.perf_counter() - t0
            best = wall if best is None else min(best, wall)
        rows.append({
            "grid": f"{grid[0]}x{grid[1]}",
            "ranks": grid[0] * grid[1],
            "wall_s": round(best, 6),
            "levels": result.num_levels,
            "levels_per_s": round(result.num_levels / best, 3),
            "edges_per_s": round(num_entries / best, 1),
            "simulated_s": result.elapsed,
        })
        print(
            f"  {rows[-1]['grid']:>7}  wall={best:.3f}s  "
            f"levels/s={rows[-1]['levels_per_s']:.1f}  "
            f"edges/s={rows[-1]['edges_per_s']:.3e}"
        )
    return rows


def check(report: dict, baseline_path: Path, tolerance: float) -> int:
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update-baseline first")
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    key = "tiny" if report["tiny"] else "full"
    base_rows = {r["grid"]: r for r in baseline.get(key, [])}
    failures = []
    for row in report["results"]:
        base = base_rows.get(row["grid"])
        if base is None:
            continue
        floor = base["edges_per_s"] * (1.0 - tolerance)
        status = "ok" if row["edges_per_s"] >= floor else "REGRESSION"
        print(
            f"  {row['grid']:>7}  {row['edges_per_s']:.3e} edges/s  "
            f"(baseline {base['edges_per_s']:.3e}, floor {floor:.3e})  {status}"
        )
        if status != "ok":
            failures.append(row["grid"])
    if failures:
        print(f"throughput regressed >{tolerance:.0%} on: {', '.join(failures)}")
        return 1
    print("throughput within tolerance of baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke size (n=2k, grids up to 4x4)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline; exit 1 on regression")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write this run's numbers into the baseline file")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional throughput drop for --check (default 0.30)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per grid; best is reported (default 3)")
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_simulator.json",
                        help="where to write the report JSON")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    workload = TINY if args.tiny else FULL
    print(f"simulator throughput ({'tiny' if args.tiny else 'full'}): "
          f"n={workload['n']}, k={workload['k']}, seed={workload['seed']}")
    rows = measure(workload, args.repeats)

    report = {
        "workload": {k: workload[k] for k in ("n", "k", "seed")},
        "tiny": args.tiny,
        "results": rows,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    if args.update_baseline:
        baseline = (
            json.loads(args.baseline.read_text(encoding="utf-8"))
            if args.baseline.exists() else {}
        )
        baseline["tiny" if args.tiny else "full"] = rows
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
        print(f"updated baseline {args.baseline}")

    if args.check:
        return check(report, args.baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
