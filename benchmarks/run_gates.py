"""Unified benchmark gate runner — one entry point for every CI bench gate.

Each gate wraps one benchmark's CI smoke invocation (the exact commands
the workflow used to spell inline, per job) behind a registered name, so
the workflow reduces to a single matrixed job::

    PYTHONPATH=src python benchmarks/run_gates.py --gate sieve
    python benchmarks/run_gates.py --all          # local pre-push sweep
    python benchmarks/run_gates.py --list

Gates run from the repo root with ``PYTHONPATH=src`` injected, so the
runner works from any cwd and without ambient environment.  A gate
passes when every one of its steps exits 0; the runner exits with the
number of failed gates.  Report artifacts (``BENCH_*.json``, traces,
chaos/server reports) land in the repo root where the workflow's upload
step collects them.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _env(extra: dict[str, str] | None = None) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra or {})
    return env


@dataclass
class Gate:
    """One named bench gate: a sequence of commands that must all pass."""

    name: str
    description: str
    steps: list[tuple[list[str], dict[str, str]]]
    #: report files the workflow uploads (informational; missing is fine)
    artifacts: list[str] = field(default_factory=list)

    def run(self) -> bool:
        for cmd, extra_env in self.steps:
            print(f"[{self.name}] $ {' '.join(cmd)}", flush=True)
            proc = subprocess.run(cmd, cwd=REPO_ROOT, env=_env(extra_env))
            if proc.returncode != 0:
                print(f"[{self.name}] FAILED (exit {proc.returncode})")
                return False
        print(f"[{self.name}] ok")
        return True


_SERVER_PROBE = """
import asyncio
from repro.server import TcpQueryClient

async def main():
    async with TcpQueryClient("127.0.0.1", {port}) as client:
        assert (await client.ping()).ok
        replies = [await client.query(s) for s in range(10)]
        assert all(r.ok for r in replies), replies
        stats = await client.stats()
        assert stats.extra["stats"]["served"] == 10
        print("served:", stats.extra["stats"])

asyncio.run(main())
"""

#: boots against a crash-spare session: drives concurrent queries, checks
#: every reply against locally-computed fault-free digests, watches p99,
#: and verifies health/fault counters — then writes the report artifact.
_SERVICE_CHAOS_PROBE = """
import asyncio
import json
import time

import numpy as np

from repro.graph.generators import poisson_random_graph
from repro.observability.digest import levels_digest
from repro.server import TcpQueryClient
from repro.session import BfsSession
from repro.types import GraphSpec

PORT = {port}
QUERIES, CONCURRENCY = 96, 12
P99_CEILING_S = 30.0

async def main():
    graph = poisson_random_graph(GraphSpec(n=2000, k=8.0, seed=7))
    clean = BfsSession(graph, (2, 2))
    step = max(1, graph.n // QUERIES)
    sources = list(range(0, graph.n, step))[:QUERIES]
    expected = {s: levels_digest(clean.bfs(s).levels) for s in sources}

    conns = [
        await TcpQueryClient("127.0.0.1", PORT).connect()
        for _ in range(CONCURRENCY)
    ]
    replies = [None] * len(sources)
    latencies = [0.0] * len(sources)
    next_index = 0
    lock = asyncio.Lock()

    async def worker(conn):
        nonlocal next_index
        while True:
            async with lock:
                i = next_index
                if i >= len(sources):
                    return
                next_index += 1
            t0 = time.perf_counter()
            replies[i] = await conn.query(sources[i])
            latencies[i] = time.perf_counter() - t0

    t0 = time.perf_counter()
    await asyncio.gather(*(worker(conn) for conn in conns))
    wall = time.perf_counter() - t0
    for conn in conns:
        await conn.close()

    bad = [r for r in replies if r is None or not r.ok]
    assert not bad, f"unanswered/failed queries under faults: {bad[:3]}"
    wrong = [
        s for s, r in zip(sources, replies)
        if r.result["levels_digest"] != expected[s]
    ]
    assert not wrong, f"faulted digests diverge from fault-free: {wrong[:5]}"

    p50 = float(np.percentile(np.array(latencies), 50.0))
    p99 = float(np.percentile(np.array(latencies), 99.0))
    assert p99 < P99_CEILING_S, f"p99 {p99:.2f}s over {P99_CEILING_S}s ceiling"

    async with TcpQueryClient("127.0.0.1", PORT) as client:
        health = (await client.health()).extra["health"]
        assert health["state"] == "ok" and health["ready"], health
        assert health["faulted"], "server is not running a fault schedule"
        stats = (await client.stats()).extra["stats"]
        assert stats["served"] >= QUERIES, stats
        assert stats["fault_failures"] == 0, stats

    report = {
        "queries": QUERIES, "concurrency": CONCURRENCY,
        "qps": round(QUERIES / wall, 2),
        "p50_ms": round(p50 * 1e3, 3), "p99_ms": round(p99 * 1e3, 3),
        "fault_retries": stats["fault_retries"],
        "fault_failures": stats["fault_failures"],
        "deadline_exceeded": stats["deadline_exceeded"],
        "mean_batch_size": stats["mean_batch_size"],
    }
    with open("service-chaos-report.json", "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write(chr(10))
    print("service-chaos:", report)

asyncio.run(main())
"""


@dataclass
class ServerGate(Gate):
    """The server gate boots the TCP session server around its steps."""

    #: extra ``repro.cli serve`` flags (fault schedules, retry budget, ...)
    serve_args: list[str] = field(default_factory=list)
    #: probe script run against the live server (receives the port via
    #: ``{port}`` formatting and the REPRO_GATE_PORT env var)
    probe: str = ""
    probe_label: str = "<TCP probe: ping + 10 queries>"
    default_port: int = 7475

    def run(self) -> bool:
        port = int(os.environ.get("REPRO_GATE_PORT", str(self.default_port)))
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--n", "2000", "--k", "8", "--seed", "7",
             "--grid", "2x2", "--port", str(port), *self.serve_args],
            cwd=REPO_ROOT, env=_env(),
        )
        try:
            if not self._wait_for_server(port, server):
                return False
            print(f"[{self.name}] $ {self.probe_label}", flush=True)
            probe = subprocess.run(
                [sys.executable, "-c", self.probe.replace("{port}", str(port))],
                cwd=REPO_ROOT, env=_env({"REPRO_GATE_PORT": str(port)}),
            )
            if probe.returncode != 0:
                print(f"[{self.name}] FAILED (probe exit {probe.returncode})")
                return False
        finally:
            server.terminate()
            server.wait(timeout=10)
        return super().run()

    def _wait_for_server(self, port: int, server: subprocess.Popen) -> bool:
        import socket

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if server.poll() is not None:
                print(f"[{self.name}] FAILED (server died, exit {server.returncode})")
                return False
            try:
                with socket.create_connection(("127.0.0.1", port), timeout=1.0):
                    return True
            except OSError:
                time.sleep(0.25)
        print(f"[{self.name}] FAILED (server never opened port {port})")
        return False


def _py(*args: str) -> list[str]:
    return [sys.executable, *args]


GATES: dict[str, Gate] = {
    gate.name: gate
    for gate in [
        Gate(
            "compression",
            "wire-codec benchmark smoke (tiny workloads)",
            [(_py("-m", "pytest", "benchmarks/bench_compression.py", "-q"),
              {"REPRO_BENCH_TINY": "1"})],
        ),
        Gate(
            "simulator",
            "simulator throughput smoke + regression gate",
            [(_py("benchmarks/bench_simulator_throughput.py",
                  "--tiny", "--check"), {})],
            artifacts=["BENCH_simulator.json", "benchmarks/simulator_baseline.json"],
        ),
        Gate(
            "observability",
            "observability overhead smoke + Perfetto trace",
            [(_py("benchmarks/bench_observability_overhead.py",
                  "--tiny", "--check", "--tolerance", "0.35",
                  "--trace-out", "perfetto-trace-tiny.json"), {})],
            artifacts=["BENCH_observability.json", "perfetto-trace-tiny.json"],
        ),
        Gate(
            "chaos",
            "seeded chaos sweep + exact fault-resilience baseline",
            [(_py("src/repro/harness/chaos_sweep.py",
                  "--tiny", "--seeds", "25", "--out", "chaos-report.json"), {}),
             (_py("benchmarks/bench_fault_overhead.py", "--tiny", "--check"), {})],
            artifacts=["chaos-report.json"],
        ),
        ServerGate(
            "server",
            "TCP server boot + probe, loadgen digests, batched-throughput gate",
            [(_py("-m", "repro.server.loadgen",
                  "--tiny", "--queries", "100", "--transport", "tcp"), {}),
             (_py("-m", "repro.server.loadgen", "--tiny", "--check"), {})],
            artifacts=["BENCH_server.json"],
            probe=_SERVER_PROBE,
        ),
        ServerGate(
            "service-chaos",
            "TCP server under crash-spare faults: digests, p99, health",
            [],
            artifacts=["service-chaos-report.json"],
            serve_args=["--faults", "crash-spare", "--fault-retries", "2"],
            probe=_SERVICE_CHAOS_PROBE,
            probe_label="<chaos probe: 96 queries vs fault-free digests>",
            default_port=7493,
        ),
        Gate(
            "hybrid",
            "direction-optimizing regression gate",
            [(_py("benchmarks/bench_hybrid_direction.py",
                  "--tiny", "--check", "--output", "hybrid-report.json"), {})],
            artifacts=["hybrid-report.json"],
        ),
        Gate(
            "sieve",
            "communication-sieve traffic gate (reference 25% bar)",
            [(_py("benchmarks/bench_sieve.py",
                  "--tiny", "--check", "--output", "sieve-report.json"), {})],
            artifacts=["sieve-report.json"],
        ),
    ]
}


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--gate", action="append", default=[],
                        choices=sorted(GATES), metavar="NAME",
                        help="run this gate (repeatable)")
    parser.add_argument("--all", action="store_true", help="run every gate")
    parser.add_argument("--list", action="store_true",
                        help="list registered gates and exit")
    args = parser.parse_args(argv)

    if args.list:
        for gate in GATES.values():
            print(f"{gate.name:>14}  {gate.description}")
        return 0
    names = list(GATES) if args.all else args.gate
    if not names:
        parser.error("pick --gate NAME (repeatable), --all, or --list")

    failed = [name for name in names if not GATES[name].run()]
    print(f"\n{len(names) - len(failed)}/{len(names)} gates passed"
          + (f"; FAILED: {', '.join(failed)}" if failed else ""))
    return len(failed)


if __name__ == "__main__":
    sys.exit(main())
