"""Unified benchmark gate runner — one entry point for every CI bench gate.

Each gate wraps one benchmark's CI smoke invocation (the exact commands
the workflow used to spell inline, per job) behind a registered name, so
the workflow reduces to a single matrixed job::

    PYTHONPATH=src python benchmarks/run_gates.py --gate sieve
    python benchmarks/run_gates.py --all          # local pre-push sweep
    python benchmarks/run_gates.py --list

Gates run from the repo root with ``PYTHONPATH=src`` injected, so the
runner works from any cwd and without ambient environment.  A gate
passes when every one of its steps exits 0; the runner exits with the
number of failed gates.  Report artifacts (``BENCH_*.json``, traces,
chaos/server reports) land in the repo root where the workflow's upload
step collects them.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _env(extra: dict[str, str] | None = None) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra or {})
    return env


@dataclass
class Gate:
    """One named bench gate: a sequence of commands that must all pass."""

    name: str
    description: str
    steps: list[tuple[list[str], dict[str, str]]]
    #: report files the workflow uploads (informational; missing is fine)
    artifacts: list[str] = field(default_factory=list)

    def run(self) -> bool:
        for cmd, extra_env in self.steps:
            print(f"[{self.name}] $ {' '.join(cmd)}", flush=True)
            proc = subprocess.run(cmd, cwd=REPO_ROOT, env=_env(extra_env))
            if proc.returncode != 0:
                print(f"[{self.name}] FAILED (exit {proc.returncode})")
                return False
        print(f"[{self.name}] ok")
        return True


_SERVER_PROBE = """
import asyncio
from repro.server import TcpQueryClient

async def main():
    async with TcpQueryClient("127.0.0.1", {port}) as client:
        assert (await client.ping()).ok
        replies = [await client.query(s) for s in range(10)]
        assert all(r.ok for r in replies), replies
        stats = await client.stats()
        assert stats.extra["stats"]["served"] == 10
        print("served:", stats.extra["stats"])

asyncio.run(main())
"""


class ServerGate(Gate):
    """The server gate boots the TCP session server around its steps."""

    def run(self) -> bool:
        port = int(os.environ.get("REPRO_GATE_PORT", "7475"))
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--n", "2000", "--k", "8", "--seed", "7",
             "--grid", "2x2", "--port", str(port)],
            cwd=REPO_ROOT, env=_env(),
        )
        try:
            if not self._wait_for_server(port, server):
                return False
            print(f"[{self.name}] $ <TCP probe: ping + 10 queries>", flush=True)
            probe = subprocess.run(
                [sys.executable, "-c", _SERVER_PROBE.format(port=port)],
                cwd=REPO_ROOT, env=_env(),
            )
            if probe.returncode != 0:
                print(f"[{self.name}] FAILED (probe exit {probe.returncode})")
                return False
        finally:
            server.terminate()
            server.wait(timeout=10)
        return super().run()

    def _wait_for_server(self, port: int, server: subprocess.Popen) -> bool:
        import socket

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if server.poll() is not None:
                print(f"[{self.name}] FAILED (server died, exit {server.returncode})")
                return False
            try:
                with socket.create_connection(("127.0.0.1", port), timeout=1.0):
                    return True
            except OSError:
                time.sleep(0.25)
        print(f"[{self.name}] FAILED (server never opened port {port})")
        return False


def _py(*args: str) -> list[str]:
    return [sys.executable, *args]


GATES: dict[str, Gate] = {
    gate.name: gate
    for gate in [
        Gate(
            "compression",
            "wire-codec benchmark smoke (tiny workloads)",
            [(_py("-m", "pytest", "benchmarks/bench_compression.py", "-q"),
              {"REPRO_BENCH_TINY": "1"})],
        ),
        Gate(
            "simulator",
            "simulator throughput smoke + regression gate",
            [(_py("benchmarks/bench_simulator_throughput.py",
                  "--tiny", "--check"), {})],
            artifacts=["BENCH_simulator.json", "benchmarks/simulator_baseline.json"],
        ),
        Gate(
            "observability",
            "observability overhead smoke + Perfetto trace",
            [(_py("benchmarks/bench_observability_overhead.py",
                  "--tiny", "--check", "--tolerance", "0.35",
                  "--trace-out", "perfetto-trace-tiny.json"), {})],
            artifacts=["BENCH_observability.json", "perfetto-trace-tiny.json"],
        ),
        Gate(
            "chaos",
            "seeded chaos sweep + exact fault-resilience baseline",
            [(_py("src/repro/harness/chaos_sweep.py",
                  "--tiny", "--seeds", "25", "--out", "chaos-report.json"), {}),
             (_py("benchmarks/bench_fault_overhead.py", "--tiny", "--check"), {})],
            artifacts=["chaos-report.json"],
        ),
        ServerGate(
            "server",
            "TCP server boot + probe, loadgen digests, batched-throughput gate",
            [(_py("-m", "repro.server.loadgen",
                  "--tiny", "--queries", "100", "--transport", "tcp"), {}),
             (_py("-m", "repro.server.loadgen", "--tiny", "--check"), {})],
            artifacts=["BENCH_server.json"],
        ),
        Gate(
            "hybrid",
            "direction-optimizing regression gate",
            [(_py("benchmarks/bench_hybrid_direction.py",
                  "--tiny", "--check", "--output", "hybrid-report.json"), {})],
            artifacts=["hybrid-report.json"],
        ),
        Gate(
            "sieve",
            "communication-sieve traffic gate (reference 25% bar)",
            [(_py("benchmarks/bench_sieve.py",
                  "--tiny", "--check", "--output", "sieve-report.json"), {})],
            artifacts=["sieve-report.json"],
        ),
    ]
}


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--gate", action="append", default=[],
                        choices=sorted(GATES), metavar="NAME",
                        help="run this gate (repeatable)")
    parser.add_argument("--all", action="store_true", help="run every gate")
    parser.add_argument("--list", action="store_true",
                        help="list registered gates and exit")
    args = parser.parse_args(argv)

    if args.list:
        for gate in GATES.values():
            print(f"{gate.name:>14}  {gate.description}")
        return 0
    names = list(GATES) if args.all else args.gate
    if not names:
        parser.error("pick --gate NAME (repeatable), --all, or --list")

    failed = [name for name in names if not GATES[name].run()]
    print(f"\n{len(names) - len(failed)}/{len(names)} gates passed"
          + (f"; FAILED: {', '.join(failed)}" if failed else ""))
    return len(failed)


if __name__ == "__main__":
    sys.exit(main())
