"""Observability overhead — proves the disabled-mode cost is in the noise.

Runs the reference workload (Poisson graph, n=20k, k=8, seed 7, 4x4 grid)
through ``distributed_bfs`` twice: once with ``observe="off"`` (the
default — every span site reduces to one attribute load and a false
branch) and once with ``observe="full"`` (spans + per-message capture).
Reports host wall-clock throughput for both, the full-mode overhead, and
— the gated quantity — the off-mode throughput against the committed
pre-observability baseline (``benchmarks/simulator_baseline.json``).

Plain script so CI can gate on it:

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --check
    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --tiny \
        --check --tolerance 0.25 --trace-out trace.json
    PYTHONPATH=src python benchmarks/bench_observability_overhead.py \
        --check --against-rev <pre-observability-commit>

``--check`` fails (exit 1) when the off-mode throughput is more than
``--tolerance`` (default 2%) below the reference.  Two references are
supported: the committed baseline file (absolute edges-per-wall-second —
only meaningful on the machine that recorded it; CI smoke runs pass a
looser tolerance), and ``--against-rev``, which checks the
pre-observability commit out into a temporary git worktree and times the
two source trees in interleaved subprocess pairs.  The paired ratio
cancels machine speed and drift, so the 2% default is reliable there.
``--trace-out`` writes the observed run's Perfetto JSON (uploadable as a
CI artifact and loadable at https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if "--worker" in sys.argv:
    # Worker subprocess: time the workload under an arbitrary source tree
    # (used by --against-rev to run the pre-observability revision).
    sys.path.insert(0, sys.argv[sys.argv.index("--worker") + 1])
else:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import build_engine  # noqa: E402
from repro.bfs.level_sync import run_bfs  # noqa: E402
from repro.graph.generators import poisson_random_graph  # noqa: E402
from repro.types import GraphSpec  # noqa: E402

BASELINE_PATH = REPO_ROOT / "benchmarks" / "simulator_baseline.json"

FULL = {"n": 20_000, "k": 8.0, "seed": 7, "grid": (4, 4), "baseline_key": "full"}
TINY = {"n": 2_000, "k": 8.0, "seed": 7, "grid": (4, 4), "baseline_key": "tiny"}


def _best_wall(graph, grid: tuple[int, int], observe: str, repeats: int):
    best = None
    result = None
    # Only pass observe= when it does something: keeps the call compatible
    # with pre-observability trees (--against-rev workers) and the off-mode
    # timing identical in shape across both trees.
    kwargs = {} if observe == "off" else {"observe": observe}
    for _ in range(repeats):
        engine = build_engine(graph, grid, layout="2d", **kwargs)
        t0 = time.perf_counter()
        result = run_bfs(engine, 0)
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    return best, result


def _worker_wall(src_path: str, workload: dict, repeats: int) -> float:
    """Best wall time of the reference workload under ``src_path``'s tree."""
    out = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--worker", src_path,
         "--repeats", str(repeats)]
        + (["--tiny"] if workload is TINY else []),
        capture_output=True, text=True, check=True,
    ).stdout
    return float(re.search(r"worker-wall=([0-9.eE+-]+)", out).group(1))


def check_against_rev(
    workload: dict, rev: str, repeats: int, pairs: int, tolerance: float
) -> int:
    """Paired interleaved A/B: this tree vs ``rev`` in a temp worktree."""
    with tempfile.TemporaryDirectory(prefix="obs-overhead-") as tmp:
        ref = Path(tmp) / "ref"
        subprocess.run(
            ["git", "-C", str(REPO_ROOT), "worktree", "add", "--detach",
             str(ref), rev],
            check=True, capture_output=True,
        )
        try:
            base_best, cur_best = None, None
            for i in range(pairs):
                base = _worker_wall(str(ref / "src"), workload, repeats)
                cur = _worker_wall(str(REPO_ROOT / "src"), workload, repeats)
                base_best = base if base_best is None else min(base_best, base)
                cur_best = cur if cur_best is None else min(cur_best, cur)
                print(f"  pair {i + 1}/{pairs}: rev={base:.4f}s now={cur:.4f}s")
        finally:
            subprocess.run(
                ["git", "-C", str(REPO_ROOT), "worktree", "remove", "--force",
                 str(ref)],
                capture_output=True,
            )
    overhead = cur_best / base_best - 1.0
    ok = overhead <= tolerance
    print(
        f"  best: rev {rev[:12]} {base_best:.4f}s, now {cur_best:.4f}s, "
        f"disabled-mode overhead {overhead:+.2%}  "
        f"{'ok' if ok else 'REGRESSION'} (limit {tolerance:.0%})"
    )
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke size (n=2k)")
    parser.add_argument("--check", action="store_true",
                        help="gate off-mode throughput against the baseline")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed fractional off-mode slowdown vs the "
                             "baseline (default 0.02)")
    parser.add_argument("--repeats", type=int, default=9,
                        help="timed repetitions per mode; best is kept (default 9)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_observability.json",
                        help="where to write the report JSON")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write the observed run's Perfetto JSON here")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--against-rev", default=None, metavar="REV",
                        help="gate via paired interleaved timing against this "
                             "git revision instead of the baseline file")
    parser.add_argument("--pairs", type=int, default=4,
                        help="interleaved (rev, now) timing pairs for "
                             "--against-rev (default 4)")
    parser.add_argument("--worker", default=None, metavar="SRC",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    workload = TINY if args.tiny else FULL
    grid = workload["grid"]

    if args.worker is not None:
        graph = poisson_random_graph(
            GraphSpec(n=workload["n"], k=workload["k"], seed=workload["seed"])
        )
        wall, _ = _best_wall(graph, grid, "off", args.repeats)
        print(f"worker-wall={wall:.6f}")
        return 0

    print(f"observability overhead ({'tiny' if args.tiny else 'full'}): "
          f"n={workload['n']}, k={workload['k']}, seed={workload['seed']}, "
          f"grid={grid[0]}x{grid[1]}")
    graph = poisson_random_graph(
        GraphSpec(n=workload["n"], k=workload["k"], seed=workload["seed"])
    )
    num_entries = int(graph.indices.size)

    # Interleave-free ordering is fine: each mode keeps its best-of-N.
    wall_off, result_off = _best_wall(graph, grid, "off", args.repeats)
    wall_full, result_full = _best_wall(graph, grid, "full", args.repeats)
    obs = result_full.observability
    full_overhead = wall_full / wall_off - 1.0

    print(f"  off : wall={wall_off:.4f}s  edges/s={num_entries / wall_off:.3e}")
    print(f"  full: wall={wall_full:.4f}s  edges/s={num_entries / wall_full:.3e}  "
          f"({len(obs.spans)} spans, {len(obs.messages)} messages, "
          f"overhead {full_overhead:+.1%})")
    if result_off.elapsed != result_full.elapsed:
        print("ERROR: observability changed the simulated clock")
        return 2

    report = {
        "workload": {k: workload[k] for k in ("n", "k", "seed")},
        "grid": f"{grid[0]}x{grid[1]}",
        "tiny": args.tiny,
        "off": {"wall_s": round(wall_off, 6),
                "edges_per_s": round(num_entries / wall_off, 1)},
        "full": {"wall_s": round(wall_full, 6),
                 "edges_per_s": round(num_entries / wall_full, 1),
                 "spans": len(obs.spans),
                 "messages": len(obs.messages),
                 "overhead_frac": round(full_overhead, 4)},
        "simulated_s": result_off.elapsed,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    if args.trace_out is not None:
        obs.write_trace(args.trace_out)
        print(f"wrote {args.trace_out}")

    if args.check and args.against_rev:
        print(f"paired A/B against {args.against_rev}:")
        return check_against_rev(
            workload, args.against_rev, args.repeats, args.pairs, args.tolerance
        )
    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}")
            return 2
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        rows = {r["grid"]: r for r in baseline.get(workload["baseline_key"], [])}
        base = rows.get(report["grid"])
        if base is None:
            print(f"baseline has no {report['grid']} row")
            return 2
        floor = base["edges_per_s"] * (1.0 - args.tolerance)
        ok = report["off"]["edges_per_s"] >= floor
        print(
            f"  off-mode {report['off']['edges_per_s']:.3e} edges/s vs "
            f"baseline {base['edges_per_s']:.3e} (floor {floor:.3e})  "
            f"{'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            print(f"disabled-mode observability overhead exceeds "
                  f"{args.tolerance:.0%} of the baseline throughput")
            return 1
        print(f"disabled-mode overhead within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
