"""Memory-feasibility bench — the paper's headline at full scale.

The abstract's claim — a 3.2-billion-vertex, ~30-billion-edge graph
searched on 32,768 BlueGene/L nodes with 512 MB each — is above all a
memory-scalability claim (Section 2.4).  This bench prices every per-rank
structure with the Section 2.4/3.1 expectations at the paper's real design
points and asserts the run fits, plus the largest-|V|/rank frontier the
model allows.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.memory import (
    BLUEGENE_L_NODE_MEMORY,
    MemoryModel,
    fits_in_memory,
    max_vertices_per_rank,
)
from repro.harness.report import format_table
from repro.types import GridShape

GRID = GridShape(128, 256)  # the paper's P = 32768 mesh
DESIGN_POINTS = [(100_000, 10.0), (20_000, 50.0), (10_000, 100.0), (5_000, 200.0)]


def test_paper_scale_feasibility(once):
    def build():
        rows = []
        for vpr, k in DESIGN_POINTS:
            model = MemoryModel(n=vpr * GRID.size, k=k, grid=GRID)
            rows.append(
                [
                    f"|V|={vpr},k={int(k)}",
                    f"{model.total_bytes / 2**20:.1f}",
                    f"{model.edge_bytes / 2**20:.1f}",
                    f"{model.index_bytes / 2**20:.1f}",
                    f"{model.buffer_bytes / 2**20:.1f}",
                    "yes" if fits_in_memory(model) else "NO",
                ]
            )
        return rows

    rows = once(build)
    emit(
        "Memory feasibility at P=32768, 512 MB/node (paper's machine)",
        format_table(
            ["design point", "total MB", "edges MB", "indices MB", "buffers MB", "fits"],
            rows,
        ),
    )
    # Every design point the paper actually ran must fit.
    assert all(row[-1] == "yes" for row in rows)
    # The k=10 headline point leaves a comfortable margin (< 25% of node).
    headline = MemoryModel(n=100_000 * GRID.size, k=10.0, grid=GRID)
    assert headline.total_bytes < 0.25 * BLUEGENE_L_NODE_MEMORY


def test_capacity_frontier(once):
    cap = once(max_vertices_per_rank, 10.0, GRID)
    emit(
        "Largest |V|/rank the 512 MB node admits at k=10",
        f"max |V|/rank = {cap} (paper ran 100000)",
    )
    assert cap >= 100_000
    assert cap <= 10_000_000  # the model must also say 'no' somewhere sane
