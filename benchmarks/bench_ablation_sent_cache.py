"""Ablation — the sent-neighbours cache (Section 2.4.3) and buffer capping
(Section 3.1).

Expected: the cache cuts fold traffic substantially on graphs whose degree
makes rediscovery common, at identical results; capping the message buffer
never changes results and only adds per-chunk latency.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.graph.generators import poisson_random_graph
from repro.harness.report import format_table
from repro.types import GraphSpec, GridShape

GRID = GridShape(6, 6)
SPEC = GraphSpec(n=7_200, k=40, seed=9)  # dense enough to rediscover a lot


def test_sent_cache_ablation(once):
    """The cache is per-rank, so its power depends on the layout: under 1D
    every rediscovery is local and the cache removes *all* cross-level
    resends; under 2D the same vertex can be rediscovered by a different
    rank of the processor-row, so the cut is partial."""

    def run_matrix():
        graph = poisson_random_graph(SPEC)
        out = {}
        for layout, grid in (("2d", GRID), ("1d", GridShape(GRID.size, 1))):
            for use_cache in (True, False):
                # Direct fold isolates the cache: the union-fold would
                # dedupe the same cross-rank redundancy in flight and mask
                # the delivered-volume difference.
                opts = BfsOptions(use_sent_cache=use_cache, fold_collective="direct")
                out[(layout, use_cache)] = run_bfs(
                    build_engine(graph, grid, layout=layout, opts=opts), 0
                )
        return out

    results = once(run_matrix)
    rows = [
        [
            layout,
            "on" if cached else "off",
            f"{r.elapsed:.6f}",
            int(r.stats.volume_per_level("fold").sum()),
            r.stats.total_processed,
        ]
        for (layout, cached), r in results.items()
    ]
    emit(
        "Ablation  sent-neighbours cache (n=7200, k=40)",
        format_table(["layout", "cache", "time(s)", "fold volume", "wire vertices"], rows),
    )
    for layout in ("1d", "2d"):
        on, off = results[(layout, True)], results[(layout, False)]
        assert np.array_equal(on.levels, off.levels)
        assert (
            on.stats.volume_per_level("fold").sum()
            < off.stats.volume_per_level("fold").sum()
        )
    # Under 2D the cut is decisive: partial edge lists make every rank
    # rediscover its row vertices level after level.
    on_2d = results[("2d", True)].stats.volume_per_level("fold").sum()
    off_2d = results[("2d", False)].stats.volume_per_level("fold").sum()
    assert on_2d < 0.75 * off_2d


def test_buffer_capacity_ablation(once):
    def run_sweep():
        graph = poisson_random_graph(SPEC)
        out = {}
        for cap in (None, 4096, 256, 32):
            opts = BfsOptions(buffer_capacity=cap)
            out[cap] = run_bfs(build_engine(graph, GRID, opts=opts), 0)
        return out

    results = once(run_sweep)
    rows = [
        [
            "unbounded" if cap is None else cap,
            f"{r.elapsed:.6f}",
            r.stats.total_messages,
        ]
        for cap, r in results.items()
    ]
    emit(
        "Ablation  fixed-length message buffers (Section 3.1)",
        format_table(["capacity (vertices)", "time(s)", "messages"], rows),
    )
    base = results[None]
    for cap, r in results.items():
        assert np.array_equal(r.levels, base.levels)
    # Tighter caps mean more chunks on the wire...
    assert results[32].stats.total_messages > results[None].stats.total_messages
    # ...at a modest latency cost (alpha per extra chunk), not a blow-up.
    assert results[32].elapsed < 5 * base.elapsed
