"""Table 1 — performance across processor topologies (1D vs 2D).

Paper (P=32768): 128x256 / 256x128 / 32768x1 / 1x32768 for
(|V|=100000, k=10) and (|V|=10000, k=100).  1D communication time is much
higher; the degenerate meshes shift all traffic into one phase (32768x1 is
expand-only, 1x32768 fold-only); 2D should win clearly on the high-degree
graph.  Here: P=128 with grids 8x16 / 16x8 / 128x1 / 1x128 and design
points (|V|=500, k=10) and (|V|=50, k=100).
"""

from __future__ import annotations

from conftest import emit
from repro.harness.figures import table1_topologies
from repro.harness.report import format_table
from repro.types import GridShape

GRIDS = [GridShape(8, 16), GridShape(16, 8), GridShape(128, 1), GridShape(1, 128)]


def _render(rows):
    return format_table(
        ["R x C", "exec(s)", "comm(s)", "expand len", "fold len"],
        [
            [
                f"{r.grid.rows}x{r.grid.cols}",
                f"{r.exec_time:.6f}",
                f"{r.comm_time:.6f}",
                f"{r.expand_length:.1f}",
                f"{r.fold_length:.1f}",
            ]
            for r in rows
        ],
    )


def _check_block(rows):
    by_grid = {(r.grid.rows, r.grid.cols): r for r in rows}
    two_d = [by_grid[(8, 16)], by_grid[(16, 8)]]
    one_d = [by_grid[(128, 1)], by_grid[(1, 128)]]
    # Shape 1: 1D communication time clearly exceeds 2D (the table's
    # headline: more processors in each collective).
    assert min(r.comm_time for r in one_d) > max(r.comm_time for r in two_d)
    # Shape 2: the degenerate meshes concentrate traffic in one phase.
    assert by_grid[(128, 1)].fold_length == 0.0
    assert by_grid[(128, 1)].expand_length > 0.0
    assert by_grid[(1, 128)].expand_length == 0.0
    assert by_grid[(1, 128)].fold_length > 0.0
    # Shape 3: 2D meshes carry traffic in both phases.
    for r in two_d:
        assert r.expand_length > 0 and r.fold_length > 0
    return two_d, one_d


def test_table1_low_degree(once):
    rows = once(table1_topologies, 500, 10.0, GRIDS, searches=2)
    emit("Table 1  |V|=500/rank, k=10 (paper: |V|=100000, k=10)", _render(rows))
    _check_block(rows)


def test_table1_high_degree(once):
    rows = once(table1_topologies, 50, 100.0, GRIDS, searches=2)
    emit("Table 1  |V|=50/rank, k=100 (paper: |V|=10000, k=100)", _render(rows))
    two_d, one_d = _check_block(rows)
    # Shape 4 (paper): for the high-degree graph the 2D partitioning should
    # outperform 1D on total execution time as well.
    assert min(r.exec_time for r in two_d) < min(r.exec_time for r in one_d)
