"""Frontier compression — codecs × graph density on the wire.

Sweeps the four ``repro.wire`` codecs over average degree (which drives
frontier density through γ saturation, Section 3.1) on a pinned 4×4 mesh
and reports bytes-on-wire, compression ratio, and simulated time.
Expected shape: ``raw`` ships exactly the uncompressed bytes; every
compressing codec ships fewer on dense levels; ``bitmap`` overtakes
``delta-varint`` once the frontier saturates the owner blocks (mean gap
below ~8 indices, i.e. density above ~1/8); ``adaptive`` never does worse
than the better of the two (plus its one tag byte per message); and every
codec returns exactly the raw run's level labels.

Writes a ``results/``-style CSV (``compression_codecs.csv``).  Set
``REPRO_BENCH_TINY=1`` to run a smoke-sized design point (CI).
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

import numpy as np

from conftest import emit
from repro.api import distributed_bfs
from repro.graph.generators import poisson_random_graph
from repro.harness.report import format_table
from repro.types import GraphSpec, GridShape

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

GRID = GridShape(4, 4)
N = 1_000 if TINY else 20_000
DEGREES = [4.0, 16.0] if TINY else [4.0, 8.0, 32.0, 64.0]
CODECS = ["raw", "delta-varint", "bitmap", "adaptive"]

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def sweep() -> list[dict]:
    rows: list[dict] = []
    for k in DEGREES:
        graph = poisson_random_graph(GraphSpec(n=N, k=k, seed=7))
        baseline = None
        for codec in CODECS:
            result = distributed_bfs(graph, GRID, 0, wire=codec)
            if baseline is None:
                baseline = result
            assert np.array_equal(result.levels, baseline.levels), codec
            rows.append({
                "n": N,
                "k": k,
                "codec": codec,
                "messages": result.stats.total_messages,
                "raw_bytes": result.stats.total_bytes,
                "wire_bytes": result.stats.total_encoded_bytes,
                "compression": round(result.stats.compression_ratio, 3),
                "time_s": result.elapsed,
            })
    return rows


def test_compression_sweep(once):
    rows = once(sweep)

    emit(
        f"Frontier compression  codecs x degree (n={N}, 4x4 mesh)",
        format_table(
            ["k", "codec", "wire bytes", "ratio", "time(s)"],
            [[r["k"], r["codec"], r["wire_bytes"], f"{r['compression']:.2f}",
              f"{r['time_s']:.6f}"] for r in rows],
        ),
    )

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (RESULTS_DIR / "compression_codecs.csv").open(
        "w", newline="", encoding="utf-8"
    ) as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)

    by_key = {(r["k"], r["codec"]): r for r in rows}
    for k in DEGREES:
        raw = by_key[(k, "raw")]
        varint = by_key[(k, "delta-varint")]
        bitmap = by_key[(k, "bitmap")]
        adaptive = by_key[(k, "adaptive")]
        # raw is the identity codec: wire bytes == payload bytes
        assert raw["wire_bytes"] == raw["raw_bytes"]
        assert raw["compression"] == 1.0
        # compression actually compresses on every design point
        assert varint["wire_bytes"] < raw["wire_bytes"]
        assert adaptive["wire_bytes"] < raw["wire_bytes"]
        # adaptive picks the cheaper format per message, so it at least
        # ties the best fixed codec up to its one tag byte per message
        best_fixed = min(varint["wire_bytes"], bitmap["wire_bytes"])
        assert adaptive["wire_bytes"] <= best_fixed + adaptive["messages"]

    if not TINY:
        # γ saturation: the denser the frontier, the harder the bitmap
        # beats delta-varint (its cost is span/8 no matter how many
        # vertices are set, while varint pays per vertex)
        def margin(k):
            return (
                by_key[(k, "delta-varint")]["wire_bytes"]
                / by_key[(k, "bitmap")]["wire_bytes"]
            )

        assert margin(DEGREES[-1]) > margin(DEGREES[0]) > 1.0
        # compression gets better as the frontier densifies
        ratios = [by_key[(k, "adaptive")]["compression"] for k in DEGREES]
        assert ratios[-1] > ratios[0]
