"""Figure 4.a — weak-scaling mean search time on the simulated BlueGene/L.

Paper: P up to 32,768, |V|/rank in {100000, 20000, 10000, 5000} with k in
{10, 50, 100, 200}; execution time grows ~ log P; communication time is
small next to computation.  Here: P in {1, 4, 16, 64, 144}, |V|/rank
scaled by ~1/100, same k ladder.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.analysis.scaling import log_fit
from repro.harness.figures import fig4a_weak_scaling
from repro.harness.report import format_table

P_VALUES = [1, 4, 16, 64, 144]
DESIGN_POINTS = [(1000, 10.0), (200, 50.0), (100, 100.0), (50, 200.0)]


def _run_curve(vertices_per_rank: int, k: float):
    return fig4a_weak_scaling(P_VALUES, vertices_per_rank, k, searches=2)


def test_fig4a_primary_curve(once):
    """|V|/rank=1000, k=10 — the curve the paper annotates with comm time."""
    points = once(_run_curve, *DESIGN_POINTS[0])
    rows = [
        [p.p, p.n, f"{p.mean_time:.6f}", f"{p.comm_time:.6f}", f"{p.compute_time:.6f}"]
        for p in points
    ]
    emit(
        "Figure 4.a  |V|=1000/rank, k=10 (paper: |V|=100000, k=10)",
        format_table(["P", "n", "time(s)", "comm(s)", "compute(s)"], rows),
    )
    times = np.array([p.mean_time for p in points])
    # Shape 1: time grows with P (weak scaling pays the deeper graph).
    assert times[-1] > times[0]
    # Shape 2: growth is log-like, not linear: going 1 -> 144 ranks must
    # cost far less than 144x.
    assert times[-1] < 30 * times[0]
    # Shape 3: log2 fit has positive slope and decent quality.
    a, _b, r2 = log_fit(np.array(P_VALUES[1:]), times[1:])
    assert a > 0
    assert r2 > 0.7
    # Shape 4: communication is the minor component (paper: "very small").
    multi = [p for p in points if p.p > 1]
    assert all(p.comm_time < p.compute_time for p in multi)


def test_fig4a_degree_ladder(once):
    """Higher average degree => shorter searches (fewer levels)."""

    def run_ladder():
        return {k: fig4a_weak_scaling([16], v, k, searches=2)[0] for v, k in DESIGN_POINTS}

    ladder = once(run_ladder)
    rows = [
        [f"|V|={v}", k, f"{ladder[k].mean_time:.6f}", f"{ladder[k].comm_time:.6f}"]
        for v, k in DESIGN_POINTS
    ]
    emit(
        "Figure 4.a  degree ladder at P=16 (same total work n*k per rank)",
        format_table(["|V|/rank", "k", "time(s)", "comm(s)"], rows),
    )
    # All four design points have n*k/P constant; the k=200 graph has a far
    # smaller diameter, so its search must not be slower than the k=10 one
    # by more than the level-count ratio — in practice it is faster.
    assert ladder[200.0].mean_time < ladder[10.0].mean_time


def test_fig4a_extended_point_distributed_gen(once):
    """One more weak-scaling decade (P=256) built with the distributed
    generator — the construction path the paper's full-scale runs need.
    The point must continue the log-P trend of the primary curve."""
    from repro.api import build_communicator
    from repro.bfs.bfs_2d import Bfs2DEngine
    from repro.bfs.level_sync import run_bfs
    from repro.graph.distributed_gen import DistributedGraphBuilder
    from repro.harness.figures import PAPER_OPTS
    from repro.types import GraphSpec, GridShape

    def run_point():
        grid = GridShape(16, 16)
        builder = DistributedGraphBuilder(
            GraphSpec(n=1000 * grid.size, k=10.0, seed=0), grid
        )
        partition = builder.build_partition()
        engine = Bfs2DEngine(partition, build_communicator(grid), PAPER_OPTS)
        return run_bfs(engine, 0)

    result = once(run_point)
    emit(
        "Figure 4.a  extended point P=256 (|V|=1000/rank, distributed generation)",
        f"time={result.elapsed:.6f}s comm={result.comm_time:.6f}s "
        f"levels={result.num_levels}",
    )
    # Continuation of the log-P curve measured by the primary benchmark:
    # the P=144 point lands near 0.017 s; one more ~2x in P adds roughly
    # one log2 step, so expect < 1.6x, far below the 1.78x of linear-in-P.
    assert 0.012 < result.elapsed < 0.028
    assert result.comm_time < result.compute_time
