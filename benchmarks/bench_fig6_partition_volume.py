"""Figure 6 — per-level message volume, 1D vs 2D, and the crossover degree.

Paper: n=40M on a 20x20 mesh with an unreachable target (worst case).
(a) k=10: 1D generates *less* volume than 2D as the search deepens;
    k=50: 2D generates less than 1D.
(b) at the analytically derived crossover degree (k=34 for P=400, n=40M)
    the two layouts produce nearly identical volume.
Here: n=40000 on a 10x10 mesh (P=100), same protocol, crossover solved
for our (n, P) with the same equation.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.analysis.crossover import crossover_degree
from repro.harness.figures import fig6_partition_volume, fig6b_crossover
from repro.harness.report import format_series

N, P = 40_000, 100


def _total(series: dict[str, np.ndarray]) -> tuple[int, int]:
    return int(series["1d"].sum()), int(series["2d"].sum())


def test_fig6a_low_degree_favours_1d(once):
    series = once(fig6_partition_volume, N, 10.0, P)
    one_d, two_d = series["1d"], series["2d"]
    emit(
        "Figure 6.a  per-level volume, k=10 (n=40000, 10x10 mesh)",
        "\n".join(
            [
                format_series("1-D (k=10)", range(len(one_d)), one_d.tolist()),
                format_series("2-D (k=10)", range(len(two_d)), two_d.tolist()),
            ]
        ),
    )
    t1, t2 = int(one_d.sum()), int(two_d.sum())
    # Low degree: the 1D layout moves less data in total.
    assert t1 < t2


def test_fig6a_high_degree_favours_2d(once):
    series = once(fig6_partition_volume, N, 50.0, P)
    one_d, two_d = series["1d"], series["2d"]
    emit(
        "Figure 6.a  per-level volume, k=50 (n=40000, 10x10 mesh)",
        "\n".join(
            [
                format_series("1-D (k=50)", range(len(one_d)), one_d.tolist()),
                format_series("2-D (k=50)", range(len(two_d)), two_d.tolist()),
            ]
        ),
    )
    assert int(two_d.sum()) < int(one_d.sum())


def test_fig6b_crossover_degree(once):
    out = once(fig6b_crossover, N, P)
    k_star = out["k"]
    one_d, two_d = out["volumes"]["1d"], out["volumes"]["2d"]
    t1, t2 = int(one_d.sum()), int(two_d.sum())
    emit(
        f"Figure 6.b  crossover k={k_star:.1f} for n={N}, P={P} "
        "(paper: k=34 for n=40M, P=400)",
        "\n".join(
            [
                format_series("1-D", range(len(one_d)), one_d.tolist()),
                format_series("2-D", range(len(two_d)), two_d.tolist()),
                f"totals: 1-D {t1}, 2-D {t2}, ratio {t1 / t2:.2f}",
            ]
        ),
    )
    # The analytic crossover lies between the two Figure 6.a degrees...
    assert 10.0 < k_star < 50.0
    # ...and at it the layouts are nearly identical (within 30%).
    assert 0.7 < t1 / t2 < 1.3


def test_fig6_paper_scale_crossover(once):
    """At the paper's own (n, P) = (4e7, 400) the equation solves near the
    reported k=34 (exact Brent root ~31.3; see EXPERIMENTS.md)."""
    k = once(crossover_degree, 4e7, 400)
    emit("Figure 6.b  crossover at paper scale", f"k = {k:.3f} (paper reports 34)")
    assert 28.0 <= k <= 37.0
