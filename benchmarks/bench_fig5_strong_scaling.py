"""Figure 5 — strong-scaling speedup.

Paper: with the graph fixed, speedup grows ~ sqrt(P) for small P, then
tapers off as the local problem shrinks and communication dominates.
Here: n=48000, k=10, P in {1, 4, 16, 36, 64, 144}.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.analysis.scaling import speedup_curve, sqrt_fit
from repro.harness.figures import fig5_strong_scaling
from repro.harness.report import format_table

P_VALUES = [1, 4, 16, 36, 64, 144]


def test_fig5_strong_scaling_speedup(once):
    rows = once(fig5_strong_scaling, 48_000, 10.0, P_VALUES, searches=2)
    times = np.array([t for _p, t in rows])
    speedups = speedup_curve(times)
    table = [
        [p, f"{t:.6f}", f"{s:.2f}", f"{np.sqrt(p):.2f}"]
        for (p, t), s in zip(rows, speedups)
    ]
    emit(
        "Figure 5  strong scaling (n=48000, k=10)",
        format_table(["P", "time(s)", "speedup", "sqrt(P)"], table),
    )
    # Shape 1: parallelism helps: monotone speedup over the small-P regime.
    assert speedups[1] > speedups[0]
    assert speedups[2] > speedups[1]
    # Shape 2: sqrt(P)-like growth for small P — the fit over P <= 64
    # should track sqrt closely.
    small = slice(0, 5)
    a, r2 = sqrt_fit(np.array(P_VALUES)[small], speedups[small])
    assert a > 0.3
    assert r2 > 0.6
    # Shape 3: taper — far from linear speedup at the largest P.
    assert speedups[-1] < 0.5 * P_VALUES[-1]
