"""Direction-optimizing BFS — traversed edges and simulated time.

Runs top-down, bottom-up, and the hybrid switch over Poisson and R-MAT
workloads on the 1D and 2D layouts and reports traversed edges (the
direction-optimizing currency) plus simulated seconds.  Expected shape:
every direction produces byte-identical level arrays; hybrid traverses at
least 2x fewer edges than pure top-down on the scale-free R-MAT workload
(hub frontiers saturate after two levels, so the bottom-up scan stops at
the first already-visited parent); on the high-diameter Poisson graph the
switch stays top-down longer and the saving is modest or absent.

Also runnable as a plain script (the direction baseline for CI):

    PYTHONPATH=src python benchmarks/bench_hybrid_direction.py --tiny --check

It writes ``BENCH_hybrid.json`` (repo root).  Traversed edges and
simulated seconds are fully deterministic, so ``--check`` fails when a
scenario regresses by more than ``--tolerance`` (default 30%) against the
committed baseline, and *always* fails if hybrid stops matching top-down
levels or the reference R-MAT edge reduction drops below 2x (refresh
intentional cost-model changes with ``--update-baseline``).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from conftest import emit  # noqa: E402
from repro.api import build_engine  # noqa: E402
from repro.bfs.level_sync import run_bfs  # noqa: E402
from repro.bfs.options import BfsOptions  # noqa: E402
from repro.graph.generators import build_graph  # noqa: E402
from repro.types import GraphSpec, GridShape, SystemSpec  # noqa: E402

DIRECTIONS = ("top-down", "hybrid", "bottom-up")

FULL = {
    "poisson": GraphSpec(n=8_000, k=10.0, seed=3),
    "rmat": GraphSpec.rmat(12, edge_factor=16, seed=3),
}
TINY = {
    "poisson": GraphSpec(n=2_000, k=8.0, seed=3),
    "rmat": GraphSpec.rmat(10, edge_factor=8, seed=3),
}

LAYOUTS = {
    "1d": (GridShape(4, 1), "1d"),
    "2d": (GridShape(4, 4), "2d"),
}
TINY_LAYOUTS = {
    "1d": (GridShape(4, 1), "1d"),
    "2d": (GridShape(2, 2), "2d"),
}

SOURCE = 0

#: the acceptance bar: hybrid must traverse >= 2x fewer edges than
#: top-down on the reference scale-free workload (2D layout)
RMAT_REDUCTION_BAR = 2.0


def _run(graph, grid: GridShape, layout: str, direction: str):
    engine = build_engine(
        graph, grid, opts=BfsOptions(direction=direction),
        system=SystemSpec(layout=layout),
    )
    return run_bfs(engine, SOURCE)


def _measure(specs: dict[str, GraphSpec], layouts: dict) -> list[dict]:
    rows: list[dict] = []
    for kind, spec in specs.items():
        graph = build_graph(spec)
        for layout_name, (grid, layout) in layouts.items():
            baseline = None
            for direction in DIRECTIONS:
                result = _run(graph, grid, layout, direction)
                if direction == "top-down":
                    baseline = result
                counts = result.stats.direction_counts()
                rows.append({
                    "scenario": f"{kind}-{layout_name}:{direction}",
                    "kind": kind,
                    "layout": layout_name,
                    "direction": direction,
                    "edges_scanned": int(result.stats.total_edges_scanned),
                    "sim_s": result.elapsed.hex(),
                    "num_levels": result.num_levels,
                    "bottom_up_levels": int(counts.get("bottom-up", 0)),
                    "levels_match_top_down": bool(
                        np.array_equal(result.levels, baseline.levels)
                    ),
                })
    return rows


def _reduction(rows: list[dict], kind: str, layout: str) -> float:
    by_dir = {
        r["direction"]: r for r in rows
        if r["kind"] == kind and r["layout"] == layout
    }
    hybrid = by_dir["hybrid"]["edges_scanned"]
    return by_dir["top-down"]["edges_scanned"] / max(1, hybrid)


def _print_rows(rows: list[dict]) -> None:
    for row in rows:
        print(
            f"  {row['scenario']:>22}  edges={row['edges_scanned']:>9}  "
            f"sim={float.fromhex(row['sim_s']):.6f}s  "
            f"bu-levels={row['bottom_up_levels']}  "
            f"match={'yes' if row['levels_match_top_down'] else 'NO'}"
        )


# --------------------------------------------------------------------- #
# pytest mode: the qualitative shape
# --------------------------------------------------------------------- #
def test_hybrid_direction(once):
    rows = once(_measure, TINY, TINY_LAYOUTS)
    emit(
        "Direction-optimizing BFS  traversed edges (tiny workloads)",
        "\n".join(
            f"{r['scenario']:>22}: {r['edges_scanned']} edges, "
            f"{r['bottom_up_levels']} bottom-up levels"
            for r in rows
        ),
    )
    # Correctness before economics: every direction labels every vertex
    # with exactly the top-down levels.
    assert all(r["levels_match_top_down"] for r in rows)
    # Hybrid actually switched on the scale-free workload...
    assert all(
        r["bottom_up_levels"] > 0
        for r in rows
        if r["kind"] == "rmat" and r["direction"] == "hybrid"
    )
    # ...and pays for itself: the reference reduction on both layouts.
    assert _reduction(rows, "rmat", "2d") >= RMAT_REDUCTION_BAR
    assert _reduction(rows, "rmat", "1d") >= RMAT_REDUCTION_BAR
    # Hybrid never scans *more* than top-down by an order of magnitude on
    # the Poisson workload either (the switch is allowed to stay put).
    assert _reduction(rows, "poisson", "2d") > 0.5


# --------------------------------------------------------------------- #
# script mode: the regression baseline (BENCH_hybrid.json)
# --------------------------------------------------------------------- #
def _check(report: dict, baseline_path: Path, tolerance: float) -> int:
    import json

    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update-baseline first")
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    key = "tiny" if report["tiny"] else "full"
    expected = baseline.get(key)
    if expected is None:
        print(f"baseline has no {key!r} section; run with --update-baseline")
        return 2
    want = {row["scenario"]: row for row in expected}
    failures = []
    for row in report["results"]:
        base = want.get(row["scenario"])
        if base is None:
            failures.append(f"{row['scenario']}: not in baseline")
            continue
        for field in ("edges_scanned",):
            got, exp = row[field], base[field]
            if exp and (got - exp) / exp > tolerance:
                failures.append(
                    f"{row['scenario']}: {field} regressed "
                    f"{exp} -> {got} (+{100 * (got - exp) / exp:.1f}%)"
                )
        got_s = float.fromhex(row["sim_s"])
        exp_s = float.fromhex(base["sim_s"])
        if exp_s and (got_s - exp_s) / exp_s > tolerance:
            failures.append(
                f"{row['scenario']}: sim_s regressed "
                f"{exp_s:.6f} -> {got_s:.6f} (+{100 * (got_s - exp_s) / exp_s:.1f}%)"
            )
    if failures:
        print(f"direction baseline DIVERGED (tolerance {100 * tolerance:.0f}%):")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"direction report within {100 * tolerance:.0f}% of the committed baseline"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke size instead of the full workloads")
    parser.add_argument("--check", action="store_true",
                        help="fail on >tolerance regression vs the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative regression (default 0.30)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="merge this run's section into the baseline file")
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_hybrid.json")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write this run's report here")
    args = parser.parse_args(argv)

    size = "tiny" if args.tiny else "full"
    specs = TINY if args.tiny else FULL
    layouts = TINY_LAYOUTS if args.tiny else LAYOUTS
    print(f"direction-optimizing sweep ({size}: {DIRECTIONS} x {list(specs)})")
    rows = _measure(specs, layouts)
    _print_rows(rows)
    report = {"tiny": args.tiny, "results": rows}

    # Hard gates, independent of the baseline: correctness and the 2x bar.
    if not all(row["levels_match_top_down"] for row in rows):
        print("FATAL: a direction diverged from the top-down level labels")
        return 1
    reduction = _reduction(rows, "rmat", "2d")
    print(f"reference R-MAT 2D edge reduction: {reduction:.2f}x "
          f"(bar {RMAT_REDUCTION_BAR:.1f}x)")
    if reduction < RMAT_REDUCTION_BAR:
        print("FATAL: hybrid lost its traversed-edge advantage on R-MAT")
        return 1

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=1), encoding="utf-8")
        print(f"report written to {args.output}")
    if args.update_baseline:
        merged = (
            json.loads(args.baseline.read_text(encoding="utf-8"))
            if args.baseline.exists() else {}
        )
        merged[size] = rows
        args.baseline.write_text(json.dumps(merged, indent=1), encoding="utf-8")
        print(f"baseline section {size!r} written to {args.baseline}")
        return 0
    if args.check:
        return _check(report, args.baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
