"""Section 3.1 — analytic message-length bounds, evaluated at paper scale.

No scaling-down is needed: these are the paper's own closed-form
expectations, computed at the real design points (n up to 3.2e9,
P = 32768), plus a consistency check of the model against the simulator at
laptop scale.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.model import MessageLengthModel
from repro.harness.report import format_table


def test_bounds_at_paper_scale(once):
    def build():
        rows = []
        for vpr, k in [(100_000, 10.0), (20_000, 50.0), (10_000, 100.0), (5_000, 200.0)]:
            p = 32_768
            model = MessageLengthModel(n=vpr * p, k=k, rows=128, cols=256)
            rows.append(
                [
                    f"|V|={vpr},k={int(k)}",
                    f"{model.fold_1d:.0f}",
                    f"{model.expand_2d:.0f}",
                    f"{model.fold_2d:.0f}",
                    f"{model.expand_2d_dense:.0f}",
                    f"{model.per_processor_bound:.0f}",
                ]
            )
        return rows

    rows = once(build)
    emit(
        "Section 3.1  expected per-processor message lengths at P=32768 (128x256)",
        format_table(
            ["design point", "1D fold", "2D expand", "2D fold", "2D dense expand", "n/P"],
            rows,
        ),
    )
    for row in rows:
        expand, dense = float(row[2]), float(row[4])
        # The sparse expand always beats the dense all-gather.
        assert expand <= dense

    # O(n/P) scalability: growing P with n/P fixed must not grow the bound.
    lengths = []
    for p, rc in [(1024, (32, 32)), (4096, (64, 64)), (32768, (128, 256))]:
        model = MessageLengthModel(n=100_000 * p, k=10.0, rows=rc[0], cols=rc[1])
        lengths.append(model.expand_2d + model.fold_2d)
    assert max(lengths) < 2.5 * min(lengths)


def test_model_predicts_simulated_worst_case(once):
    """Cross-check: simulator's total 1D fold traffic obeys the gamma model."""
    from repro.analysis.model import expected_fold_length_1d
    from repro.api import build_engine
    from repro.graph.generators import poisson_random_graph
    from repro.types import GraphSpec, GridShape

    n, k, p = 6000, 8.0, 8

    def measure():
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=4))
        engine = build_engine(graph, GridShape(p, 1), layout="1d")
        engine.start(0)
        while engine.step():
            pass
        return float(engine.comm.stats.volume_per_level("fold").sum())

    measured = once(measure)
    predicted = expected_fold_length_1d(n, k, p) * p
    emit(
        "Section 3.1  model vs simulation (total 1D fold volume)",
        f"measured={measured:.0f}  model-bound={predicted:.0f}  "
        f"ratio={measured / predicted:.2f}",
    )
    assert measured <= 1.25 * predicted
    assert measured >= 0.2 * predicted
