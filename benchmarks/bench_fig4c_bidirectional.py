"""Figure 4.c — bi-directional vs uni-directional BFS, weak scaling (k=10).

Paper: bi-directional search time is at worst ~33% of uni-directional and
scales with the same log P factor, because it walks a shorter distance and
moves orders of magnitude fewer vertices.  Here: P in {4, 16, 64},
|V|/rank = 500, k = 10, random s-t pairs.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.harness.figures import fig4c_bidirectional
from repro.harness.report import format_table

P_VALUES = [4, 16, 64]


def test_fig4c_bidirectional_vs_unidirectional(once):
    rows = once(fig4c_bidirectional, P_VALUES, 500, 10.0, searches=4)
    table = [
        [p, f"{uni:.6f}", f"{bi:.6f}", f"{bi / uni:.2f}"] for p, uni, bi in rows
    ]
    emit(
        "Figure 4.c  uni vs bi-directional (|V|=500/rank, k=10)",
        format_table(["P", "uni(s)", "bi(s)", "bi/uni"], table),
    )
    ratios = np.array([bi / uni for _p, uni, bi in rows])
    # Shape 1: bi-directional wins at every P.
    assert (ratios < 1.0).all()
    # Shape 2: the win is substantial (paper: down to ~1/3); demand at
    # least a 25% saving somewhere on the sweep.
    assert ratios.min() < 0.75
    # Shape 3: both curves grow with P (weak scaling) — check the uni one.
    unis = [uni for _p, uni, _bi in rows]
    assert unis[-1] > unis[0]
