"""Ablation — fold/expand collective algorithm choice (DESIGN.md section 5).

Compares the four fold implementations (direct all-to-all, plain ring,
ring reduce-scatter with set-union, two-phase grouped rings) and the three
expand implementations on the same search, reporting simulated time,
message count, and wire volume.  Expected: the union variants move fewer
vertices than the plain ring; the two-phase variants use far fewer
messages than the single ring; all produce identical levels.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.graph.generators import poisson_random_graph
from repro.harness.report import format_table
from repro.types import GraphSpec, GridShape

GRID = GridShape(8, 8)
SPEC = GraphSpec(n=16_000, k=12, seed=6)

FOLDS = ["direct", "ring", "union-ring", "two-phase", "bruck"]
EXPANDS = ["direct", "ring", "two-phase", "recursive-doubling"]


def test_fold_ablation(once):
    def run_all():
        graph = poisson_random_graph(SPEC)
        out = {}
        for fold in FOLDS:
            opts = BfsOptions(fold_collective=fold)
            result = run_bfs(build_engine(graph, GRID, opts=opts), 0)
            out[fold] = result
        return out

    results = once(run_all)
    rows = [
        [
            fold,
            f"{r.elapsed:.6f}",
            f"{r.comm_time:.6f}",
            r.stats.total_messages,
            r.stats.total_processed,
        ]
        for fold, r in results.items()
    ]
    emit(
        "Ablation  fold collective (n=16000, k=12, 8x8 mesh)",
        format_table(["fold", "time(s)", "comm(s)", "messages", "wire vertices"], rows),
    )
    levels0 = results[FOLDS[0]].levels
    for fold in FOLDS[1:]:
        assert np.array_equal(results[fold].levels, levels0)
    # Union reduction lowers wire volume vs the plain ring.
    assert results["union-ring"].stats.total_processed < results["ring"].stats.total_processed
    # Grouped rings use fewer messages than the full-length ring, and the
    # logarithmic Bruck schedule fewer still.
    assert results["two-phase"].stats.total_messages < results["ring"].stats.total_messages
    assert results["bruck"].stats.total_messages < results["ring"].stats.total_messages


def test_expand_ablation(once):
    def run_all():
        graph = poisson_random_graph(SPEC)
        out = {}
        for expand in EXPANDS:
            opts = BfsOptions(expand_collective=expand)
            result = run_bfs(build_engine(graph, GRID, opts=opts), 0)
            out[expand] = result
        return out

    results = once(run_all)
    rows = [
        [
            expand,
            f"{r.elapsed:.6f}",
            f"{r.comm_time:.6f}",
            r.stats.total_messages,
            r.stats.total_processed,
        ]
        for expand, r in results.items()
    ]
    emit(
        "Ablation  expand collective (n=16000, k=12, 8x8 mesh)",
        format_table(["expand", "time(s)", "comm(s)", "messages", "wire vertices"], rows),
    )
    levels0 = results[EXPANDS[0]].levels
    for expand in EXPANDS[1:]:
        assert np.array_equal(results[expand].levels, levels0)
    # The filtered direct expand ships fewer vertices than the forwarding
    # rings, which cannot filter per destination (Section 2.2).
    assert (
        results["direct"].stats.total_processed
        <= results["ring"].stats.total_processed
    )
