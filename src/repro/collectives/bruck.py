"""Logarithmic collectives: Bruck all-to-all and recursive-doubling all-gather.

The paper's ring collectives pay O(G) rounds with nearest-neighbour
traffic — ideal on a torus when bandwidth dominates.  The classic
alternative trades volume for latency: the Bruck algorithm finishes a
personalized all-to-all in ceil(log2 G) rounds (each message is forwarded
up to log G times), and recursive doubling finishes an all-gather in the
same number of rounds.  Both work for any group size, not just powers of
two.  They are included as *ablation baselines*: on BlueGene/L-sized
messages the paper's bandwidth-friendly rings should win, and the
collective ablation benchmark shows exactly that trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import (
    ExpandCollective,
    FoldCollective,
    Schedule,
    register_expand,
    register_fold,
)
from repro.runtime.stats import CommStats


@register_fold
class BruckFold(FoldCollective):
    """Bruck personalized all-to-all: ceil(log2 G) rounds of combined messages.

    Round ``j`` moves, from rank ``i`` to rank ``(i + 2^j) mod G``, every
    chunk whose remaining hop count has bit ``j`` set — after all rounds
    each chunk has travelled ``(d - src) mod G`` positions in binary.
    """

    name = "bruck"

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str,
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        # carrying[g] = list of (remaining_hops, payload)
        carrying: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(size)]
        for g, per_dest in enumerate(outboxes):
            for d, payload in per_dest.items():
                if not (0 <= d < size):
                    raise IndexError(f"destination index {d} outside group of size {size}")
                if np.size(payload) == 0:
                    continue
                hops = (d - g) % size
                if hops == 0:
                    received[g].append(np.asarray(payload))
                else:
                    carrying[g].append((hops, np.asarray(payload)))

        step = 1
        while step < size:
            outbox: dict[int, dict[int, np.ndarray]] = {}
            moving: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(size)]
            staying: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(size)]
            for g in range(size):
                to_send = [(h, p) for h, p in carrying[g] if h & step]
                staying[g] = [(h, p) for h, p in carrying[g] if not h & step]
                if to_send:
                    dst = (g + step) % size
                    outbox.setdefault(group[g], {})[group[dst]] = np.concatenate(
                        [p for _h, p in to_send]
                    )
                    moving[dst].extend((h - step, p) for h, p in to_send)
            yield outbox
            for g in range(size):
                carrying[g] = staying[g]
                for hops, payload in moving[g]:
                    if hops == 0:
                        received[g].append(payload)
                        stats.record_delivery(group[g], int(payload.size), phase)
                    else:
                        carrying[g].append((hops, payload))
            step <<= 1
        if any(carrying):  # pragma: no cover - binary schedule is exhaustive
            raise RuntimeError("bruck fold finished with undelivered chunks")
        return received


@register_expand
class RecursiveDoublingExpand(ExpandCollective):
    """All-gather by recursive doubling (Bruck variant for any group size).

    Round ``j``: rank ``i`` sends the first ``min(2^j, G - 2^j)`` of its
    gathered blocks to ``(i - 2^j) mod G`` — the gathered set doubles every
    round, completing in ceil(log2 G) rounds.
    """

    name = "recursive-doubling"

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        contributions: list[np.ndarray],
        phase: str,
        dest_filter,  # forwarding scheme: per-destination filter unusable
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        if size == 1:
            return received
        # gathered[g] = payloads in origin order g, g+1, g+2, ... (mod size).
        # Invariant: every rank holds the same count `have` of consecutive
        # origins starting at itself.
        gathered: list[list[np.ndarray]] = [
            [np.asarray(contributions[g])] for g in range(size)
        ]
        step = 1
        while step < size:
            have = min(step, size)
            count = min(have, size - have)  # what the receiver still lacks
            outbox: dict[int, dict[int, np.ndarray]] = {}
            incoming: list[list[np.ndarray]] = [[] for _ in range(size)]
            for g in range(size):
                dst = (g - step) % size
                to_send = gathered[g][:count]
                payloads = [p for p in to_send if np.size(p)]
                if payloads:
                    outbox.setdefault(group[g], {})[group[dst]] = np.concatenate(payloads)
                incoming[dst] = to_send
            yield outbox
            for g in range(size):
                for payload in incoming[g]:
                    gathered[g].append(payload)
                    if np.size(payload):
                        received[g].append(payload)
                        stats.record_delivery(group[g], int(np.size(payload)), phase)
            step <<= 1
        return received
