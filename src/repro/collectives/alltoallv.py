"""Direct personalized all-to-all fold: one round, every pair communicates.

This is the "straightforward use of all-to-all" the paper starts from
(Section 2.2): no in-flight reduction, so duplicate vertices travel the
wire and are only merged at the receiver.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import FoldCollective, Schedule, register_fold
from repro.runtime.stats import CommStats


@register_fold
class DirectFold(FoldCollective):
    """Single-round personalized all-to-all (alltoallv)."""

    name = "direct"

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str,
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        outbox: dict[int, dict[int, np.ndarray]] = {}
        for g, per_dest in enumerate(outboxes):
            for d, payload in per_dest.items():
                if not (0 <= d < size):
                    raise IndexError(f"destination index {d} outside group of size {size}")
                if np.size(payload) == 0:
                    continue
                if d == g:
                    received[g].append(np.asarray(payload))  # local hand-off
                    continue
                outbox.setdefault(group[g], {})[group[d]] = payload
        inbox = yield outbox
        rank_to_index = {rank: idx for idx, rank in enumerate(group)}
        for dst_rank, deliveries in inbox.items():
            for _src, payload in deliveries:
                received[rank_to_index[dst_rank]].append(payload)
                stats.record_delivery(dst_rank, int(payload.size), phase)
        return received
