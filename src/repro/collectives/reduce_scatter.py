"""Ring reduce-scatter with set-union reduction — the paper's *union-fold*.

Each destination's chunk travels the full ring exactly once, starting at
the destination's successor; every rank it visits unions its own
contribution in, eliminating duplicate vertex ids while the message is in
flight (Section 2.2 "reduce-scatter ... the reduction operation is a
set-union" and Section 3.2.2).  Each rank sends exactly one chunk per
round, so the load is perfectly balanced: G-1 rounds of one message each.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import FoldCollective, Schedule, _empty, register_fold
from repro.collectives.union import union_merge
from repro.runtime.stats import CommStats


@register_fold
class UnionRingFold(FoldCollective):
    """Reduce-scatter over a ring with set-union as the reduction operation."""

    name = "union-ring"

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str,
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        if size == 1:
            own = outboxes[0].get(0, _empty())
            if np.size(own):
                merged, dups = union_merge(own)
                stats.record_duplicates(dups)
                received[0].append(merged)
            return received

        def contribution(g: int, d: int) -> np.ndarray:
            return np.asarray(outboxes[g].get(d, _empty()))

        # in_hand[g] = (dest_index, accumulated chunk) currently held by g.
        # Chunk for destination d starts at rank (d+1) % size, already
        # reduced with the starter's own contribution.
        in_hand: list[tuple[int, np.ndarray]] = [(0, _empty())] * size
        for d in range(size):
            starter = (d + 1) % size
            merged, dups = union_merge(contribution(starter, d))
            stats.record_duplicates(dups)
            in_hand[starter] = (d, merged)

        for _round in range(size - 1):
            outbox: dict[int, dict[int, np.ndarray]] = {}
            for g in range(size):
                _d, chunk = in_hand[g]
                if np.size(chunk):
                    outbox.setdefault(group[g], {})[group[(g + 1) % size]] = chunk
            yield outbox
            nxt_hand: list[tuple[int, np.ndarray]] = [(0, _empty())] * size
            for g in range(size):
                d, chunk = in_hand[(g - 1) % size]  # what g just received
                if d == g:
                    # Final arrival: fold in the destination's own contribution.
                    stats.record_delivery(group[g], int(np.size(chunk)), phase)
                    merged, dups = union_merge(chunk, contribution(g, g))
                    stats.record_duplicates(dups)
                    if merged.size:
                        received[g].append(merged)
                    nxt_hand[g] = (d, _empty())
                else:
                    merged, dups = union_merge(chunk, contribution(g, d))
                    stats.record_duplicates(dups)
                    nxt_hand[g] = (d, merged)
            in_hand = nxt_hand
        return received
