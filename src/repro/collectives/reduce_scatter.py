"""Ring reduce-scatter with set-union reduction — the paper's *union-fold*.

Each destination's chunk travels the full ring exactly once, starting at
the destination's successor; every rank it visits unions its own
contribution in, eliminating duplicate vertex ids while the message is in
flight (Section 2.2 "reduce-scatter ... the reduction operation is a
set-union" and Section 3.2.2).  Each rank sends exactly one chunk per
round, so the load is perfectly balanced: G-1 rounds of one message each.

Equal-size groups (the engines' row groups, and the 1D all-ranks group)
run through a *batched* driver: all groups' per-round set-unions collapse
into one segmented unique, and each round issues one merged exchange with
the same message order, payloads, and statistics as the generator
schedule — the hot path of every union-fold BFS level without a Python
loop per (group, member, round).
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import (
    FoldCollective,
    Schedule,
    _empty,
    _validate_disjoint,
    _validate_group,
    register_fold,
)
from repro.collectives.union import union_merge
from repro.runtime.comm import Communicator
from repro.runtime.stats import CommStats
from repro.types import as_vertex_array
from repro.utils.segmented import segmented_unique


@register_fold
class UnionRingFold(FoldCollective):
    """Reduce-scatter over a ring with set-union as the reduction operation."""

    name = "union-ring"
    #: the engines may hand this fold pre-packed CSR outboxes and take the
    #: merged result back as CSR (:meth:`fold_many_csr`) — no per-rank
    #: dict packing or nested received lists on the hot path
    supports_csr = True

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str,
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        if size == 1:
            own = outboxes[0].get(0, _empty())
            if np.size(own):
                merged, dups = union_merge(own)
                stats.record_duplicates(dups)
                received[0].append(merged)
            return received

        def contribution(g: int, d: int) -> np.ndarray:
            return np.asarray(outboxes[g].get(d, _empty()))

        # in_hand[g] = (dest_index, accumulated chunk) currently held by g.
        # Chunk for destination d starts at rank (d+1) % size, already
        # reduced with the starter's own contribution.
        in_hand: list[tuple[int, np.ndarray]] = [(0, _empty())] * size
        for d in range(size):
            starter = (d + 1) % size
            merged, dups = union_merge(contribution(starter, d))
            stats.record_duplicates(dups)
            in_hand[starter] = (d, merged)

        for _round in range(size - 1):
            outbox: dict[int, dict[int, np.ndarray]] = {}
            for g in range(size):
                _d, chunk = in_hand[g]
                if np.size(chunk):
                    outbox.setdefault(group[g], {})[group[(g + 1) % size]] = chunk
            yield outbox
            nxt_hand: list[tuple[int, np.ndarray]] = [(0, _empty())] * size
            for g in range(size):
                d, chunk = in_hand[(g - 1) % size]  # what g just received
                if d == g:
                    # Final arrival: fold in the destination's own contribution.
                    stats.record_delivery(group[g], int(np.size(chunk)), phase)
                    merged, dups = union_merge(chunk, contribution(g, g))
                    stats.record_duplicates(dups)
                    if merged.size:
                        received[g].append(merged)
                    nxt_hand[g] = (d, _empty())
                else:
                    merged, dups = union_merge(chunk, contribution(g, d))
                    stats.record_duplicates(dups)
                    nxt_hand[g] = (d, merged)
            in_hand = nxt_hand
        return received

    # ------------------------------------------------------------------ #
    # batched driver (equal-size groups)
    # ------------------------------------------------------------------ #
    def fold(
        self,
        comm: Communicator,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str = "fold",
    ) -> list[list[np.ndarray]]:
        return self.fold_many(comm, [group], [outboxes], phase)[0]

    def fold_many(
        self,
        comm: Communicator,
        groups: list[list[int]],
        outboxes_per_group: list[list[dict[int, np.ndarray]]],
        phase: str = "fold",
    ) -> list[list[list[np.ndarray]]]:
        sizes = {len(g) for g in groups}
        if len(sizes) != 1 or sizes == {1}:
            return super().fold_many(comm, groups, outboxes_per_group, phase)
        _validate_disjoint(groups, len(outboxes_per_group))
        for group, outboxes in zip(groups, outboxes_per_group):
            _validate_group(group, len(outboxes))
        size = sizes.pop()
        num_groups = len(groups)
        nseg = num_groups * size

        # Pack every contribution into one CSR indexed slot = seg * size + d
        # (member seg's payload for in-group destination d).
        slot_parts: list[tuple[int, np.ndarray]] = []
        for i, outboxes in enumerate(outboxes_per_group):
            for g, member_outbox in enumerate(outboxes):
                base_slot = (i * size + g) * size
                for d, a in member_outbox.items():
                    arr = as_vertex_array(a)
                    if arr.size:
                        slot_parts.append((base_slot + d, arr))
        slot_parts.sort(key=lambda p: p[0])
        csizes = np.zeros(nseg * size, dtype=np.int64)
        if slot_parts:
            cflat = np.concatenate([a for _slot, a in slot_parts])
            for slot, a in slot_parts:
                csizes[slot] = a.size
        else:
            cflat = _empty()
        if cflat.size and int(cflat.min()) < 0:
            # The offset-key segmented union needs non-negative values.
            return super().fold_many(comm, groups, outboxes_per_group, phase)
        flat, bounds = self.fold_many_csr(comm, groups, csizes, cflat, phase)
        received: list[list[list[np.ndarray]]] = [
            [[] for _ in range(size)] for _ in range(num_groups)
        ]
        for i in range(num_groups):
            base = i * size
            for g in range(size):
                merged = flat[bounds[base + g] : bounds[base + g + 1]]
                if merged.size:
                    received[i][g].append(merged)
        return received

    def fold_many_csr(
        self,
        comm: Communicator,
        groups: list[list[int]],
        csizes: np.ndarray,
        cflat: np.ndarray,
        phase: str = "fold",
        sieve=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The batched driver on pre-packed CSR outboxes.

        ``csizes[(i * size + g) * size + d]`` is the payload length member
        ``g`` of group ``i`` sends to in-group destination ``d``, and
        ``cflat`` holds the payloads back to back in slot order (values
        must be non-negative, e.g. vertex ids).  Groups must share one
        size.  Returns the merged per-member unions as CSR ``(flat,
        bounds)`` over segment ``seg = i * size + g`` — the same sets,
        message schedule, and statistics as :meth:`fold_many`, without
        building P outbox dicts or nested received lists.

        ``sieve`` is an optional :class:`repro.bfs.sieve.PooledSieve`:
        every contribution is probed against its sender's shadow of the
        destination's visited set before the ring starts, and candidates
        the destination already knows are visited never enter a chunk.
        Self-addressed payloads always pass (a sieve never shadows a
        rank's own vertices), so dropped candidates could only ever have
        been duplicates at the destination — the merged unions' *fresh*
        content is unchanged.
        """
        size = len(groups[0])
        num_groups = len(groups)
        nseg = num_groups * size
        stats = comm.stats
        seg_ids = np.arange(nseg, dtype=np.int64)
        if sieve is not None and cflat.size:
            member_rank_all = np.asarray(groups, dtype=np.int64).ravel()
            slot_all = np.repeat(np.arange(nseg * size, dtype=np.int64), csizes)
            senders = member_rank_all[slot_all // size]
            keep = sieve.keep_mask(senders, cflat)
            comm.charge_compute_many(
                hash_lookups=np.bincount(senders, minlength=comm.nranks)
            )
            dropped = int(keep.size - keep.sum())
            if dropped:
                stats.record_sieved(dropped)
                cflat = cflat[keep]
                csizes = np.bincount(slot_all[keep], minlength=csizes.size)
        domain = int(cflat.max()) + 1 if cflat.size else 1
        if size == 1:
            # Single-member groups exchange nothing: each member's result
            # is the union of its self-addressed payload.
            segs = np.repeat(seg_ids, csizes)
            flat, bounds, dups, _ = segmented_unique(cflat, segs, nseg, domain)
            stats.record_duplicates(int(dups))
            return flat, bounds
        member_rank = np.asarray(groups, dtype=np.int64).ravel()
        participants = np.sort(member_rank)
        if (
            participants.size == comm.nranks
            and participants[0] == 0
            and participants[-1] == comm.nranks - 1
            and bool((np.diff(participants) == 1).all())
        ):
            # The groups cover the whole machine (the engines' row groups
            # always do): a full barrier needs no participant indexing.
            participants = None
        g_of = seg_ids % size
        seg_base = seg_ids - g_of
        succ_seg = seg_base + (g_of + 1) % size
        succ_rank = member_rank[succ_seg]
        # The chunk member g receives each round is the one its ring
        # predecessor held before the exchange.
        pred_seg = seg_base + (g_of - 1) % size

        def batched_union(values, segs):
            flat, bounds, dups, seg_of = segmented_unique(
                values, segs, nseg, domain
            )
            stats.record_duplicates(int(dups))
            return flat, bounds, seg_of

        # Pre-slice every contribution by the round that unions it in:
        # member g folds its payload for destination d at priming when
        # d == (g-1) % size, in ring round r when d == (g-2-r) % size, and
        # in the final round when d == g — i.e. consumption round
        # rk = ((g-2-d) % size + 1) % size (0 = priming, r+1 = round r).
        # One stable sort by (rk, seg) replaces a per-round gather; within
        # each (rk, seg) block the payload keeps its slot order.
        slot_e = np.repeat(np.arange(nseg * size, dtype=np.int64), csizes)
        seg_e = slot_e // size
        rk_e = ((seg_e % size - 2 - slot_e % size) % size + 1) % size
        order = np.argsort(rk_e * nseg + seg_e, kind="stable")
        own_flat = cflat[order]
        own_seg = seg_e[order]
        round_off = np.searchsorted(
            rk_e[order], np.arange(size + 1, dtype=np.int64)
        )

        # Priming: the chunk for destination d starts at member (d+1) % size,
        # reduced with the starter's own contribution — i.e. member g starts
        # out holding its payload for destination (g-1) % size.
        flat, bounds, flat_seg = batched_union(
            own_flat[: round_off[1]], own_seg[: round_off[1]]
        )

        # Every round's wire pairs come from the fixed member -> successor
        # ring; pre-analyse their routes once so rounds charge the network
        # by indexing the population (no per-round route resolution).
        population = comm.network.prepare_pairs(member_rank, succ_rank)

        obs = comm.obs
        for round_idx in range(size - 1):
            # Message order matches the lockstep driver's merged outbox:
            # groups in order, members ascending, empty chunks skipped.
            chunk_sizes = np.diff(bounds)
            round_span = (
                obs.begin(
                    f"round {round_idx}", cat="round", phase=phase, groups=num_groups
                )
                if obs.enabled
                else None
            )
            if chunk_sizes.all():
                # No empty chunk: the round is the whole ring population
                # in order — skip the subset indexing entirely.
                comm.exchange_arrays(
                    member_rank,
                    succ_rank,
                    flat,
                    bounds[:-1],
                    bounds[1:],
                    phase,
                    participants=participants,
                    population=population,
                    pop_idx=None,
                )
            else:
                nonempty = np.flatnonzero(chunk_sizes)
                comm.exchange_arrays(
                    member_rank[nonempty],
                    succ_rank[nonempty],
                    flat,
                    bounds[nonempty],
                    bounds[nonempty + 1],
                    phase,
                    participants=participants,
                    population=population,
                    pop_idx=nonempty,
                )
            if round_span is not None:
                obs.end(round_span)
            final = round_idx == size - 2
            if final:
                stats.record_delivery_bulk(member_rank, chunk_sizes[pred_seg], phase)
            # Received chunks need no gather: every element of ``flat``
            # lands on its holder's ring successor, so only the segment
            # tags change (the union sorts anyway).
            in_segs = succ_seg[flat_seg]
            a, b = round_off[round_idx + 1], round_off[round_idx + 2]
            union_span = obs.begin("union", cat="phase") if obs.enabled else None
            flat, bounds, flat_seg = batched_union(
                np.concatenate((flat, own_flat[a:b])),
                np.concatenate((in_segs, own_seg[a:b])),
            )
            if union_span is not None:
                obs.end(union_span)
        # After the last union every segment holds its member's final
        # merged set — exactly what the final round delivered.
        return flat, bounds
