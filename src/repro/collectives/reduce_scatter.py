"""Ring reduce-scatter with set-union reduction — the paper's *union-fold*.

Each destination's chunk travels the full ring exactly once, starting at
the destination's successor; every rank it visits unions its own
contribution in, eliminating duplicate vertex ids while the message is in
flight (Section 2.2 "reduce-scatter ... the reduction operation is a
set-union" and Section 3.2.2).  Each rank sends exactly one chunk per
round, so the load is perfectly balanced: G-1 rounds of one message each.

Equal-size groups (the engines' row groups, and the 1D all-ranks group)
run through a *batched* driver: all groups' per-round set-unions collapse
into one segmented unique, and each round issues one merged exchange with
the same message order, payloads, and statistics as the generator
schedule — the hot path of every union-fold BFS level without a Python
loop per (group, member, round).
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import (
    FoldCollective,
    Schedule,
    _empty,
    _validate_disjoint,
    _validate_group,
    register_fold,
)
from repro.collectives.union import union_merge
from repro.runtime.comm import Communicator
from repro.runtime.stats import CommStats
from repro.types import as_vertex_array
from repro.utils.segmented import gather_segments, segmented_unique


@register_fold
class UnionRingFold(FoldCollective):
    """Reduce-scatter over a ring with set-union as the reduction operation."""

    name = "union-ring"

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str,
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        if size == 1:
            own = outboxes[0].get(0, _empty())
            if np.size(own):
                merged, dups = union_merge(own)
                stats.record_duplicates(dups)
                received[0].append(merged)
            return received

        def contribution(g: int, d: int) -> np.ndarray:
            return np.asarray(outboxes[g].get(d, _empty()))

        # in_hand[g] = (dest_index, accumulated chunk) currently held by g.
        # Chunk for destination d starts at rank (d+1) % size, already
        # reduced with the starter's own contribution.
        in_hand: list[tuple[int, np.ndarray]] = [(0, _empty())] * size
        for d in range(size):
            starter = (d + 1) % size
            merged, dups = union_merge(contribution(starter, d))
            stats.record_duplicates(dups)
            in_hand[starter] = (d, merged)

        for _round in range(size - 1):
            outbox: dict[int, dict[int, np.ndarray]] = {}
            for g in range(size):
                _d, chunk = in_hand[g]
                if np.size(chunk):
                    outbox.setdefault(group[g], {})[group[(g + 1) % size]] = chunk
            yield outbox
            nxt_hand: list[tuple[int, np.ndarray]] = [(0, _empty())] * size
            for g in range(size):
                d, chunk = in_hand[(g - 1) % size]  # what g just received
                if d == g:
                    # Final arrival: fold in the destination's own contribution.
                    stats.record_delivery(group[g], int(np.size(chunk)), phase)
                    merged, dups = union_merge(chunk, contribution(g, g))
                    stats.record_duplicates(dups)
                    if merged.size:
                        received[g].append(merged)
                    nxt_hand[g] = (d, _empty())
                else:
                    merged, dups = union_merge(chunk, contribution(g, d))
                    stats.record_duplicates(dups)
                    nxt_hand[g] = (d, merged)
            in_hand = nxt_hand
        return received

    # ------------------------------------------------------------------ #
    # batched driver (equal-size groups)
    # ------------------------------------------------------------------ #
    def fold(
        self,
        comm: Communicator,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str = "fold",
    ) -> list[list[np.ndarray]]:
        return self.fold_many(comm, [group], [outboxes], phase)[0]

    def fold_many(
        self,
        comm: Communicator,
        groups: list[list[int]],
        outboxes_per_group: list[list[dict[int, np.ndarray]]],
        phase: str = "fold",
    ) -> list[list[list[np.ndarray]]]:
        sizes = {len(g) for g in groups}
        if len(sizes) != 1 or sizes == {1}:
            return super().fold_many(comm, groups, outboxes_per_group, phase)
        _validate_disjoint(groups, len(outboxes_per_group))
        for group, outboxes in zip(groups, outboxes_per_group):
            _validate_group(group, len(outboxes))
        size = sizes.pop()
        num_groups = len(groups)
        nseg = num_groups * size
        stats = comm.stats
        participants = sorted(rank for group in groups for rank in group)

        # Segment layout: seg = i * size + g for member g of group i.
        member_rank = np.array(groups, dtype=np.int64).ravel()
        seg_ids = np.arange(nseg, dtype=np.int64)
        g_of = seg_ids % size
        seg_base = seg_ids - g_of
        succ_rank = member_rank[seg_base + (g_of + 1) % size]
        # The chunk member g receives each round is the one its ring
        # predecessor held before the exchange.
        pred_seg = seg_base + (g_of - 1) % size

        # Pack every contribution into one CSR indexed slot = seg * size + d
        # (member seg's payload for in-group destination d).
        slot_parts: list[tuple[int, np.ndarray]] = []
        for i, outboxes in enumerate(outboxes_per_group):
            for g, member_outbox in enumerate(outboxes):
                base_slot = (i * size + g) * size
                for d, a in member_outbox.items():
                    arr = as_vertex_array(a)
                    if arr.size:
                        slot_parts.append((base_slot + d, arr))
        slot_parts.sort(key=lambda p: p[0])
        csizes = np.zeros(nseg * size, dtype=np.int64)
        if slot_parts:
            cflat = np.concatenate([a for _slot, a in slot_parts])
            for slot, a in slot_parts:
                csizes[slot] = a.size
        else:
            cflat = _empty()
        cbounds = np.concatenate(([0], np.cumsum(csizes)))
        if cflat.size and int(cflat.min()) < 0:
            # The offset-key segmented union needs non-negative values.
            return super().fold_many(comm, groups, outboxes_per_group, phase)
        domain = int(cflat.max()) + 1 if cflat.size else 1

        def batched_union(parts_values, parts_segs):
            values = (
                np.concatenate(parts_values) if parts_values else _empty()
            )
            segs = (
                np.concatenate(parts_segs)
                if parts_segs
                else np.empty(0, dtype=np.int64)
            )
            flat, bounds, dups = segmented_unique(values, segs, nseg, domain)
            stats.record_duplicates(int(dups.sum()))
            return flat, bounds

        # Priming: the chunk for destination d starts at member (d+1) % size,
        # reduced with the starter's own contribution — i.e. member g starts
        # out holding its payload for destination (g-1) % size.
        prime_vals, prime_segs, _ = gather_segments(
            cflat, cbounds, seg_ids * size + (g_of - 1) % size
        )
        flat, bounds = batched_union([prime_vals], [prime_segs])

        received: list[list[list[np.ndarray]]] = [
            [[] for _ in range(size)] for _ in range(num_groups)
        ]
        obs = comm.obs
        for round_idx in range(size - 1):
            # Message order matches the lockstep driver's merged outbox:
            # groups in order, members ascending, empty chunks skipped.
            chunk_sizes = np.diff(bounds)
            nonempty = np.flatnonzero(chunk_sizes)
            round_span = (
                obs.begin(
                    f"round {round_idx}", cat="round", phase=phase, groups=num_groups
                )
                if obs.enabled
                else None
            )
            comm.exchange_arrays(
                member_rank[nonempty],
                succ_rank[nonempty],
                flat,
                bounds[nonempty],
                bounds[nonempty + 1],
                phase,
                participants=participants,
            )
            if round_span is not None:
                obs.end(round_span)
            final = round_idx == size - 2
            if final:
                stats.record_delivery_bulk(member_rank, chunk_sizes[pred_seg], phase)
            in_vals, in_segs, _ = gather_segments(flat, bounds, pred_seg)
            d_vec = g_of if final else (g_of - 2 - round_idx) % size
            own_vals, own_segs, _ = gather_segments(
                cflat, cbounds, seg_ids * size + d_vec
            )
            union_span = obs.begin("union", cat="phase") if obs.enabled else None
            flat, bounds = batched_union([in_vals, own_vals], [in_segs, own_segs])
            if union_span is not None:
                obs.end(union_span)
            if final:
                for i in range(num_groups):
                    base = i * size
                    for g in range(size):
                        merged = flat[bounds[base + g] : bounds[base + g + 1]]
                        if merged.size:
                            received[i][g].append(merged)
        return received
