"""Direct expand: one round, every member sends its frontier to every peer.

With ``dest_filter`` this is the scalable variant of Section 2.2 — a
personalized all-to-all where each destination only receives the frontier
vertices for which it holds non-empty partial edge lists.  Without a
filter it degenerates to the unscalable dense all-gather the paper warns
about, kept as a baseline for the collective ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import ExpandCollective, Schedule, register_expand
from repro.runtime.stats import CommStats


@register_expand
class DirectExpand(ExpandCollective):
    """Single-round broadcast-style expand with optional per-destination filter."""

    name = "direct"

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        contributions: list[np.ndarray],
        phase: str,
        dest_filter,
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        outbox: dict[int, dict[int, np.ndarray]] = {}
        for g, payload in enumerate(contributions):
            for d in range(size):
                if d == g:
                    continue
                to_send = payload if dest_filter is None else dest_filter(g, d)
                if np.size(to_send) == 0:
                    continue
                outbox.setdefault(group[g], {})[group[d]] = to_send
        inbox = yield outbox
        rank_to_index = {rank: idx for idx, rank in enumerate(group)}
        for dst_rank, deliveries in inbox.items():
            for _src, payload in deliveries:
                received[rank_to_index[dst_rank]].append(payload)
                stats.record_delivery(dst_rank, int(payload.size), phase)
        return received
