"""Direct expand: one round, every member sends its frontier to every peer.

With ``dest_filter`` this is the scalable variant of Section 2.2 — a
personalized all-to-all where each destination only receives the frontier
vertices for which it holds non-empty partial edge lists.  Without a
filter it degenerates to the unscalable dense all-gather the paper warns
about, kept as a baseline for the collective ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import (
    ExpandCollective,
    Schedule,
    _validate_disjoint,
    _validate_group,
    register_expand,
)
from repro.runtime.comm import Communicator, _as_payload
from repro.runtime.stats import CommStats
from repro.types import VERTEX_DTYPE


@register_expand
class DirectExpand(ExpandCollective):
    """Single-round broadcast-style expand with optional per-destination filter."""

    name = "direct"

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        contributions: list[np.ndarray],
        phase: str,
        dest_filter,
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        outbox: dict[int, dict[int, np.ndarray]] = {}
        for g, payload in enumerate(contributions):
            for d in range(size):
                if d == g:
                    continue
                to_send = payload if dest_filter is None else dest_filter(g, d)
                if np.size(to_send) == 0:
                    continue
                outbox.setdefault(group[g], {})[group[d]] = to_send
        inbox = yield outbox
        rank_to_index = {rank: idx for idx, rank in enumerate(group)}
        for dst_rank, deliveries in inbox.items():
            for _src, payload in deliveries:
                received[rank_to_index[dst_rank]].append(payload)
                stats.record_delivery(dst_rank, int(payload.size), phase)
        return received

    def expand_many(
        self,
        comm: Communicator,
        groups: list[list[int]],
        contributions_per_group: list[list[np.ndarray]],
        phase: str = "expand",
        dest_filters: list | None = None,
    ) -> list[list[list[np.ndarray]]]:
        # Single-round collective: the whole lockstep run is one merged
        # exchange, so build its message arrays directly.  Fault injection
        # decides deliveries per chunk — that needs the generator path.
        if comm.faults is not None:
            return super().expand_many(
                comm, groups, contributions_per_group, phase, dest_filters
            )
        _validate_disjoint(groups, len(contributions_per_group))
        received: list[list[list[np.ndarray]]] = []
        srcs: list[int] = []
        dsts: list[int] = []
        payloads: list[np.ndarray] = []
        for idx, (group, contributions) in enumerate(
            zip(groups, contributions_per_group)
        ):
            _validate_group(group, len(contributions))
            dest_filter = dest_filters[idx] if dest_filters is not None else None
            size = len(group)
            group_received: list[list[np.ndarray]] = [[] for _ in range(size)]
            for g in range(size):
                payload = contributions[g]
                for d in range(size):
                    if d == g:
                        continue
                    to_send = payload if dest_filter is None else dest_filter(g, d)
                    if np.size(to_send) == 0:
                        continue
                    to_send = _as_payload(to_send)
                    srcs.append(group[g])
                    dsts.append(group[d])
                    payloads.append(to_send)
                    group_received[d].append(to_send)
            received.append(group_received)
        sizes = np.array([p.size for p in payloads], dtype=np.int64)
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        flat = np.concatenate(payloads) if payloads else np.empty(0, VERTEX_DTYPE)
        dst_arr = np.array(dsts, dtype=np.int64)
        comm.exchange_arrays(
            np.array(srcs, dtype=np.int64),
            dst_arr,
            flat,
            bounds[:-1],
            bounds[1:],
            phase,
            participants=sorted(rank for group in groups for rank in group),
        )
        comm.stats.record_delivery_bulk(dst_arr, sizes, phase)
        return received
