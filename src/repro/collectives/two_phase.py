"""The paper's two-phase grouped-ring collectives (Section 3.2.2).

The communicator group (a processor-row for fold, a processor-column for
expand) is arranged as an ``a x b`` subgrid; ring diameter shrinks from
``G-1`` to ``O(a + b)`` by running rings *within* row/column subgroups in
parallel:

* **fold** (Figure 2): phase 1 circulates, within each subgrid row, one
  bundle per subgrid *column group*, set-union-reducing the
  per-final-destination sub-chunks as they travel; phase 2 delivers each
  reduced sub-chunk point-to-point within the column group.
* **expand** (Figure 3): phase 1 exchanges contributions within each
  column group; phase 2 circulates the column-group bundles around each
  row ring.

Both run in ``O(a + b)`` rounds — the paper's ``O(m + n)`` for an
``m x n`` processor grid.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import (
    ExpandCollective,
    FoldCollective,
    Schedule,
    _empty,
    register_expand,
    register_fold,
)
from repro.collectives.union import union_merge
from repro.runtime.stats import CommStats


def subgrid_shape(size: int) -> tuple[int, int]:
    """Most-square factorisation ``(a, b)`` of ``size`` with ``a <= b``."""
    if size < 1:
        raise ValueError(f"group size must be positive, got {size}")
    a = int(size**0.5)
    while size % a:
        a -= 1
    return a, size // a


class _Subgrid:
    """Row/column bookkeeping for a group arranged as an ``a x b`` grid."""

    def __init__(self, size: int, shape: tuple[int, int] | None = None) -> None:
        self.a, self.b = shape if shape is not None else subgrid_shape(size)
        if self.a * self.b != size:
            raise ValueError(f"subgrid {self.a}x{self.b} does not cover group of {size}")

    def coords(self, member: int) -> tuple[int, int]:
        return divmod(member, self.b)

    def member(self, row: int, col: int) -> int:
        return row * self.b + col

    def row_members(self, row: int) -> list[int]:
        return [self.member(row, c) for c in range(self.b)]

    def col_members(self, col: int) -> list[int]:
        return [self.member(r, col) for r in range(self.a)]


@register_fold
class TwoPhaseFold(FoldCollective):
    """Figure 2: row-ring union reduction, then column-group delivery."""

    name = "two-phase"

    def __init__(self, shape: tuple[int, int] | None = None) -> None:
        self.shape = shape

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str,
    ) -> Schedule:
        size = len(group)
        sub = _Subgrid(size, self.shape)
        a, b = sub.a, sub.b
        received: list[list[np.ndarray]] = [[] for _ in range(size)]

        def contribution(g: int, d: int) -> np.ndarray:
            return np.asarray(outboxes[g].get(d, _empty()))

        # ---------------- phase 1: row-wise union rings ---------------- #
        # The bundle for column group gc circulates the row ring starting
        # at the member in column (gc + 1) % b of each row; each holder
        # unions its own per-final-destination sub-chunks in.
        in_hand: list[tuple[int, dict[int, np.ndarray]]] = [(-1, {})] * size
        for row in range(a):
            for gc in range(b):
                starter = sub.member(row, (gc + 1) % b)
                bundle: dict[int, np.ndarray] = {}
                for final_dest in sub.col_members(gc):
                    merged, dups = union_merge(contribution(starter, final_dest))
                    stats.record_duplicates(dups)
                    if merged.size:
                        bundle[final_dest] = merged
                in_hand[starter] = (gc, bundle)

        for _round in range(b - 1):
            outbox: dict[int, dict[int, np.ndarray]] = {}
            for g in range(size):
                row, col = sub.coords(g)
                _gc, bundle = in_hand[g]
                if bundle:
                    nxt = sub.member(row, (col + 1) % b)
                    outbox.setdefault(group[g], {})[group[nxt]] = np.concatenate(
                        list(bundle.values())
                    )
            yield outbox
            nxt_hand: list[tuple[int, dict[int, np.ndarray]]] = [(-1, {})] * size
            for g in range(size):
                row, col = sub.coords(g)
                prev = sub.member(row, (col - 1) % b)
                gc, bundle = in_hand[prev]
                if gc < 0:
                    nxt_hand[g] = (-1, {})
                    continue
                new_bundle: dict[int, np.ndarray] = {}
                for final_dest in sub.col_members(gc):
                    merged, dups = union_merge(
                        bundle.get(final_dest, _empty()), contribution(g, final_dest)
                    )
                    stats.record_duplicates(dups)
                    if merged.size:
                        new_bundle[final_dest] = merged
                nxt_hand[g] = (gc, new_bundle)
            in_hand = nxt_hand

        # After b-1 rounds, member (row, gc) holds the bundle for its own
        # column group gc, reduced over all of row `row`.
        # ------------- phase 2: column-group point-to-point ------------- #
        outbox2: dict[int, dict[int, np.ndarray]] = {}
        for g in range(size):
            gc, bundle = in_hand[g]
            if gc < 0:
                continue
            _row, col = sub.coords(g)
            if gc != col:  # pragma: no cover - schedule invariant
                raise RuntimeError("two-phase fold bundle ended at the wrong column group")
            for final_dest, chunk in bundle.items():
                if final_dest == g:
                    received[g].append(chunk)
                elif chunk.size:
                    outbox2.setdefault(group[g], {})[group[final_dest]] = chunk
        inbox = yield outbox2
        rank_to_index = {rank: idx for idx, rank in enumerate(group)}
        for dst_rank, deliveries in inbox.items():
            for _src, payload in deliveries:
                received[rank_to_index[dst_rank]].append(payload)
                stats.record_delivery(dst_rank, int(payload.size), phase)
        return received


@register_expand
class TwoPhaseExpand(ExpandCollective):
    """Figure 3: column-group exchange, then row-ring circulation."""

    name = "two-phase"

    def __init__(self, shape: tuple[int, int] | None = None) -> None:
        self.shape = shape

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        contributions: list[np.ndarray],
        phase: str,
        dest_filter,  # forwarding scheme: per-destination filter unusable
    ) -> Schedule:
        size = len(group)
        sub = _Subgrid(size, self.shape)
        a, b = sub.a, sub.b
        received: list[list[np.ndarray]] = [[] for _ in range(size)]

        # ------------- phase 1: exchange within column groups ------------ #
        outbox1: dict[int, dict[int, np.ndarray]] = {}
        for g in range(size):
            payload = np.asarray(contributions[g])
            if payload.size == 0:
                continue
            _row, col = sub.coords(g)
            for peer in sub.col_members(col):
                if peer != g:
                    outbox1.setdefault(group[g], {})[group[peer]] = payload
        yield outbox1
        # bundle[g] = contributions of g's whole column group (self included)
        bundles: list[list[np.ndarray]] = []
        for g in range(size):
            _row, col = sub.coords(g)
            bundles.append([np.asarray(contributions[peer]) for peer in sub.col_members(col)])
            for peer in sub.col_members(col):
                if peer != g and np.size(contributions[peer]):
                    received[g].append(np.asarray(contributions[peer]))
                    stats.record_delivery(group[g], int(np.size(contributions[peer])), phase)

        # --------------- phase 2: circulate around row rings ------------- #
        in_hand = bundles
        for _round in range(b - 1):
            outbox: dict[int, dict[int, np.ndarray]] = {}
            for g in range(size):
                row, col = sub.coords(g)
                payloads = [p for p in in_hand[g] if np.size(p)]
                if payloads:
                    nxt = sub.member(row, (col + 1) % b)
                    outbox.setdefault(group[g], {})[group[nxt]] = np.concatenate(payloads)
            yield outbox
            shifted: list[list[np.ndarray]] = [[] for _ in range(size)]
            for g in range(size):
                row, col = sub.coords(g)
                prev = sub.member(row, (col - 1) % b)
                shifted[g] = in_hand[prev]
                for payload in in_hand[prev]:
                    if np.size(payload):
                        received[g].append(payload)
                        stats.record_delivery(group[g], int(np.size(payload)), phase)
            in_hand = shifted
        return received
