"""Vectorised set-union kernels used by the union-fold reduction.

The paper's reduce-scatter reduction operation is set-union: while messages
travel the ring, duplicate vertex ids are merged away, shrinking message
volume and downstream hash-processing work (Section 3.2.2, Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.types import VERTEX_DTYPE, as_vertex_array


def union_merge(*arrays: np.ndarray) -> tuple[np.ndarray, int]:
    """Union several vertex arrays into one sorted duplicate-free array.

    Returns ``(merged, eliminated)`` where ``eliminated`` is the number of
    entries removed by the union — the quantity Figure 7's redundancy ratio
    is built from.  Inputs need not be sorted or duplicate-free.
    """
    parts = [as_vertex_array(a) for a in arrays if np.size(a)]
    if not parts:
        return np.empty(0, dtype=VERTEX_DTYPE), 0
    stacked = np.concatenate(parts) if len(parts) > 1 else parts[0]
    merged = np.unique(stacked)
    return merged, int(stacked.size - merged.size)


def count_duplicates(arrays: list[np.ndarray]) -> int:
    """Number of entries that a union over ``arrays`` would eliminate."""
    _, eliminated = union_merge(*arrays)
    return eliminated
