"""Collective interfaces, the lockstep round driver, and the name registry.

Every collective algorithm is written as a *schedule*: a generator that
yields one outbox per communication round (``{src_rank: {dst_rank:
payload}}``), receives that round's inbox for its group, and finally
returns the per-member received arrays.  The base classes drive schedules
in two modes:

* **single group** (:meth:`FoldCollective.fold` /
  :meth:`ExpandCollective.expand`) — one exchange per round;
* **many groups in lockstep** (:meth:`fold_many` / :meth:`expand_many`) —
  all groups' round-``r`` messages merge into *one* exchange, so disjoint
  communicator groups (all processor-rows of the mesh, say) contend for
  torus links simultaneously, exactly as they would on the real machine.
  The BFS engines use this mode.
"""

from __future__ import annotations

import abc
from collections.abc import Generator

import numpy as np

from repro.errors import CommunicationError
from repro.runtime.comm import Communicator
from repro.runtime.stats import CommStats
from repro.types import VERTEX_DTYPE

#: one round's sends: {src_rank: {dst_rank: payload}}
RoundOutbox = dict[int, dict[int, np.ndarray]]
#: one round's deliveries for a group: {dst_rank: [(src_rank, payload), ...]}
RoundInbox = dict[int, list[tuple[int, np.ndarray]]]
#: a schedule yields outboxes, is sent inboxes, and returns received arrays
Schedule = Generator[RoundOutbox, RoundInbox, list[list[np.ndarray]]]


def _run_lockstep(
    comm: Communicator,
    phase: str,
    schedules: list[Schedule],
    groups: list[list[int]],
) -> list[list[list[np.ndarray]]]:
    """Drive ``schedules`` round-by-round, merging each round's exchanges."""
    results: list[list[list[np.ndarray]] | None] = [None] * len(schedules)
    pending: dict[int, Schedule] = {}
    current: dict[int, RoundOutbox] = {}
    members: list[set[int]] = [set(g) for g in groups]
    #: rank -> schedule index (groups are disjoint across lockstep runs)
    owner_schedule = {rank: i for i, g in enumerate(groups) for rank in g}
    for i, schedule in enumerate(schedules):
        try:
            current[i] = schedule.send(None)
            pending[i] = schedule
        except StopIteration as stop:
            results[i] = stop.value

    obs = comm.obs
    round_idx = 0
    while pending:
        merged: RoundOutbox = {}
        for i in pending:
            for src, dests in current[i].items():
                merged.setdefault(src, {}).update(dests)
        participants = sorted({rank for i in pending for rank in members[i]})
        round_span = (
            obs.begin(
                f"round {round_idx}", cat="round", phase=phase, groups=len(pending)
            )
            if obs.enabled
            else None
        )
        inbox = comm.exchange(merged, phase, participants=participants)
        if round_span is not None:
            obs.end(round_span)
        round_idx += 1
        # Split the inbox per schedule in one pass (not one inbox scan per
        # schedule), preserving delivery order within each sub-inbox.
        sub_inboxes: dict[int, RoundInbox] = {i: {} for i in pending}
        for dst, msgs in inbox.items():
            i = owner_schedule.get(dst)
            if i in sub_inboxes:
                sub_inboxes[i][dst] = msgs
        advanced: dict[int, RoundOutbox] = {}
        finished: list[int] = []
        for i, schedule in pending.items():
            try:
                advanced[i] = schedule.send(sub_inboxes[i])
            except StopIteration as stop:
                results[i] = stop.value
                finished.append(i)
        for i in finished:
            pending.pop(i)
        current = advanced
    return results  # type: ignore[return-value]


class FoldCollective(abc.ABC):
    """All-to-all / reduce-scatter-like collective for the fold step.

    ``outboxes[g][d]`` is the array member index ``g`` wants delivered to
    member index ``d`` (``d`` indexes *within the group*).  The result has
    one list of received arrays per member index, including any
    self-addressed payload (a local hand-off).
    """

    name: str = "fold-base"
    #: True when the collective accepts pre-packed CSR outboxes via a
    #: ``fold_many_csr`` method (see :class:`UnionRingFold`); engines use
    #: it to skip dict packing on their hot paths
    supports_csr: bool = False

    @abc.abstractmethod
    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str,
    ) -> Schedule:
        """The algorithm as a round generator (see module docstring)."""

    def fold(
        self,
        comm: Communicator,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str = "fold",
    ) -> list[list[np.ndarray]]:
        """Run the collective on one ``group`` (global rank ids)."""
        _validate_group(group, len(outboxes))
        return _run_lockstep(
            comm, phase, [self._schedule(comm.stats, group, outboxes, phase)], [group]
        )[0]

    def fold_many(
        self,
        comm: Communicator,
        groups: list[list[int]],
        outboxes_per_group: list[list[dict[int, np.ndarray]]],
        phase: str = "fold",
    ) -> list[list[list[np.ndarray]]]:
        """Run the collective on several *disjoint* groups in lockstep."""
        _validate_disjoint(groups, len(outboxes_per_group))
        schedules = []
        for group, outboxes in zip(groups, outboxes_per_group):
            _validate_group(group, len(outboxes))
            schedules.append(self._schedule(comm.stats, group, outboxes, phase))
        return _run_lockstep(comm, phase, schedules, groups)


class ExpandCollective(abc.ABC):
    """All-gather-like collective for the expand step.

    ``contributions[g]`` is the array group member index ``g`` contributes
    (its frontier).  ``dest_filter``, when given, maps ``(src_index,
    dst_index)`` to the filtered array that actually needs to reach ``dst``
    — the sparse-frontier optimisation of Section 2.2.  Forwarding schemes
    (rings, recursive doubling) cannot apply per-destination filtering and
    ignore it.  A member's own contribution is *not* included in its
    received list.
    """

    name: str = "expand-base"

    @abc.abstractmethod
    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        contributions: list[np.ndarray],
        phase: str,
        dest_filter,
    ) -> Schedule:
        """The algorithm as a round generator (see module docstring)."""

    def expand(
        self,
        comm: Communicator,
        group: list[int],
        contributions: list[np.ndarray],
        phase: str = "expand",
        dest_filter=None,
    ) -> list[list[np.ndarray]]:
        """Run the collective on one ``group`` (global rank ids)."""
        _validate_group(group, len(contributions))
        return _run_lockstep(
            comm,
            phase,
            [self._schedule(comm.stats, group, contributions, phase, dest_filter)],
            [group],
        )[0]

    def expand_many(
        self,
        comm: Communicator,
        groups: list[list[int]],
        contributions_per_group: list[list[np.ndarray]],
        phase: str = "expand",
        dest_filters: list | None = None,
    ) -> list[list[list[np.ndarray]]]:
        """Run the collective on several *disjoint* groups in lockstep."""
        _validate_disjoint(groups, len(contributions_per_group))
        schedules = []
        for idx, (group, contributions) in enumerate(
            zip(groups, contributions_per_group)
        ):
            _validate_group(group, len(contributions))
            dest_filter = dest_filters[idx] if dest_filters is not None else None
            schedules.append(
                self._schedule(comm.stats, group, contributions, phase, dest_filter)
            )
        return _run_lockstep(comm, phase, schedules, groups)


def _validate_group(group: list[int], payload_len: int) -> None:
    if len(group) != payload_len:
        raise CommunicationError(
            f"group has {len(group)} members but {payload_len} payload slots were given"
        )
    if len(set(group)) != len(group):
        raise CommunicationError("collective group contains duplicate ranks")


def _validate_disjoint(groups: list[list[int]], payload_groups: int) -> None:
    if len(groups) != payload_groups:
        raise CommunicationError(
            f"{len(groups)} groups but {payload_groups} payload groups were given"
        )
    seen: set[int] = set()
    for group in groups:
        for rank in group:
            if rank in seen:
                raise CommunicationError(
                    f"rank {rank} appears in more than one lockstep group"
                )
            seen.add(rank)


def _empty() -> np.ndarray:
    return np.empty(0, dtype=VERTEX_DTYPE)


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
_EXPANDS: dict[str, type] = {}
_FOLDS: dict[str, type] = {}


def register_expand(cls: type) -> type:
    """Class decorator: register an :class:`ExpandCollective` by its ``name``."""
    _EXPANDS[cls.name] = cls
    return cls


def register_fold(cls: type) -> type:
    """Class decorator: register a :class:`FoldCollective` by its ``name``."""
    _FOLDS[cls.name] = cls
    return cls


def get_expand(name: str, **kwargs) -> ExpandCollective:
    """Instantiate the expand collective registered under ``name``."""
    try:
        return _EXPANDS[name](**kwargs)
    except KeyError:
        raise CommunicationError(
            f"unknown expand collective {name!r}; available: {sorted(_EXPANDS)}"
        ) from None


def get_fold(name: str, **kwargs) -> FoldCollective:
    """Instantiate the fold collective registered under ``name``."""
    try:
        return _FOLDS[name](**kwargs)
    except KeyError:
        raise CommunicationError(
            f"unknown fold collective {name!r}; available: {sorted(_FOLDS)}"
        ) from None
