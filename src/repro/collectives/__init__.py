"""Collective communication algorithms built from point-to-point rounds.

Two families, matching the two communication steps of Algorithm 2:

* **expand** (all-gather-like): every group member contributes one array and
  everyone must end up with all contributions (optionally filtered per
  destination — the sparse-frontier optimisation of Section 2.2).
* **fold** (all-to-all / reduce-scatter-like): every member holds one array
  per destination; each destination must end up with the (optionally
  union-reduced) contributions addressed to it.

Implementations: direct single-round, single-ring, ring reduce-scatter with
set-union, and the paper's two-phase grouped-ring schemes (Section 3.2.2,
Figures 2 and 3).
"""

from repro.collectives.base import ExpandCollective, FoldCollective, get_expand, get_fold
from repro.collectives.alltoallv import DirectFold
from repro.collectives.allgatherv import DirectExpand
from repro.collectives.ring import RingExpand, RingFold
from repro.collectives.reduce_scatter import UnionRingFold
from repro.collectives.two_phase import TwoPhaseExpand, TwoPhaseFold, subgrid_shape
from repro.collectives.bruck import BruckFold, RecursiveDoublingExpand
from repro.collectives.union import union_merge, count_duplicates

__all__ = [
    "BruckFold",
    "RecursiveDoublingExpand",
    "ExpandCollective",
    "FoldCollective",
    "get_expand",
    "get_fold",
    "DirectFold",
    "DirectExpand",
    "RingExpand",
    "RingFold",
    "UnionRingFold",
    "TwoPhaseExpand",
    "TwoPhaseFold",
    "subgrid_shape",
    "union_merge",
    "count_duplicates",
]
