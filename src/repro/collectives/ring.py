"""Single-ring collectives.

Ring communication is the natural point-to-point pattern on a torus
(Section 3.2.2): every member talks only to its ring successor, so each
round is contention-free nearest-neighbour traffic when the mapping is
good.  :class:`RingExpand` is a classic all-gather ring;
:class:`RingFold` forwards personalized chunks around the ring *without*
in-flight reduction (the union-free baseline for Figure 7's comparison —
see :class:`repro.collectives.reduce_scatter.UnionRingFold` for the
paper's union variant).

Note on statistics: vertices are counted as *processed* at every hop,
including pure forwarding hops — the paper's Figure 7 accounting ("each
processor receives more messages ... because it passes the messages using
ring communications") — while *deliveries* are only recorded at the rank
that needs the data.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import (
    ExpandCollective,
    FoldCollective,
    Schedule,
    register_expand,
    register_fold,
)
from repro.runtime.stats import CommStats


@register_expand
class RingExpand(ExpandCollective):
    """All-gather ring: G-1 rounds, each member forwards what it last received."""

    name = "ring"

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        contributions: list[np.ndarray],
        phase: str,
        dest_filter,  # rings forward through intermediaries: filter unusable
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        if size == 1:
            return received
        in_hand: list[np.ndarray] = [np.asarray(c) for c in contributions]
        for _round in range(size - 1):
            outbox: dict[int, dict[int, np.ndarray]] = {}
            for g in range(size):
                nxt = (g + 1) % size
                if np.size(in_hand[g]):
                    outbox.setdefault(group[g], {})[group[nxt]] = in_hand[g]
            yield outbox
            # Shift: everyone now holds its predecessor's previous chunk.
            in_hand = [in_hand[(g - 1) % size] for g in range(size)]
            for g in range(size):
                if np.size(in_hand[g]):
                    received[g].append(in_hand[g])
                    stats.record_delivery(group[g], int(np.size(in_hand[g])), phase)
        return received


@register_fold
class RingFold(FoldCollective):
    """Personalized ring fold: chunks hop forward until they reach their target.

    No in-flight reduction — duplicates survive until the receiving rank
    merges them.  Round ``t`` moves every not-yet-delivered chunk one hop,
    so the schedule finishes after G-1 rounds.
    """

    name = "ring"

    def _schedule(
        self,
        stats: CommStats,
        group: list[int],
        outboxes: list[dict[int, np.ndarray]],
        phase: str,
    ) -> Schedule:
        size = len(group)
        received: list[list[np.ndarray]] = [[] for _ in range(size)]
        # carrying[g] = list of (dest_index, payload) currently held by g
        carrying: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(size)]
        for g, per_dest in enumerate(outboxes):
            for d, payload in per_dest.items():
                if not (0 <= d < size):
                    raise IndexError(f"destination index {d} outside group of size {size}")
                if np.size(payload) == 0:
                    continue
                if d == g:
                    received[g].append(np.asarray(payload))
                else:
                    carrying[g].append((d, np.asarray(payload)))

        for _round in range(size - 1):
            if not any(carrying):
                break
            outbox: dict[int, dict[int, np.ndarray]] = {}
            moving: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(size)]
            for g in range(size):
                if not carrying[g]:
                    continue
                nxt = (g + 1) % size
                combined = np.concatenate([p for _, p in carrying[g]])
                outbox.setdefault(group[g], {})[group[nxt]] = combined
                moving[nxt].extend(carrying[g])
                carrying[g] = []
            yield outbox
            for g in range(size):
                for d, payload in moving[g]:
                    if d == g:
                        received[g].append(payload)
                        stats.record_delivery(group[g], int(payload.size), phase)
                    else:
                        carrying[g].append((d, payload))
        if any(carrying):  # pragma: no cover - schedule guarantees delivery
            raise RuntimeError("ring fold finished with undelivered chunks")
        return received
