"""High-level convenience API.

These helpers wire together the full stack — graph, partition, machine
model, task mapping, fault schedule, communicator, engine — so that a user
can run the paper's algorithm in three lines (see ``examples/quickstart.py``).
Every piece remains individually constructible for finer control.

The system a search runs on is described by one
:class:`~repro.types.SystemSpec` value (or a preset name like
``"bluegene-2d"``), passed as ``system=``.  The pre-``SystemSpec`` keyword
arguments (``machine=``, ``mapping=``, ``layout=``, ``faults=``) remain a
thin compatibility path: they are merged over the spec by
:func:`repro.types.resolve_system`, the single shared resolver.
"""

from __future__ import annotations

from repro.bfs.bfs_1d import Bfs1DEngine
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.bidirectional import run_bidirectional_bfs
from repro.bfs.level_sync import LevelSyncEngine, run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.result import BfsResult, BidirectionalResult
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule, FaultSpec
from repro.graph.csr import CsrGraph
from repro.machine.bluegene import BLUEGENE_L, MachineModel, bluegene_l_torus_for
from repro.machine.cluster import MCR_CLUSTER, flat_network_for
from repro.machine.mapping import TaskMapping, planar_mapping, row_major_mapping
from repro.partition.one_d import OneDPartition
from repro.partition.two_d import TwoDPartition
from repro.runtime.comm import Communicator
from repro.types import GridShape, SystemSpec, resolve_system


def build_communicator(
    grid: GridShape,
    *,
    system: SystemSpec | str | None = None,
    machine: str | MachineModel | None = None,
    mapping: str | TaskMapping | None = None,
    buffer_capacity: int | None = None,
    wire: str | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | None = None,
) -> Communicator:
    """Create a virtual communicator for ``grid`` on the requested system.

    ``system`` is a :class:`SystemSpec` or a preset name; the legacy
    ``machine``/``mapping``/``wire``/``faults`` keywords override its
    fields.  ``machine`` resolves to ``"bluegene"``, ``"mcr"``, or a
    custom :class:`MachineModel`; ``mapping`` to ``"planar"`` (the paper's
    Figure 1 scheme), ``"row-major"`` (naive baseline), or a prebuilt
    :class:`TaskMapping`; ``wire`` to a :mod:`repro.wire` codec name
    (``"raw"``, ``"delta-varint"``, ``"bitmap"``, ``"adaptive"``) or
    instance; ``observe`` to an observability preset (``"off"``,
    ``"spans"``, ``"messages"``, ``"full"``).  The MCR machine always
    uses its flat network.
    """
    spec = resolve_system(
        system, machine=machine, mapping=mapping, wire=wire, faults=faults,
        observe=observe,
    )

    if isinstance(spec.machine, MachineModel):
        model = spec.machine
    elif spec.machine == "bluegene":
        model = BLUEGENE_L
    elif spec.machine == "mcr":
        model = MCR_CLUSTER
    else:  # pragma: no cover - resolve_system validates preset strings
        raise ConfigurationError(f"unknown machine {spec.machine!r}; use 'bluegene' or 'mcr'")

    if isinstance(spec.mapping, TaskMapping):
        task_mapping = spec.mapping
    elif model.name == "MCR":
        task_mapping = flat_network_for(grid)
    elif spec.mapping == "planar":
        task_mapping = planar_mapping(grid, bluegene_l_torus_for(grid.size))
    elif spec.mapping == "row-major":
        task_mapping = row_major_mapping(grid, bluegene_l_torus_for(grid.size))
    else:  # pragma: no cover - resolve_system validates preset strings
        raise ConfigurationError(
            f"unknown mapping {spec.mapping!r}; use 'planar', 'row-major', or a TaskMapping"
        )

    schedule = FaultSchedule(spec.faults, grid.size) if spec.faults is not None else None
    return Communicator(
        task_mapping, model, buffer_capacity=buffer_capacity, faults=schedule,
        wire=spec.wire, observe=spec.observe,
    )


def build_engine(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    *,
    opts: BfsOptions | None = None,
    system: SystemSpec | str | None = None,
    machine: str | MachineModel | None = None,
    mapping: str | TaskMapping | None = None,
    layout: str | None = None,
    wire: str | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | None = None,
    comm: Communicator | None = None,
) -> LevelSyncEngine:
    """Partition ``graph`` over ``grid`` and build a ready-to-run engine.

    ``layout="2d"`` (the default) uses Algorithm 2 on a
    :class:`TwoDPartition`; ``layout="1d"`` uses Algorithm 1 on a
    :class:`OneDPartition` (the grid must then be ``P x 1`` or ``1 x P``).
    A prebuilt ``comm`` wins over the spec's machine/mapping/wire/faults.
    """
    if not isinstance(grid, GridShape):
        grid = GridShape(*grid)
    spec = resolve_system(
        system, machine=machine, mapping=mapping, layout=layout, wire=wire,
        faults=faults, observe=observe,
    )
    opts = opts or BfsOptions()
    if comm is None:
        comm = build_communicator(grid, system=spec, buffer_capacity=opts.buffer_capacity)
    if spec.layout == "2d":
        return Bfs2DEngine(TwoDPartition(graph, grid), comm, opts)
    if spec.layout == "1d":
        if not grid.is_1d:
            raise ConfigurationError(f"layout='1d' needs a 1-D grid, got {grid}")
        partition = OneDPartition(graph, grid.size, as_row=grid.cols == 1)
        return Bfs1DEngine(partition, comm, opts)
    raise ConfigurationError(f"unknown layout {spec.layout!r}; use '1d' or '2d'")


def distributed_bfs(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    source: int,
    *,
    target: int | None = None,
    opts: BfsOptions | None = None,
    system: SystemSpec | str | None = None,
    machine: str | MachineModel | None = None,
    mapping: str | TaskMapping | None = None,
    layout: str | None = None,
    wire: str | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | None = None,
    max_levels: int | None = None,
) -> BfsResult:
    """One-call distributed BFS: partition, simulate, return the result."""
    engine = build_engine(
        graph, grid, opts=opts, system=system, machine=machine, mapping=mapping,
        layout=layout, wire=wire, faults=faults, observe=observe,
    )
    return run_bfs(engine, source, target=target, max_levels=max_levels)


def bidirectional_bfs(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    source: int,
    target: int,
    *,
    opts: BfsOptions | None = None,
    system: SystemSpec | str | None = None,
    machine: str | MachineModel | None = None,
    mapping: str | TaskMapping | None = None,
    layout: str | None = None,
    wire: str | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | None = None,
) -> BidirectionalResult:
    """One-call bi-directional s-t search (Section 2.3)."""
    if not isinstance(grid, GridShape):
        grid = GridShape(*grid)
    spec = resolve_system(
        system, machine=machine, mapping=mapping, layout=layout, wire=wire,
        faults=faults, observe=observe,
    )
    opts = opts or BfsOptions()
    comm = build_communicator(grid, system=spec, buffer_capacity=opts.buffer_capacity)
    forward = build_engine(graph, grid, opts=opts, layout=spec.layout, comm=comm)
    backward = build_engine(graph, grid, opts=opts, layout=spec.layout, comm=comm)
    return run_bidirectional_bfs(forward, backward, source, target)
