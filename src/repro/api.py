"""High-level convenience API.

These helpers wire together the full stack — graph, partition, machine
model, task mapping, fault schedule, communicator, engine — so that a user
can run the paper's algorithm in three lines (see ``examples/quickstart.py``).
Every piece remains individually constructible for finer control.

The system a search runs on is described by one
:class:`~repro.types.SystemSpec` value (or a preset name like
``"bluegene-2d"``), passed as ``system=``.  This is the one recommended
way to describe the target system.  The pre-``SystemSpec`` keyword
arguments (``machine=``, ``mapping=``, ``layout=``) remain a thin,
*deprecated* compatibility path: every entry point funnels them through
:func:`resolve_entry_system`, which merges them over the spec via
:func:`repro.types.resolve_system` and emits a :class:`DeprecationWarning`
when they are used.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

from repro.bfs.bfs_1d import Bfs1DEngine
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.bidirectional import run_bidirectional_bfs
from repro.bfs.level_sync import LevelSyncEngine, run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.result import BfsResult, BidirectionalResult
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule, FaultSpec
from repro.graph.csr import CsrGraph
from repro.machine.bluegene import BLUEGENE_L, MachineModel, bluegene_l_torus_for
from repro.machine.cluster import MCR_CLUSTER, flat_network_for
from repro.machine.mapping import TaskMapping, planar_mapping, row_major_mapping
from repro.partition.one_d import OneDPartition
from repro.partition.two_d import TwoDPartition
from repro.runtime.comm import Communicator
from repro.types import GridShape, SystemSpec, resolve_system

#: legacy keyword arguments that predate :class:`SystemSpec` and now warn
_DEPRECATED_KWARGS = ("machine", "mapping", "layout")


def resolve_entry_system(
    system: SystemSpec | str | None = None,
    *,
    machine: str | MachineModel | None = None,
    mapping: str | TaskMapping | None = None,
    layout: str | None = None,
    wire: str | object | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | object | None = None,
    sieve: bool | None = None,
) -> SystemSpec:
    """The one resolver path behind every public ``system=`` entry point.

    Thin wrapper over :func:`repro.types.resolve_system` that additionally
    emits a :class:`DeprecationWarning` whenever one of the pre-``SystemSpec``
    keyword arguments (``machine=``, ``mapping=``, ``layout=``) is used.
    ``build_communicator``, ``build_engine``, ``distributed_bfs``,
    ``bidirectional_bfs``, and :class:`repro.session.BfsSession` all call
    this instead of duplicating the merge logic.
    """
    legacy = {"machine": machine, "mapping": mapping, "layout": layout}
    used = [name for name, value in legacy.items() if value is not None]
    if used:
        warnings.warn(
            f"the {', '.join(used)} keyword argument(s) are deprecated; "
            f"pass system=SystemSpec({', '.join(f'{u}=...' for u in used)}) "
            "or a preset name instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return resolve_system(
        system, machine=machine, mapping=mapping, layout=layout, wire=wire,
        faults=faults, observe=observe, sieve=sieve,
    )


def resolve_machine_model(spec: SystemSpec) -> MachineModel:
    """The :class:`MachineModel` a resolved spec simulates."""
    if isinstance(spec.machine, MachineModel):
        return spec.machine
    if spec.machine == "bluegene":
        return BLUEGENE_L
    if spec.machine == "mcr":
        return MCR_CLUSTER
    raise ConfigurationError(  # pragma: no cover - resolve_system validates presets
        f"unknown machine {spec.machine!r}; use 'bluegene' or 'mcr'"
    )


def resolve_task_mapping(
    grid: GridShape, spec: SystemSpec, model: MachineModel
) -> TaskMapping:
    """The :class:`TaskMapping` (mesh → physical topology) for ``grid``.

    Builds the torus (or flat network) exactly once per call — callers
    that serve many queries over one system should cache the result
    (:class:`repro.session.BfsSession` does).
    """
    if isinstance(spec.mapping, TaskMapping):
        return spec.mapping
    if model.name == "MCR":
        return flat_network_for(grid)
    if spec.mapping == "planar":
        return planar_mapping(grid, bluegene_l_torus_for(grid.size))
    if spec.mapping == "row-major":
        return row_major_mapping(grid, bluegene_l_torus_for(grid.size))
    raise ConfigurationError(  # pragma: no cover - resolve_system validates presets
        f"unknown mapping {spec.mapping!r}; use 'planar', 'row-major', or a TaskMapping"
    )


def build_communicator(
    grid: GridShape,
    *,
    system: SystemSpec | str | None = None,
    machine: str | MachineModel | None = None,
    mapping: str | TaskMapping | None = None,
    buffer_capacity: int | None = None,
    wire: str | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | None = None,
) -> Communicator:
    """Create a virtual communicator for ``grid`` on the requested system.

    ``system`` is a :class:`SystemSpec` or a preset name — the recommended
    path.  The deprecated ``machine``/``mapping`` keywords still override
    its fields (with a :class:`DeprecationWarning`); ``wire``/``faults``/
    ``observe`` overrides remain first-class.  ``machine`` resolves to
    ``"bluegene"``, ``"mcr"``, or a custom :class:`MachineModel`;
    ``mapping`` to ``"planar"`` (the paper's Figure 1 scheme),
    ``"row-major"`` (naive baseline), or a prebuilt :class:`TaskMapping`;
    ``wire`` to a :mod:`repro.wire` codec name (``"raw"``,
    ``"delta-varint"``, ``"bitmap"``, ``"adaptive"``) or instance;
    ``observe`` to an observability preset (``"off"``, ``"spans"``,
    ``"messages"``, ``"full"``).  The MCR machine always uses its flat
    network.
    """
    spec = resolve_entry_system(
        system, machine=machine, mapping=mapping, wire=wire, faults=faults,
        observe=observe,
    )
    model = resolve_machine_model(spec)
    task_mapping = resolve_task_mapping(grid, spec, model)
    schedule = FaultSchedule(spec.faults, grid.size) if spec.faults is not None else None
    return Communicator(
        task_mapping, model, buffer_capacity=buffer_capacity, faults=schedule,
        wire=spec.wire, observe=spec.observe,
    )


def build_engine(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    *,
    opts: BfsOptions | None = None,
    system: SystemSpec | str | None = None,
    machine: str | MachineModel | None = None,
    mapping: str | TaskMapping | None = None,
    layout: str | None = None,
    wire: str | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | None = None,
    comm: Communicator | None = None,
) -> LevelSyncEngine:
    """Partition ``graph`` over ``grid`` and build a ready-to-run engine.

    ``layout="2d"`` (the default) uses Algorithm 2 on a
    :class:`TwoDPartition`; ``layout="1d"`` uses Algorithm 1 on a
    :class:`OneDPartition` (the grid must then be ``P x 1`` or ``1 x P``).
    A prebuilt ``comm`` wins over the spec's machine/mapping/wire/faults.
    """
    if not isinstance(grid, GridShape):
        grid = GridShape(*grid)
    spec = resolve_entry_system(
        system, machine=machine, mapping=mapping, layout=layout, wire=wire,
        faults=faults, observe=observe,
    )
    opts = opts or BfsOptions()
    if spec.sieve and not opts.use_sieve:
        # The spec's sieve axis is the system-level switch; the engines
        # only read BfsOptions, so fold the axis into the options here.
        opts = replace(opts, use_sieve=True)
    if comm is None:
        comm = build_communicator(grid, system=spec, buffer_capacity=opts.buffer_capacity)
    if spec.layout == "2d":
        return Bfs2DEngine(TwoDPartition(graph, grid), comm, opts)
    if spec.layout == "1d":
        if not grid.is_1d:
            raise ConfigurationError(f"layout='1d' needs a 1-D grid, got {grid}")
        partition = OneDPartition(graph, grid.size, as_row=grid.cols == 1)
        return Bfs1DEngine(partition, comm, opts)
    raise ConfigurationError(f"unknown layout {spec.layout!r}; use '1d' or '2d'")


def distributed_bfs(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    source: int,
    *,
    target: int | None = None,
    opts: BfsOptions | None = None,
    system: SystemSpec | str | None = None,
    machine: str | MachineModel | None = None,
    mapping: str | TaskMapping | None = None,
    layout: str | None = None,
    wire: str | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | None = None,
    max_levels: int | None = None,
) -> BfsResult:
    """One-call distributed BFS: partition, simulate, return the result."""
    spec = resolve_entry_system(
        system, machine=machine, mapping=mapping, layout=layout, wire=wire,
        faults=faults, observe=observe,
    )
    engine = build_engine(graph, grid, opts=opts, system=spec)
    return run_bfs(engine, source, target=target, max_levels=max_levels)


def bidirectional_bfs(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    source: int,
    target: int,
    *,
    opts: BfsOptions | None = None,
    system: SystemSpec | str | None = None,
    machine: str | MachineModel | None = None,
    mapping: str | TaskMapping | None = None,
    layout: str | None = None,
    wire: str | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | None = None,
) -> BidirectionalResult:
    """One-call bi-directional s-t search (Section 2.3)."""
    if not isinstance(grid, GridShape):
        grid = GridShape(*grid)
    spec = resolve_entry_system(
        system, machine=machine, mapping=mapping, layout=layout, wire=wire,
        faults=faults, observe=observe,
    )
    opts = opts or BfsOptions()
    comm = build_communicator(grid, system=spec, buffer_capacity=opts.buffer_capacity)
    forward = build_engine(graph, grid, opts=opts, system=spec, comm=comm)
    backward = build_engine(graph, grid, opts=opts, system=spec, comm=comm)
    return run_bidirectional_bfs(forward, backward, source, target)
