"""repro — reproduction of Yoo et al., "A Scalable Distributed Parallel
Breadth-First Search Algorithm on BlueGene/L" (SC 2005).

The package implements the paper's 1D- and 2D-partitioned level-synchronous
BFS, the bi-directional variant, the BlueGene/L-optimised two-phase ring
collectives with set-union fold, and the analytic message-length model —
all on a deterministic virtual-rank runtime with a torus network cost model
(the hardware substitution is documented in DESIGN.md).

Quickstart::

    from repro import GraphSpec, poisson_random_graph, distributed_bfs

    graph = poisson_random_graph(GraphSpec(n=10_000, k=10, seed=1))
    result = distributed_bfs(graph, grid=(4, 4), source=0)
    print(result.summary())
"""

from repro.types import (
    SYSTEM_PRESETS,
    GraphSpec,
    GridShape,
    SystemSpec,
    UNREACHED,
    resolve_system,
)
from repro.faults import FAULT_PRESETS, FaultReport, FaultSchedule, FaultSpec
from repro.wire import (
    WIRE_CODECS,
    AdaptiveCodec,
    BitmapCodec,
    DeltaVarintCodec,
    RawCodec,
    WireCodec,
    get_codec,
    resolve_wire,
)
from repro.observability import (
    OBSERVE_PRESETS,
    MetricsRegistry,
    ObservabilityData,
    ObserveSpec,
    export_artifacts,
    result_digests,
)
from repro.graph import CsrGraph, build_graph, poisson_random_graph
from repro.partition import OneDPartition, TwoDPartition
from repro.machine import BLUEGENE_L, MCR_CLUSTER, MachineModel, Torus3D
from repro.runtime import Communicator
from repro.bfs import (
    BfsOptions,
    BfsResult,
    BidirectionalResult,
    Bfs1DEngine,
    Bfs2DEngine,
    run_bfs,
    run_bidirectional_bfs,
    serial_bfs,
)
from repro.api import (
    bidirectional_bfs,
    build_communicator,
    build_engine,
    distributed_bfs,
)
from repro.session import BfsSession, extract_path

__version__ = "1.0.0"

__all__ = [
    "GraphSpec",
    "GridShape",
    "UNREACHED",
    "SystemSpec",
    "SYSTEM_PRESETS",
    "resolve_system",
    "FaultSpec",
    "FaultSchedule",
    "FaultReport",
    "FAULT_PRESETS",
    "WireCodec",
    "WIRE_CODECS",
    "RawCodec",
    "DeltaVarintCodec",
    "BitmapCodec",
    "AdaptiveCodec",
    "get_codec",
    "resolve_wire",
    "ObserveSpec",
    "OBSERVE_PRESETS",
    "ObservabilityData",
    "MetricsRegistry",
    "export_artifacts",
    "result_digests",
    "CsrGraph",
    "build_graph",
    "poisson_random_graph",
    "OneDPartition",
    "TwoDPartition",
    "BLUEGENE_L",
    "MCR_CLUSTER",
    "MachineModel",
    "Torus3D",
    "Communicator",
    "BfsOptions",
    "BfsResult",
    "BidirectionalResult",
    "Bfs1DEngine",
    "Bfs2DEngine",
    "run_bfs",
    "run_bidirectional_bfs",
    "serial_bfs",
    "bidirectional_bfs",
    "build_communicator",
    "build_engine",
    "distributed_bfs",
    "BfsSession",
    "extract_path",
    "__version__",
]
