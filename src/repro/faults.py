"""Deterministic fault injection and recovery (`repro.faults`).

The paper's testbed is a 32,768-node BlueGene/L; at that scale the
interesting question is not whether the machine is perfect but how the
algorithm behaves when it is not — stragglers, degraded links, dropped
messages (see Buluç & Madduri's survey of distributed-memory BFS for the
modern version of the same concern).  This module injects those faults
into the virtual runtime *deterministically*: every decision is drawn
from a seeded stream, so identical seeds and schedules reproduce
byte-identical fault counts and simulated times.

Three layers:

* :class:`FaultSpec` — the frozen, declarative description of a fault
  workload (drop probability, degraded-link fraction and multiplier,
  straggler fraction and slowdown, optional permanent link-down level,
  retry policy).  Parseable from a CLI string via :meth:`FaultSpec.parse`.
* :class:`FaultSchedule` — the per-run stateful object the communicator
  consults on every wire message.  Degraded links, stragglers, and the
  link that dies are sampled once at construction (stable in the seed);
  per-message transient drops come from a sequential stream so that a
  rolled-back level re-executes under *fresh* draws and can succeed.
* :class:`FaultReport` — the graceful-degradation summary: injected vs
  retried vs recovered vs unrecovered messages, level rollbacks, and the
  simulated seconds the faults added.

Semantics on the wire (implemented in
:meth:`repro.runtime.comm.Communicator.exchange`):

* A *transient drop* loses one transmission of one message chunk.  The
  sender detects it by timeout (``retry_timeout * backoff**i`` simulated
  seconds for the i-th retry) and retransmits, up to ``max_retries``
  times; every wasted transmission and timeout is charged to the clocks
  as fault time.  A chunk that exhausts its retries is *unrecovered*:
  the data is lost and the BFS level must roll back to its checkpoint
  (see :class:`repro.bfs.level_sync.LevelSyncEngine`).
* A *degraded link* multiplies the wire cost of every message between
  one directed rank pair.
* A *permanent link-down* (from level ``down_level`` on) does not lose
  data — traffic is assumed rerouted around the dead link — but pays the
  detour: the pair's cost multiplier becomes ``down_detour_factor``.
* A *straggler* multiplies a rank's compute time; the excess is booked
  as fault time.

Reductions (``allreduce_*``) are assumed reliable, as on the real
machine's dedicated collective network.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Declarative, seeded description of a fault-injection workload.

    All rates are probabilities in ``[0, 1]``; all multipliers are
    ``>= 1``.  The default instance injects nothing (and a ``None``
    spec everywhere means "fault layer disabled, zero overhead").
    """

    #: seed of every random fault decision (drops, link/straggler choice)
    seed: int = 0
    #: probability that any single transmission of a message chunk is lost
    drop_rate: float = 0.0
    #: fraction of directed rank pairs whose link is degraded
    degraded_link_rate: float = 0.0
    #: wire-cost multiplier on degraded links
    degradation_factor: float = 2.0
    #: fraction of ranks that straggle
    straggler_rate: float = 0.0
    #: compute-time multiplier on straggler ranks
    straggler_slowdown: float = 2.0
    #: BFS level at which one sampled link goes permanently down (None = never)
    down_level: int | None = None
    #: detour cost multiplier for traffic rerouted around the dead link
    down_detour_factor: float = 3.0
    #: retransmissions attempted per dropped chunk before giving up
    max_retries: int = 3
    #: simulated seconds to detect the first lost transmission
    retry_timeout: float = 5.0e-5
    #: timeout growth factor per further retry (exponential backoff)
    backoff: float = 2.0
    #: level re-executions allowed after unrecovered losses before erroring
    max_level_retries: int = 25

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigurationError(f"fault seed must be non-negative, got {self.seed}")
        for name in ("drop_rate", "degraded_link_rate", "straggler_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.drop_rate >= 1.0:
            raise ConfigurationError("drop_rate must be < 1 (nothing would ever arrive)")
        for name in ("degradation_factor", "straggler_slowdown", "down_detour_factor",
                     "backoff"):
            if getattr(self, name) < 1.0:
                raise ConfigurationError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.max_retries < 0 or self.max_level_retries < 0:
            raise ConfigurationError("retry counts must be non-negative")
        if self.retry_timeout < 0:
            raise ConfigurationError("retry_timeout must be non-negative")
        if self.down_level is not None and self.down_level < 0:
            raise ConfigurationError(f"down_level must be non-negative, got {self.down_level}")

    @property
    def active(self) -> bool:
        """Whether this spec can inject any fault at all."""
        return (
            self.drop_rate > 0
            or (self.degraded_link_rate > 0 and self.degradation_factor > 1)
            or (self.straggler_rate > 0 and self.straggler_slowdown > 1)
            or self.down_level is not None
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from a preset name or a ``key=value,...`` string.

        Examples: ``"mild"``, ``"harsh"``,
        ``"drop=0.05,degrade=0.25x4,straggler=0.1x3,down=2,seed=7"``.
        ``degrade`` and ``straggler`` take ``ratexfactor``; the remaining
        keys map directly onto the dataclass fields (``retries`` is a
        shorthand for ``max_retries``).
        """
        text = text.strip()
        if text in FAULT_PRESETS:
            return FAULT_PRESETS[text]
        known = {f.name for f in fields(cls)}
        kwargs: dict = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise ConfigurationError(
                    f"bad fault token {part!r}; expected key=value or a preset "
                    f"name from {list(FAULT_PRESETS)}"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "drop":
                    kwargs["drop_rate"] = float(value)
                elif key == "degrade":
                    rate, factor = _parse_rate_factor(value)
                    kwargs["degraded_link_rate"] = rate
                    kwargs["degradation_factor"] = factor
                elif key == "straggler":
                    rate, factor = _parse_rate_factor(value)
                    kwargs["straggler_rate"] = rate
                    kwargs["straggler_slowdown"] = factor
                elif key == "down":
                    kwargs["down_level"] = int(value)
                elif key == "retries":
                    kwargs["max_retries"] = int(value)
                elif key == "seed":
                    kwargs["seed"] = int(value)
                elif key in known:
                    kind = cls.__dataclass_fields__[key].type
                    kwargs[key] = int(value) if "int" in kind else float(value)
                else:
                    raise ConfigurationError(f"unknown fault key {key!r}")
            except ValueError as exc:
                raise ConfigurationError(f"bad fault value {part!r}: {exc}") from exc
        return cls(**kwargs)


def _parse_rate_factor(value: str) -> tuple[float, float]:
    """Parse ``"0.25x4"`` (rate, factor); a bare rate keeps the default factor."""
    if "x" in value:
        rate, _, factor = value.partition("x")
        return float(rate), float(factor)
    return float(value), 2.0


#: Named workloads for the CLI and the harness sweeps.
FAULT_PRESETS: dict[str, FaultSpec] = {
    "none": FaultSpec(),
    "mild": FaultSpec(drop_rate=0.01, degraded_link_rate=0.1, degradation_factor=2.0,
                      straggler_rate=0.1, straggler_slowdown=1.5),
    "harsh": FaultSpec(drop_rate=0.05, degraded_link_rate=0.25, degradation_factor=4.0,
                       straggler_rate=0.25, straggler_slowdown=3.0, down_level=2),
}


@dataclass(slots=True)
class FaultReport:
    """What the fault layer did to one run (graceful-degradation summary)."""

    #: transmissions lost (every individual drop, including on retries)
    injected: int = 0
    #: retransmissions performed after a drop
    retries: int = 0
    #: chunks eventually delivered after at least one drop
    recovered: int = 0
    #: chunks lost for good (retry budget exhausted) — forces a rollback
    unrecovered: int = 0
    #: BFS level re-executions after unrecovered losses
    rollbacks: int = 0
    #: directed rank pairs with a degraded link
    degraded_links: int = 0
    #: ranks with a compute slowdown
    straggler_ranks: int = 0
    #: the rank pair whose link goes permanently down (None = none)
    link_down: tuple[int, int] | None = None
    #: slowest rank's retry/timeout/straggler overhead, simulated seconds
    overhead_seconds: float = 0.0
    #: simulated seconds spent on level executions that were rolled back
    rollback_seconds: float = 0.0

    @property
    def added_seconds(self) -> float:
        """Total simulated seconds attributable to faults."""
        return self.overhead_seconds + self.rollback_seconds

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"faults: {self.injected} injected, {self.retries} retries, "
            f"{self.recovered} recovered, {self.unrecovered} unrecovered, "
            f"{self.rollbacks} rollbacks, +{self.added_seconds:.6f}s simulated"
        )


class FaultSchedule:
    """Per-run sampled fault decisions, consulted by the communicator.

    Link degradation, stragglers, and the dying link are sampled once at
    construction from named streams (stable in ``spec.seed`` and
    ``nranks`` only).  Transient drops are drawn from a sequential
    stream: deterministic for identical runs, but a re-executed level
    sees fresh draws — which is what lets a rollback recover.
    """

    __slots__ = ("spec", "nranks", "report", "_drop_rng", "_link_multipliers",
                 "_compute_multipliers", "_down_pair", "_level")

    def __init__(self, spec: FaultSpec, nranks: int) -> None:
        # Deferred so that repro.types -> repro.faults does not pull in the
        # repro.utils package (whose __init__ imports repro.types back).
        from repro.utils.rng import RngFactory

        if nranks < 1:
            raise ConfigurationError(f"need at least one rank, got {nranks}")
        self.spec = spec
        self.nranks = int(nranks)
        self.report = FaultReport()
        factory = RngFactory(spec.seed)
        self._drop_rng = factory.named("faults:drops")
        self._level = 0

        #: degraded directed rank pairs -> wire-cost multiplier
        self._link_multipliers: dict[tuple[int, int], float] = {}
        if spec.degraded_link_rate > 0 and spec.degradation_factor > 1:
            link_rng = factory.named("faults:links")
            for src in range(nranks):
                for dst in range(nranks):
                    if src != dst and link_rng.random() < spec.degraded_link_rate:
                        self._link_multipliers[(src, dst)] = spec.degradation_factor
        self.report.degraded_links = len(self._link_multipliers)

        self._compute_multipliers = np.ones(nranks, dtype=np.float64)
        if spec.straggler_rate > 0 and spec.straggler_slowdown > 1:
            straggler_rng = factory.named("faults:stragglers")
            mask = straggler_rng.random(nranks) < spec.straggler_rate
            self._compute_multipliers[mask] = spec.straggler_slowdown
        self.report.straggler_ranks = int((self._compute_multipliers > 1).sum())

        self._down_pair: tuple[int, int] | None = None
        if spec.down_level is not None and nranks > 1:
            down_rng = factory.named("faults:down")
            src = int(down_rng.integers(nranks))
            dst = int(down_rng.integers(nranks - 1))
            self._down_pair = (src, dst if dst < src else dst + 1)
            self.report.link_down = self._down_pair

    # ------------------------------------------------------------------ #
    # queries made by the communicator
    # ------------------------------------------------------------------ #
    def begin_level(self, level: int) -> None:
        """Tell the schedule which BFS level is executing (link-down gate)."""
        self._level = int(level)

    def link_multiplier(self, src: int, dst: int) -> float:
        """Wire-cost multiplier for messages ``src -> dst`` at the current level."""
        if (
            self._down_pair == (src, dst)
            and self.spec.down_level is not None
            and self._level >= self.spec.down_level
        ):
            return self.spec.down_detour_factor
        return self._link_multipliers.get((src, dst), 1.0)

    def compute_multiplier(self, rank: int) -> float:
        """Compute-time multiplier of ``rank`` (> 1 for stragglers)."""
        return float(self._compute_multipliers[rank])

    @property
    def compute_multipliers(self) -> np.ndarray:
        """Per-rank compute-time multipliers (read-only view for bulk charging)."""
        return self._compute_multipliers

    def transmission_plan(self, src: int, dst: int) -> tuple[int, bool]:
        """Decide the fate of one chunk ``src -> dst``.

        Returns ``(transmissions, delivered)`` and tallies the report:
        each transmission is dropped independently with ``drop_rate``; a
        drop triggers a retransmission until the chunk arrives or
        ``max_retries`` retries are spent.
        """
        spec = self.spec
        if spec.drop_rate <= 0.0:
            return 1, True
        drops = 0
        while drops <= spec.max_retries and self._drop_rng.random() < spec.drop_rate:
            drops += 1
        delivered = drops <= spec.max_retries
        transmissions = drops + 1 if delivered else drops
        if drops:
            self.report.injected += drops
            self.report.retries += transmissions - 1
            if delivered:
                self.report.recovered += 1
            else:
                self.report.unrecovered += 1
        return transmissions, delivered

    def retry_penalty(self, drops: int) -> float:
        """Timeout seconds the sender waits to detect ``drops`` losses."""
        spec = self.spec
        return spec.retry_timeout * sum(spec.backoff**i for i in range(drops))

    # ------------------------------------------------------------------ #
    # bookkeeping shared with the engines
    # ------------------------------------------------------------------ #
    def record_rollback(self, wasted_seconds: float) -> None:
        """Count one level rollback that threw away ``wasted_seconds``."""
        self.report.rollbacks += 1
        self.report.rollback_seconds += float(wasted_seconds)

    def snapshot_report(self, overhead_seconds: float) -> FaultReport:
        """Freeze the current report with the clock's fault-time total."""
        return replace(self.report, overhead_seconds=float(overhead_seconds))


__all__ = [
    "FAULT_PRESETS",
    "FaultReport",
    "FaultSchedule",
    "FaultSpec",
]
