"""Fault-overhead sweeps: how much simulated time does resilience cost?

The paper's machine (BlueGene/L) motivates the question — at 32k nodes,
transient link faults are an operational fact — and the fault layer
(``repro.faults``) answers it in simulation.  :func:`fault_sweep` runs the
same pinned search once fault-free (the baseline) and once per requested
fault spec, and reports the graceful-degradation overhead of each point:
extra simulated seconds, retries, rollbacks, and whether the faulted run
still produced exactly the baseline's levels (it must — recovery is
mandatory, degradation shows up in time only).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.result import BfsResult
from repro.faults import FaultReport, FaultSpec
from repro.graph.csr import CsrGraph
from repro.harness.report import format_table
from repro.types import GridShape, SystemSpec, resolve_system


@dataclass(frozen=True, slots=True)
class FaultSweepPoint:
    """One faulted run compared against the shared fault-free baseline."""

    spec: FaultSpec
    result: BfsResult
    baseline: BfsResult

    @property
    def report(self) -> FaultReport:
        """The run's fault tally (never None: the run had a schedule)."""
        assert self.result.faults is not None
        return self.result.faults

    @property
    def overhead_seconds(self) -> float:
        """Extra simulated seconds relative to the fault-free baseline."""
        return self.result.elapsed - self.baseline.elapsed

    @property
    def overhead_ratio(self) -> float:
        """Overhead as a fraction of the baseline time."""
        return self.overhead_seconds / self.baseline.elapsed

    @property
    def levels_match(self) -> bool:
        """True when recovery preserved the exact baseline levels."""
        return bool(np.array_equal(self.result.levels, self.baseline.levels))


def fault_sweep(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    source: int,
    specs: list[FaultSpec],
    *,
    opts: BfsOptions | None = None,
    system: SystemSpec | str | None = None,
) -> list[FaultSweepPoint]:
    """Run one fault-free baseline plus one faulted run per spec.

    Every run uses the same graph, grid, source, and system (the sweep
    varies only ``faults``), so per-point overheads are directly
    comparable.  Deterministic: identical inputs reproduce identical
    simulated times and fault reports.
    """
    base_spec = replace(resolve_system(system), faults=None)
    baseline = run_bfs(
        build_engine(graph, grid, opts=opts, system=base_spec), source
    )
    points: list[FaultSweepPoint] = []
    for spec in specs:
        engine = build_engine(
            graph, grid, opts=opts, system=replace(base_spec, faults=spec)
        )
        result = run_bfs(engine, source)
        points.append(FaultSweepPoint(spec=spec, result=result, baseline=baseline))
    return points


def drop_rate_sweep(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    source: int,
    drop_rates: list[float],
    *,
    seed: int = 0,
    opts: BfsOptions | None = None,
    system: SystemSpec | str | None = None,
) -> list[FaultSweepPoint]:
    """Convenience sweep over transient message-drop probabilities."""
    specs = [FaultSpec(seed=seed, drop_rate=rate) for rate in drop_rates]
    return fault_sweep(graph, grid, source, specs, opts=opts, system=system)


def format_fault_sweep(points: list[FaultSweepPoint]) -> str:
    """Render a sweep as the standard harness table."""
    rows = [
        [
            f"{p.spec.drop_rate:.3f}",
            f"{p.spec.crash_rate:.3f}",
            f"{p.baseline.elapsed:.6f}",
            f"{p.result.elapsed:.6f}",
            f"{100.0 * p.overhead_ratio:.2f}%",
            p.report.retries,
            p.report.rollbacks,
            p.report.crashes,
            p.report.failovers,
            p.report.replayed_levels,
            "yes" if p.levels_match else "NO",
        ]
        for p in points
    ]
    return format_table(
        ["drop", "crash", "baseline(s)", "faulted(s)", "overhead", "retries",
         "rollbacks", "crashes", "failovers", "replays", "levels ok"],
        rows,
    )
