"""Plain-text rendering of tables and series, in the paper's row format."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table (the Table 1 style used by benches)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render a labelled (x, y) series — one figure curve as text."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} x-values vs {len(ys)} y-values")
    pairs = ", ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
