"""One experiment = one graph + one layout + one machine + one search."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api import build_engine
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.result import BfsResult
from repro.faults import FaultSpec
from repro.graph.generators import build_graph
from repro.types import GraphSpec, GridShape, SystemSpec
from repro.utils.rng import RngFactory


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """A fully pinned experiment instance (deterministic given the seed).

    ``system`` (a :class:`SystemSpec` or preset name) describes the
    machine/mapping/layout/wire/faults in one value.  The per-axis string
    fields are kept so ``dataclasses.replace``-based sweeps keep working
    unchanged; because they carry concrete defaults, they only apply when
    ``system`` is ``None`` (``wire`` and ``faults`` always apply — their
    defaults are ``None``).
    """

    name: str
    graph: GraphSpec
    grid: GridShape
    system: SystemSpec | str | None = None
    layout: str | None = "2d"
    opts: BfsOptions = field(default_factory=BfsOptions)
    machine: str | None = "bluegene"
    mapping: str | None = "planar"
    wire: str | None = None
    faults: FaultSpec | str | None = None
    observe: str | None = None
    source: int | None = None
    target: int | None = None
    #: pick this many random (source, target) pairs and average
    num_searches: int = 1
    max_levels: int | None = None


@dataclass(slots=True)
class ExperimentResult:
    """Aggregated outcome over the experiment's searches."""

    config: ExperimentConfig
    runs: list[BfsResult]

    @property
    def mean_time(self) -> float:
        """Mean simulated execution time over all searches (Figure 4.a metric)."""
        return float(np.mean([r.elapsed for r in self.runs]))

    @property
    def mean_comm_time(self) -> float:
        """Mean simulated communication time (Table 1 metric)."""
        return float(np.mean([r.comm_time for r in self.runs]))

    @property
    def mean_compute_time(self) -> float:
        """Mean simulated computation time."""
        return float(np.mean([r.compute_time for r in self.runs]))

    def mean_message_length(self, phase: str) -> float:
        """Mean vertices received per rank per level in ``phase`` (Table 1 metric)."""
        values = [
            r.stats.mean_message_length_per_level(phase, r.stats.nranks) for r in self.runs
        ]
        return float(np.mean(values))

    @property
    def mean_redundancy(self) -> float:
        """Mean union-fold redundancy ratio across searches (Figure 7 metric)."""
        return float(np.mean([r.stats.redundancy_ratio for r in self.runs]))

    @property
    def mean_wire_bytes(self) -> float:
        """Mean encoded bytes on the wire per search (what the codec shipped)."""
        return float(np.mean([r.stats.total_encoded_bytes for r in self.runs]))

    @property
    def mean_compression(self) -> float:
        """Mean raw-over-encoded compression ratio (1.0 under the raw codec)."""
        return float(np.mean([r.stats.compression_ratio for r in self.runs]))

    @property
    def mean_edges_scanned(self) -> float:
        """Mean edges traversed per search (the direction-optimizing metric)."""
        return float(np.mean([r.stats.total_edges_scanned for r in self.runs]))

    @property
    def total_bottom_up_levels(self) -> int:
        """Levels executed bottom-up across all searches."""
        return sum(
            r.stats.direction_counts().get("bottom-up", 0) for r in self.runs
        )

    def fault_total(self, counter: str) -> int:
        """Sum a :class:`~repro.faults.FaultReport` counter over all searches.

        Fault-free runs contribute 0, so the totals are well-defined for
        mixed sweeps (e.g. ``fault_total("crashes")``,
        ``fault_total("checkpoint_bytes")``).
        """
        return sum(
            int(getattr(r.faults, counter)) for r in self.runs if r.faults is not None
        )

    @property
    def total_crashes(self) -> int:
        """Rank crashes fired across all searches."""
        return self.fault_total("crashes")

    @property
    def total_failovers(self) -> int:
        """Spare + shrink failovers executed across all searches."""
        return self.fault_total("spare_failovers") + self.fault_total("shrink_failovers")

    @property
    def total_replayed_levels(self) -> int:
        """Crash-triggered level replays across all searches."""
        return self.fault_total("replayed_levels")

    @property
    def total_checkpoint_bytes(self) -> int:
        """Buddy-checkpoint replication traffic across all searches."""
        return self.fault_total("checkpoint_bytes")


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Generate the graph, run the configured searches, aggregate.

    Each search gets a fresh engine (fresh communicator, clock, statistics)
    so per-run metrics are independent; source/target pairs are drawn
    deterministically from the experiment seed when not pinned.
    """
    graph = build_graph(config.graph)
    rng = RngFactory(config.graph.seed).named(f"experiment:{config.name}")
    runs: list[BfsResult] = []
    for _ in range(max(1, config.num_searches)):
        source = config.source if config.source is not None else int(rng.integers(graph.n))
        target = config.target
        if target is None and config.source is None:
            target = int(rng.integers(graph.n))
        # The per-axis fields default to concrete strings (for replace-based
        # sweeps), so they act as the system description only when no
        # explicit ``system`` is given — otherwise they would always win.
        axes = (
            {}
            if config.system is not None
            else {
                "machine": config.machine,
                "mapping": config.mapping,
                "layout": config.layout,
            }
        )
        engine = build_engine(
            graph,
            config.grid,
            opts=config.opts,
            system=config.system,
            wire=config.wire,
            faults=config.faults,
            observe=config.observe,
            **axes,
        )
        runs.append(run_bfs(engine, source, target=target, max_levels=config.max_levels))
    return ExperimentResult(config=config, runs=runs)
