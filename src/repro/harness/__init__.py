"""Experiment harness: configs, sweeps, text reports, per-figure data builders."""

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.harness.sweep import sweep
from repro.harness.fault_sweep import (
    FaultSweepPoint,
    drop_rate_sweep,
    fault_sweep,
    format_fault_sweep,
)
from repro.harness.report import format_table, format_series
from repro.harness.export import results_to_rows, write_csv, write_json
from repro.harness.scorecard import Check, run_scorecard, format_scorecard

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "sweep",
    "FaultSweepPoint",
    "fault_sweep",
    "drop_rate_sweep",
    "format_fault_sweep",
    "format_table",
    "format_series",
    "results_to_rows",
    "write_csv",
    "write_json",
    "Check",
    "run_scorecard",
    "format_scorecard",
]
