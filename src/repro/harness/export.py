"""Export experiment results to CSV / JSON for external analysis."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.harness.experiment import ExperimentResult


def results_to_rows(results: list[ExperimentResult]) -> list[dict[str, object]]:
    """Flatten a sweep's results into one dict per experiment."""
    rows: list[dict[str, object]] = []
    for result in results:
        config = result.config
        rows.append(
            {
                "name": config.name,
                "n": config.graph.n,
                "k": config.graph.k,
                "seed": config.graph.seed,
                "kind": config.graph.kind,
                "scale": config.graph.scale if config.graph.scale is not None else "",
                "edge_factor": config.graph.edge_factor,
                "rows": config.grid.rows,
                "cols": config.grid.cols,
                "layout": config.layout,
                "expand": config.opts.expand_collective,
                "fold": config.opts.fold_collective,
                "direction": config.opts.direction.mode,
                "bottom_up_levels": result.total_bottom_up_levels,
                "edges_scanned": result.mean_edges_scanned,
                "machine": config.machine,
                "wire": config.wire or "raw",
                "observe": config.observe or "off",
                "searches": len(result.runs),
                "mean_time_s": result.mean_time,
                "mean_comm_s": result.mean_comm_time,
                "mean_compute_s": result.mean_compute_time,
                "expand_msg_len": result.mean_message_length("expand"),
                "fold_msg_len": result.mean_message_length("fold"),
                "redundancy": result.mean_redundancy,
                "wire_bytes": result.mean_wire_bytes,
                "compression": result.mean_compression,
                "crashes": result.total_crashes,
                "failovers": result.total_failovers,
                "replayed_levels": result.total_replayed_levels,
                "checkpoint_bytes": result.total_checkpoint_bytes,
            }
        )
    return rows


def write_csv(results: list[ExperimentResult], path: str | Path) -> None:
    """Write one CSV row per experiment."""
    rows = results_to_rows(results)
    if not rows:
        raise ValueError("nothing to export: empty result list")
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def write_json(results: list[ExperimentResult], path: str | Path) -> None:
    """Write the flattened results as a JSON array."""
    Path(path).write_text(
        json.dumps(results_to_rows(results), indent=2), encoding="utf-8"
    )
