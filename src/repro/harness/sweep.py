"""Parameter sweeps over experiment configurations."""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import replace

from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment


def sweep(
    base: ExperimentConfig,
    variations: Iterable[dict],
    *,
    runner: Callable[[ExperimentConfig], ExperimentResult] = run_experiment,
) -> list[ExperimentResult]:
    """Run ``base`` once per variation dict (fields to replace on the config).

    Nested replacement is supported for the graph spec via the special keys
    ``n``, ``k`` and ``seed`` (convenience for weak-scaling sweeps where the
    graph grows with P).
    """
    results: list[ExperimentResult] = []
    for idx, overrides in enumerate(variations):
        overrides = dict(overrides)
        graph = base.graph
        graph_overrides = {
            key: overrides.pop(key) for key in ("n", "k", "seed") if key in overrides
        }
        if graph_overrides:
            graph = replace(graph, **graph_overrides)
        name = overrides.pop("name", f"{base.name}[{idx}]")
        config = replace(base, name=name, graph=graph, **overrides)
        results.append(runner(config))
    return results
