"""Command-line chaos-verification sweep (CI's fault smoke job).

Samples hundreds of seeded fault schedules (``repro.faults.chaos``) and
runs each against one pinned search, asserting the chaos invariant: every
recoverable schedule reproduces the fault-free levels byte for byte, and
every unrecoverable one fails loudly with a structured report.  Exits
non-zero when any schedule produces an ``invalid`` outcome, so CI can
gate on it directly::

    PYTHONPATH=src python src/repro/harness/chaos_sweep.py --tiny --seeds 25
    PYTHONPATH=src python src/repro/harness/chaos_sweep.py \
        --n 400 --k 8 --grid 4x4 --seeds 200 --out chaos-report.json

``--batch`` points the sweep at the *batched* traversal instead: each
schedule runs one MS-BFS over that many sources and every per-source row
must reproduce its fault-free sequential baseline — the serving path's
chaos invariant.
"""

from __future__ import annotations

import argparse
import sys

from repro.faults.chaos import run_chaos
from repro.graph.generators import poisson_random_graph
from repro.types import GraphSpec


def _parse_grid(text: str) -> tuple[int, int]:
    rows, _, cols = text.lower().partition("x")
    return int(rows), int(cols)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chaos_sweep",
        description="Chaos-verify the fault layer over seeded random schedules.",
    )
    parser.add_argument("--n", type=int, default=400, help="graph vertices")
    parser.add_argument("--k", type=float, default=8.0, help="average degree")
    parser.add_argument("--grid", type=_parse_grid, default=(4, 4),
                        help="processor grid RxC (default 4x4)")
    parser.add_argument("--graph-seed", type=int, default=11, help="graph RNG seed")
    parser.add_argument("--source", type=int, default=0, help="BFS source vertex")
    parser.add_argument("--seeds", type=int, default=100,
                        help="number of chaos schedules to sample")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first chaos seed (cases use base..base+seeds-1)")
    parser.add_argument("--tiny", action="store_true",
                        help="shrink to a 120-vertex graph on a 2x2 grid (CI smoke)")
    parser.add_argument("--batch", type=int, default=0, metavar="B",
                        help="chaos-verify the batched MS-BFS path over B "
                             "sources (0 = sequential, the default)")
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON chaos report here")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    n, k, grid = args.n, args.k, args.grid
    if args.tiny:
        n, k, grid = 120, 6.0, (2, 2)
    graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=args.graph_seed))
    seeds = range(args.base_seed, args.base_seed + args.seeds)
    batch_sources = None
    if args.batch:
        # spread the batch across the vertex range, source first
        step = max(1, n // args.batch)
        batch_sources = sorted({args.source, *range(0, n, step)})[: args.batch]
    report = run_chaos(graph, grid, args.source, seeds, batch_sources=batch_sources)
    print(report.summary())
    for case in report.invalid_cases():
        print(f"  INVALID seed={case.seed} spec={case.spec}")
        for problem in case.problems:
            print(f"    - {problem}")
        if case.error:
            print(f"    - error: {case.error}")
    if args.out:
        report.to_json(args.out)
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
