"""The reproduction scorecard: every paper claim checked in one shot.

``run_scorecard()`` executes a quick version of each qualitative claim the
benchmarks assert at larger design points, returning a PASS/FAIL table.
It is the "is this reproduction healthy?" smoke check — a few seconds of
host time, deterministic, no pytest required (exposed as
``repro-bfs scorecard``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.crossover import crossover_degree, partition_message_gap
from repro.analysis.memory import BLUEGENE_L_NODE_MEMORY, MemoryModel, fits_in_memory
from repro.analysis.scaling import log_fit, speedup_curve, sqrt_fit
from repro.bfs.options import BfsOptions
from repro.harness.figures import (
    fig4a_weak_scaling,
    fig4c_bidirectional,
    fig5_strong_scaling,
    fig6_partition_volume,
    fig7_redundancy,
)
from repro.harness.report import format_table
from repro.types import GridShape


@dataclass(slots=True)
class Check:
    """One scorecard entry."""

    claim: str
    source: str
    passed: bool
    detail: str


def run_scorecard(*, seed: int = 0) -> list[Check]:
    """Run every claim check at quick design points; returns the entries."""
    checks: list[Check] = []

    # --- Figure 4.a: log-P weak scaling, comm << compute ---------------- #
    points = fig4a_weak_scaling([1, 4, 16, 64], 500, 10.0, seed=seed, searches=2)
    times = np.array([p.mean_time for p in points])
    slope, _b, r2 = log_fit(np.array([1, 4, 16, 64]), times)
    checks.append(
        Check(
            "weak-scaling time grows ~ log P",
            "Fig 4.a",
            slope > 0 and r2 > 0.7 and times[-1] < 20 * times[0],
            f"log2 slope {slope * 1e3:.2f} ms, R^2 {r2:.2f}",
        )
    )
    multi = [p for p in points if p.p > 1]
    checks.append(
        Check(
            "communication small next to computation",
            "Fig 4.a",
            all(p.comm_time < p.compute_time for p in multi),
            f"worst comm/compute {max(p.comm_time / p.compute_time for p in multi):.2f}",
        )
    )

    # --- Figure 4.c: bi-directional wins --------------------------------- #
    bi_rows = fig4c_bidirectional([4, 16], 400, 10.0, seed=seed, searches=3)
    ratios = [b / u for _p, u, b in bi_rows]
    checks.append(
        Check(
            "bi-directional beats uni-directional",
            "Fig 4.c",
            max(ratios) < 1.0,
            f"bi/uni ratios {', '.join(f'{r:.2f}' for r in ratios)}",
        )
    )

    # --- Figure 5: sqrt-P speedup ----------------------------------------- #
    strong = fig5_strong_scaling(16_000, 10.0, [1, 4, 16, 64], seed=seed, searches=2)
    speedups = speedup_curve(np.array([t for _p, t in strong]))
    a, sqrt_r2 = sqrt_fit(np.array([1, 4, 16, 64]), speedups)
    checks.append(
        Check(
            "strong-scaling speedup ~ sqrt(P), tapering",
            "Fig 5",
            a > 0.3 and sqrt_r2 > 0.6 and speedups[-1] < 0.6 * 64,
            f"speedup(64) = {speedups[-1]:.1f}, sqrt-fit R^2 {sqrt_r2:.2f}",
        )
    )

    # --- Figure 6: 1D/2D crossover ---------------------------------------- #
    n6, p6 = 20_000, 16
    low = fig6_partition_volume(n6, 5.0, p6, seed=seed)
    high = fig6_partition_volume(n6, 50.0, p6, seed=seed)
    k_star = crossover_degree(n6, p6)
    checks.append(
        Check(
            "1D wins at low degree, 2D at high degree",
            "Fig 6.a",
            low["1d"].sum() < low["2d"].sum() and high["2d"].sum() < high["1d"].sum(),
            f"k=5: 1D/2D {low['1d'].sum() / low['2d'].sum():.2f}; "
            f"k=50: {high['1d'].sum() / high['2d'].sum():.2f}",
        )
    )
    checks.append(
        Check(
            "analytic crossover brackets correctly",
            "Fig 6.b",
            partition_message_gap(k_star / 2, n6, p6) < 0
            < partition_message_gap(k_star * 2, n6, p6),
            f"k* = {k_star:.1f}",
        )
    )
    k_paper = crossover_degree(4e7, 400)
    checks.append(
        Check(
            "paper-scale crossover near the reported k = 34",
            "Fig 6.b",
            28 <= k_paper <= 37,
            f"solved k = {k_paper:.2f} at n=4e7, P=400",
        )
    )

    # --- Figure 7: union-fold redundancy --------------------------------- #
    red_low = fig7_redundancy([9, 36], 400, 10.0, seed=seed,
                              opts=BfsOptions(fold_collective="union-ring"))
    red_high = fig7_redundancy([9, 36], 60, 60.0, seed=seed,
                               opts=BfsOptions(fold_collective="union-ring"))
    checks.append(
        Check(
            "union-fold removes more on denser graphs, declines with P",
            "Fig 7",
            red_high[0][1] > red_low[0][1] and red_high[1][1] < red_high[0][1],
            f"k=60: {red_high[0][1]:.1f}% -> {red_high[1][1]:.1f}%; "
            f"k=10: {red_low[0][1]:.1f}%",
        )
    )

    # --- Section 2.4: memory headline ------------------------------------- #
    model = MemoryModel(n=100_000 * 32_768, k=10.0, grid=GridShape(128, 256))
    checks.append(
        Check(
            "3.2B vertices fit 32768 x 512 MB nodes",
            "abstract / §2.4",
            fits_in_memory(model, BLUEGENE_L_NODE_MEMORY),
            f"{model.total_bytes / 2**20:.1f} MB/rank of 512 MB",
        )
    )
    return checks


def format_scorecard(checks: list[Check]) -> str:
    """Render the PASS/FAIL table."""
    rows = [
        [c.source, c.claim, "PASS" if c.passed else "FAIL", c.detail] for c in checks
    ]
    table = format_table(["source", "claim", "verdict", "measured"], rows)
    passed = sum(c.passed for c in checks)
    return f"{table}\n\n{passed}/{len(checks)} claims reproduced"
