"""Data-series builders, one per figure/table of the paper's evaluation.

Every builder regenerates the corresponding figure's series at the scaled-
down design points recorded in DESIGN.md's experiment index (the paper ran
on up to 32,768 BlueGene/L nodes; we run the same algorithms on virtual
ranks and report simulated time).  The benchmarks call these builders,
print the series, and assert the paper's qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import build_communicator, build_engine
from repro.analysis.crossover import crossover_degree
from repro.bfs.bidirectional import run_bidirectional_bfs
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.serial import serial_bfs
from repro.collectives.two_phase import subgrid_shape
from repro.graph.csr import CsrGraph
from repro.graph.generators import poisson_random_graph
from repro.types import GraphSpec, GridShape
from repro.utils.rng import RngFactory

#: the paper's BlueGene/L configuration: two-phase grouped-ring collectives
#: (Figures 2-3) with the sent-neighbours cache; the fold's phase-1 rings
#: apply the set-union reduction.
PAPER_OPTS = BfsOptions(expand_collective="two-phase", fold_collective="two-phase")


def square_grid(p: int) -> GridShape:
    """Most-square ``R x C`` mesh for ``p`` ranks."""
    a, b = subgrid_shape(p)
    return GridShape(a, b)


def _random_search_pair(n: int, rng) -> tuple[int, int]:
    source = int(rng.integers(n))
    target = int(rng.integers(n))
    while target == source and n > 1:
        target = int(rng.integers(n))
    return source, target


# ---------------------------------------------------------------------- #
# Figure 4.a — weak scaling
# ---------------------------------------------------------------------- #
@dataclass(slots=True)
class WeakScalingPoint:
    """One (P, |V|/rank, k) weak-scaling measurement."""

    p: int
    n: int
    k: float
    mean_time: float
    comm_time: float
    compute_time: float


def fig4a_weak_scaling(
    p_values: list[int],
    vertices_per_rank: int,
    k: float,
    *,
    seed: int = 0,
    searches: int = 3,
    opts: BfsOptions = PAPER_OPTS,
    full_traversal: bool = True,
) -> list[WeakScalingPoint]:
    """Mean search time as P grows with |V|/rank fixed (one Figure 4.a curve).

    By default each search traverses the whole component (an s-t search
    with an unreachable/absent target), which removes the heavy variance
    of random target distances while keeping the paper's shape: the time
    is dominated by the level count, i.e. the O(log n) diameter.  Pass
    ``full_traversal=False`` for the paper's literal random s-t searches.
    """
    points: list[WeakScalingPoint] = []
    for p in p_values:
        n = vertices_per_rank * p
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=seed))
        rng = RngFactory(seed).named(f"fig4a:{p}:{k}")
        times, comms, computes = [], [], []
        for _ in range(searches):
            source, target = _random_search_pair(n, rng)
            if full_traversal:
                target = None
            engine = build_engine(graph, square_grid(p), opts=opts)
            result = run_bfs(engine, source, target=target)
            times.append(result.elapsed)
            comms.append(result.comm_time)
            computes.append(result.compute_time)
        points.append(
            WeakScalingPoint(
                p=p,
                n=n,
                k=k,
                mean_time=float(np.mean(times)),
                comm_time=float(np.mean(comms)),
                compute_time=float(np.mean(computes)),
            )
        )
    return points


# ---------------------------------------------------------------------- #
# Figure 4.b — message volume vs search-path length
# ---------------------------------------------------------------------- #
def fig4b_message_volume(
    n: int,
    k: float,
    p: int,
    *,
    seed: int = 0,
    opts: BfsOptions = PAPER_OPTS,
) -> list[tuple[int, int]]:
    """Total message volume of an s-t search as a function of path length.

    Picks one source, then one target at every available BFS distance, and
    measures the total vertices received during each terminated search —
    the Figure 4.b curve (volume rises until the path length nears the
    graph diameter, then flattens).
    """
    graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=seed))
    rng = RngFactory(seed).named("fig4b")
    source = int(rng.integers(n))
    levels = serial_bfs(graph, source)
    reachable_levels = sorted(set(levels[levels > 0].tolist()))
    series: list[tuple[int, int]] = []
    for distance in reachable_levels:
        candidates = np.where(levels == distance)[0]
        target = int(candidates[rng.integers(candidates.size)])
        engine = build_engine(graph, square_grid(p), opts=opts)
        result = run_bfs(engine, source, target=target)
        volume = int(result.stats.volume_per_level().sum())
        series.append((distance, volume))
    return series


# ---------------------------------------------------------------------- #
# Figure 4.c — bi-directional vs uni-directional weak scaling
# ---------------------------------------------------------------------- #
def fig4c_bidirectional(
    p_values: list[int],
    vertices_per_rank: int,
    k: float,
    *,
    seed: int = 0,
    searches: int = 3,
    opts: BfsOptions = PAPER_OPTS,
) -> list[tuple[int, float, float]]:
    """(P, uni-directional time, bi-directional time) triples."""
    rows: list[tuple[int, float, float]] = []
    for p in p_values:
        n = vertices_per_rank * p
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=seed))
        rng = RngFactory(seed).named(f"fig4c:{p}")
        uni_times, bi_times = [], []
        for _ in range(searches):
            source, target = _random_search_pair(n, rng)
            grid = square_grid(p)
            engine = build_engine(graph, grid, opts=opts)
            uni_times.append(run_bfs(engine, source, target=target).elapsed)
            comm = build_communicator(grid, buffer_capacity=opts.buffer_capacity)
            forward = build_engine(graph, grid, opts=opts, comm=comm)
            backward = build_engine(graph, grid, opts=opts, comm=comm)
            bi_times.append(
                run_bidirectional_bfs(forward, backward, source, target).elapsed
            )
        rows.append((p, float(np.mean(uni_times)), float(np.mean(bi_times))))
    return rows


# ---------------------------------------------------------------------- #
# Figure 5 — strong scaling
# ---------------------------------------------------------------------- #
def fig5_strong_scaling(
    n: int,
    k: float,
    p_values: list[int],
    *,
    seed: int = 0,
    searches: int = 3,
    opts: BfsOptions = PAPER_OPTS,
) -> list[tuple[int, float]]:
    """(P, mean time) with the graph fixed; speedups follow via scaling.speedup_curve."""
    graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=seed))
    rng = RngFactory(seed).named("fig5")
    pairs = [_random_search_pair(n, rng) for _ in range(searches)]
    rows: list[tuple[int, float]] = []
    for p in p_values:
        times = []
        for source, target in pairs:
            engine = build_engine(graph, square_grid(p), opts=opts)
            times.append(run_bfs(engine, source, target=target).elapsed)
        rows.append((p, float(np.mean(times))))
    return rows


# ---------------------------------------------------------------------- #
# Table 1 — 1D vs 2D processor topologies
# ---------------------------------------------------------------------- #
@dataclass(slots=True)
class TopologyRow:
    """One row of Table 1."""

    vertices_per_rank: int
    k: float
    grid: GridShape
    exec_time: float
    comm_time: float
    expand_length: float
    fold_length: float


def table1_topologies(
    vertices_per_rank: int,
    k: float,
    grids: list[GridShape],
    *,
    seed: int = 0,
    searches: int = 2,
    opts: BfsOptions = PAPER_OPTS,
) -> list[TopologyRow]:
    """Execution/communication time and mean expand/fold message lengths per topology.

    All grids share the same P, so the same graph is partitioned four ways
    — exactly Table 1's setup (the 1D rows are the degenerate meshes
    ``P x 1`` and ``1 x P``).
    """
    p = grids[0].size
    if any(g.size != p for g in grids):
        raise ValueError("all grids in a Table 1 block must have the same P")
    n = vertices_per_rank * p
    graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=seed))
    rng = RngFactory(seed).named(f"table1:{k}")
    pairs = [_random_search_pair(n, rng) for _ in range(searches)]
    rows: list[TopologyRow] = []
    for grid in grids:
        times, comms, expands, folds = [], [], [], []
        for source, target in pairs:
            engine = build_engine(graph, grid, opts=opts)
            result = run_bfs(engine, source, target=target)
            times.append(result.elapsed)
            comms.append(result.comm_time)
            expands.append(result.stats.mean_message_length_per_level("expand", p))
            folds.append(result.stats.mean_message_length_per_level("fold", p))
        rows.append(
            TopologyRow(
                vertices_per_rank=vertices_per_rank,
                k=k,
                grid=grid,
                exec_time=float(np.mean(times)),
                comm_time=float(np.mean(comms)),
                expand_length=float(np.mean(expands)),
                fold_length=float(np.mean(folds)),
            )
        )
    return rows


# ---------------------------------------------------------------------- #
# Figure 6 — per-level message volume, 1D vs 2D, and the crossover degree
# ---------------------------------------------------------------------- #
def _with_isolated_target(graph: CsrGraph) -> tuple[CsrGraph, int]:
    """Append one isolated vertex to serve as the unreachable target."""
    n = graph.n + 1
    indptr = np.concatenate([graph.indptr, graph.indptr[-1:]])
    extended = CsrGraph(n, indptr, graph.indices)
    return extended, n - 1


def fig6_partition_volume(
    n: int,
    k: float,
    p: int,
    *,
    seed: int = 0,
    opts: BfsOptions = PAPER_OPTS,
) -> dict[str, np.ndarray]:
    """Per-level received volume for 2D (square mesh) vs 1D, unreachable target.

    The unreachable target forces the search to exhaust the component —
    the paper's worst-case setup for Figure 6.
    """
    base = poisson_random_graph(GraphSpec(n=n, k=k, seed=seed))
    graph, target = _with_isolated_target(base)
    rng = RngFactory(seed).named(f"fig6:{k}")
    source = int(rng.integers(n))
    series: dict[str, np.ndarray] = {}
    for label, grid in (("2d", square_grid(p)), ("1d", GridShape(1, p))):
        engine = build_engine(graph, grid, opts=opts)
        result = run_bfs(engine, source, target=target)
        series[label] = result.stats.volume_per_level()
    return series


def fig6b_crossover(n: int, p: int, *, seed: int = 0) -> dict[str, object]:
    """Solve the crossover degree for (n, P) and measure both layouts at it."""
    k = crossover_degree(n, p)
    series = fig6_partition_volume(n, k, p, seed=seed)
    return {"k": k, "volumes": series}


# ---------------------------------------------------------------------- #
# Figure 7 — union-fold redundancy ratio
# ---------------------------------------------------------------------- #
def fig7_redundancy(
    p_values: list[int],
    vertices_per_rank: int,
    k: float,
    *,
    seed: int = 0,
    opts: BfsOptions | None = None,
) -> list[tuple[int, float]]:
    """(P, redundancy ratio %) for the union-fold in a weak-scaling sweep."""
    opts = opts or BfsOptions(fold_collective="union-ring")
    rows: list[tuple[int, float]] = []
    for p in p_values:
        n = vertices_per_rank * p
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=seed))
        rng = RngFactory(seed).named(f"fig7:{p}:{k}")
        source = int(rng.integers(n))
        engine = build_engine(graph, square_grid(p), opts=opts)
        result = run_bfs(engine, source)
        rows.append((p, 100.0 * result.stats.redundancy_ratio))
    return rows
