"""Closed-form expected message lengths (Section 3.1).

All expressions give the number of vertex indices a *single processor*
sends in one level-expansion in the worst case where its whole owned block
is on the frontier:

* 1D fold:            ``n * gamma(n/P) * (P-1)/P``
* 2D expand (sparse): ``(n/P) * gamma(n/R) * (R-1)``
* 2D expand (dense):  ``(n/P) * (R-1)``  (all-gather; unscalable in R)
* 2D fold:            ``(n/P) * gamma(n/C) * (C-1)``

Every expected quantity is O(n/P), which is what justifies the paper's
fixed-length message buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.gamma import gamma
from repro.utils.validation import check_positive


def expected_fold_length_1d(n: float, k: float, p: float) -> float:
    """Expected per-processor fold message length under 1D partitioning."""
    check_positive("P", p)
    return n * gamma(n / p, n, k) * (p - 1) / p


def expected_expand_length_2d(n: float, k: float, p: float, r: float) -> float:
    """Expected per-processor expand length under 2D partitioning (sparse sends)."""
    check_positive("P", p)
    check_positive("R", r)
    return (n / p) * gamma(n / r, n, k) * (r - 1)


def worst_case_expand_length_2d(n: float, p: float, r: float) -> float:
    """Dense all-gather expand length ``(n/P)(R-1)`` — grows with R, unscalable."""
    check_positive("P", p)
    check_positive("R", r)
    return (n / p) * (r - 1)


def expected_fold_length_2d(n: float, k: float, p: float, c: float) -> float:
    """Expected per-processor fold length under 2D partitioning."""
    check_positive("P", p)
    check_positive("C", c)
    return (n / p) * gamma(n / c, n, k) * (c - 1)


@dataclass(frozen=True, slots=True)
class MessageLengthModel:
    """Bundle of the Section 3.1 expectations for one ``(n, k, R, C)`` design point."""

    n: int
    k: float
    rows: int
    cols: int

    @property
    def p(self) -> int:
        """Total processors ``P = R * C``."""
        return self.rows * self.cols

    @property
    def fold_1d(self) -> float:
        """1D fold expectation at the same ``P``."""
        return expected_fold_length_1d(self.n, self.k, self.p)

    @property
    def expand_2d(self) -> float:
        """2D expand expectation (sparse per-destination sends)."""
        return expected_expand_length_2d(self.n, self.k, self.p, self.rows)

    @property
    def expand_2d_dense(self) -> float:
        """2D expand under dense all-gather (the unscalable baseline)."""
        return worst_case_expand_length_2d(self.n, self.p, self.rows)

    @property
    def fold_2d(self) -> float:
        """2D fold expectation."""
        return expected_fold_length_2d(self.n, self.k, self.p, self.cols)

    @property
    def total_2d(self) -> float:
        """Expand + fold expectation for the 2D layout."""
        return self.expand_2d + self.fold_2d

    @property
    def per_processor_bound(self) -> float:
        """The O(n/P) yardstick: vertices owned per processor."""
        return self.n / self.p
