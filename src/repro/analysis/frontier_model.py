"""Analytic frontier evolution for BFS on Poisson random graphs.

The per-level frontier of a BFS on G(n, p) follows (for large n) the
discrete epidemic recursion

    f_{l+1} = (1 - s_l) * (1 - exp(-k * f_l)),      s_{l+1} = s_l + f_{l+1},

where ``f_l`` is the fraction of vertices at level ``l`` and ``s_l`` the
fraction reached so far: a vertex is newly reached iff it escaped every
earlier level (factor ``1 - s_l``) and has at least one of its ~Poisson(k)
edges into the current frontier (factor ``1 - e^{-k f_l}``).

This predicts the shapes the paper measures: the explosive early growth
and diameter-flattening of Figure 4.b, the level count (≈ diameter ~
log n / log k) driving Figure 4.a, and the giant-component size.

.. warning::
   Every predictor here assumes *Poisson* degree statistics — the
   recursion's escape factor ``e^{-k f}`` is the Poisson generating
   function.  On skewed-degree graphs (R-MAT and other scale-free
   inputs) the hub vertices make it badly wrong: real frontiers explode
   one or two levels earlier and the level count is shorter.  Pass a
   :class:`~repro.types.GraphSpec` through
   :func:`frontier_fractions_for` to get this checked instead of
   silently mispredicted.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.types import GraphSpec
from repro.utils.validation import check_positive


def frontier_fractions_for(
    spec: GraphSpec, max_levels: int = 64, tol: float = 1e-12
) -> np.ndarray:
    """Spec-aware :func:`predict_frontier_fractions` with a kind guard.

    Raises :class:`ConfigurationError` for non-Poisson specs rather than
    returning a prediction the epidemic recursion is not valid for — the
    hybrid direction policy's ``model`` mode depends on this guard to
    avoid silently mispredicting switch levels on R-MAT inputs.
    """
    if spec.kind != "poisson":
        raise ConfigurationError(
            f"frontier model assumes Poisson degree statistics; got a "
            f"{spec.kind!r} GraphSpec (hub-dominated frontiers do not "
            f"follow the epidemic recursion)"
        )
    return predict_frontier_fractions(spec.n, spec.k, max_levels, tol)


def predict_frontier_fractions(
    n: float, k: float, max_levels: int = 64, tol: float = 1e-12
) -> np.ndarray:
    """Per-level frontier fractions, starting from a single source.

    Stops early when the frontier dies out (below ``tol``); entry 0 is the
    source level (``1/n``).
    """
    check_positive("n", n)
    if k < 0:
        raise ValueError(f"average degree must be non-negative, got {k}")
    fractions = [1.0 / n]
    reached = 1.0 / n
    for _ in range(max_levels - 1):
        f = fractions[-1]
        nxt = (1.0 - reached) * -np.expm1(-k * f)
        if nxt < tol:
            break
        fractions.append(nxt)
        reached += nxt
    return np.array(fractions)


def predict_frontier_sizes(n: int, k: float, max_levels: int = 64) -> np.ndarray:
    """Expected vertices per level (``n`` times the fractions)."""
    return predict_frontier_fractions(n, k, max_levels) * n


def predict_num_levels(n: float, k: float, max_levels: int = 256) -> int:
    """Expected number of populated BFS levels (≈ the graph diameter)."""
    return int(predict_frontier_fractions(n, k, max_levels).shape[0])


def predict_giant_component_fraction(k: float, tol: float = 1e-12) -> float:
    """Fixed point of ``s = 1 - exp(-k s)``: the giant-component fraction.

    Returns 0 for ``k <= 1`` (no giant component below the percolation
    threshold).
    """
    if k <= 1.0:
        return 0.0
    s = 0.5
    for _ in range(10_000):
        nxt = -np.expm1(-k * s)
        if abs(nxt - s) < tol:
            return float(nxt)
        s = nxt
    return float(s)  # pragma: no cover - iteration always converges for k > 1
