"""The paper's gamma function (Section 3.1).

For a Poisson random graph with ``n`` vertices and average degree ``k``,
take any ``m`` rows of the adjacency matrix (an ``m x n`` submatrix
``A'``).  Then

    gamma(m) = 1 - ((n - 1) / n) ** (m * k)

is the probability that a given column of ``A'`` is non-zero.  ``m * k``
is the expected number of non-zeros in ``A'``; gamma approaches
``m * k / n`` for large ``n`` and 1 for small ``n`` — both limits are
property-tested.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def gamma(m: float | np.ndarray, n: float, k: float) -> float | np.ndarray:
    """Probability that a given column of an ``m``-row submatrix is non-zero.

    Vectorised over ``m``.  Computed in log-space for numerical stability at
    the paper's scales (``n`` in the billions, ``m * k`` huge):
    ``1 - exp(m * k * log1p(-1/n))``.
    """
    check_positive("n", n)
    if k < 0:
        raise ValueError(f"average degree must be non-negative, got {k}")
    m_arr = np.asarray(m, dtype=np.float64)
    if (m_arr < 0).any():
        raise ValueError("row count m must be non-negative")
    exponent = m_arr * k * np.log1p(-1.0 / n)
    result = -np.expm1(exponent)
    return float(result) if np.isscalar(m) or m_arr.ndim == 0 else result
