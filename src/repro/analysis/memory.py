"""Per-rank memory model (Section 2.4) and the paper's headline feasibility.

The paper's central claim is *memory* scalability: every per-rank
structure is O(n/P) in expectation, which is what let 100,000 vertices per
rank (3.2 billion total, 32 billion edges) fit in BlueGene/L's 512 MB
nodes.  This module prices each structure:

* stored edge entries            —  n*k/P            (2D: partial lists)
* non-empty column index         —  (n/C) * gamma(n/R)   (Section 2.4.1)
* unique row-vertex index        —  (n/R) * gamma(n/C)   (Section 2.4.1)
* owned-vertex state (levels)    —  n/P
* sent-neighbours cache          —  one flag per unique row vertex
* fixed-length message buffers   —  capacity * (group size staging)

and answers "does design point (|V|/rank, k) fit machine M?" — including
the paper's own 32,768-node run, which the feasibility benchmark checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.gamma import gamma
from repro.types import GridShape
from repro.utils.validation import check_positive

#: BlueGene/L compute-node memory (bytes): 512 MB per node.
BLUEGENE_L_NODE_MEMORY = 512 * 1024 * 1024

#: fraction of node memory usable by the application (CNK kernel, code,
#: stacks, and slack take the rest)
DEFAULT_USABLE_FRACTION = 0.75


@dataclass(frozen=True, slots=True)
class MemoryModel:
    """Expected per-rank memory of the 2D layout for one design point.

    ``bytes_per_vertex`` is the on-node id width (the paper's scale fits
    3.2e9 vertices, requiring > 32-bit global ids; local indices stay
    32-bit — we default to 8-byte global ids and 8-byte table entries,
    which is conservative).
    """

    n: int
    k: float
    grid: GridShape
    bytes_per_vertex: int = 8
    bytes_per_level: int = 8
    buffer_capacity: int = 0

    def __post_init__(self) -> None:
        check_positive("n", self.n)
        check_positive("bytes_per_vertex", self.bytes_per_vertex)
        if self.k < 0:
            raise ValueError(f"average degree must be non-negative, got {self.k}")

    # ------------------------------------------------------------------ #
    # expected structure sizes (element counts)
    # ------------------------------------------------------------------ #
    @property
    def p(self) -> int:
        """Total ranks ``P``."""
        return self.grid.size

    @property
    def expected_edge_entries(self) -> float:
        """Stored adjacency entries per rank: nk/P (each directed entry once)."""
        return self.n * self.k / self.p

    @property
    def expected_nonempty_columns(self) -> float:
        """Non-empty partial edge lists per rank: (n/C) * gamma(n/R)."""
        return (self.n / self.grid.cols) * gamma(self.n / self.grid.rows, self.n, self.k)

    @property
    def expected_unique_rows(self) -> float:
        """Unique vertices appearing in stored lists: (n/R) * gamma(n/C)."""
        return (self.n / self.grid.rows) * gamma(self.n / self.grid.cols, self.n, self.k)

    @property
    def owned_vertices(self) -> float:
        """Vertices owned per rank: n/P."""
        return self.n / self.p

    # ------------------------------------------------------------------ #
    # byte totals
    # ------------------------------------------------------------------ #
    @property
    def edge_bytes(self) -> float:
        """Adjacency storage: row ids + per-column offsets."""
        return (
            self.expected_edge_entries * self.bytes_per_vertex
            + (self.expected_nonempty_columns + 1) * self.bytes_per_vertex
        )

    @property
    def index_bytes(self) -> float:
        """The three Section 2.4.2 global->local maps."""
        entries = (
            self.owned_vertices
            + self.expected_nonempty_columns
            + self.expected_unique_rows
        )
        return entries * self.bytes_per_vertex

    @property
    def state_bytes(self) -> float:
        """Per-owned-vertex search state (levels, frontier flags)."""
        return self.owned_vertices * (self.bytes_per_level + self.bytes_per_vertex)

    @property
    def sent_cache_bytes(self) -> float:
        """One flag per unique row vertex (Section 2.4.3)."""
        return self.expected_unique_rows * 1.0

    @property
    def buffer_bytes(self) -> float:
        """Fixed-length staging buffers: one send + one receive (Section 3.1).

        With ``buffer_capacity == 0`` the worst-case expected message
        length (the Section 3.1 gamma bound) is used as the implied cap.
        """
        if self.buffer_capacity > 0:
            cap = float(self.buffer_capacity)
        else:
            expand = self.owned_vertices * gamma(self.n / self.grid.rows, self.n, self.k) * (
                self.grid.rows - 1
            )
            fold = self.owned_vertices * gamma(self.n / self.grid.cols, self.n, self.k) * (
                self.grid.cols - 1
            )
            cap = max(expand, fold, 1.0)
        return 2 * cap * self.bytes_per_vertex

    @property
    def total_bytes(self) -> float:
        """Expected per-rank total across all structures."""
        return (
            self.edge_bytes
            + self.index_bytes
            + self.state_bytes
            + self.sent_cache_bytes
            + self.buffer_bytes
        )

    def breakdown(self) -> dict[str, float]:
        """Bytes per structure (for reports and tests)."""
        return {
            "edges": self.edge_bytes,
            "indices": self.index_bytes,
            "state": self.state_bytes,
            "sent_cache": self.sent_cache_bytes,
            "buffers": self.buffer_bytes,
        }


def fits_in_memory(
    model: MemoryModel,
    node_memory: int = BLUEGENE_L_NODE_MEMORY,
    usable_fraction: float = DEFAULT_USABLE_FRACTION,
) -> bool:
    """Does the design point fit one rank per node on the given machine?"""
    if not (0 < usable_fraction <= 1):
        raise ValueError(f"usable_fraction must be in (0, 1], got {usable_fraction}")
    return model.total_bytes <= node_memory * usable_fraction


def max_vertices_per_rank(
    k: float,
    grid: GridShape,
    node_memory: int = BLUEGENE_L_NODE_MEMORY,
    usable_fraction: float = DEFAULT_USABLE_FRACTION,
    **model_kwargs,
) -> int:
    """Largest |V|/rank that fits, by bisection on the memory model."""
    lo, hi = 1, 1
    while fits_in_memory(
        MemoryModel(n=hi * grid.size, k=k, grid=grid, **model_kwargs),
        node_memory,
        usable_fraction,
    ):
        lo, hi = hi, hi * 2
        if hi > 1 << 40:  # pragma: no cover - absurd machine
            return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        model = MemoryModel(n=mid * grid.size, k=k, grid=grid, **model_kwargs)
        if fits_in_memory(model, node_memory, usable_fraction):
            lo = mid
        else:
            hi = mid
    return lo
