"""The 1D/2D performance crossover (Figure 6.b).

Assuming a square mesh (``R = C = sqrt(P)``), the paper equates the
per-level message lengths of the two layouts,

    n * gamma(n/P) * (P-1)/P  =  2 * (n/P) * gamma(n/sqrt(P)) * (sqrt(P)-1),

and solves for the average degree ``k`` at which both perform identically.
For the paper's ``P = 400``, ``n = 4e7`` the solution is ``k = 34`` —
:func:`crossover_degree` reproduces that number exactly (tested).
"""

from __future__ import annotations

import math

from scipy.optimize import brentq

from repro.analysis.model import expected_expand_length_2d, expected_fold_length_1d, \
    expected_fold_length_2d
from repro.utils.validation import check_positive


def partition_message_gap(k: float, n: float, p: float) -> float:
    """1D minus 2D expected per-level message length at degree ``k``.

    Positive values mean 1D sends more (2D wins); the crossover is the
    root.  Uses ``R = C = sqrt(P)`` like the paper's equation.
    """
    root_p = math.sqrt(p)
    lhs = expected_fold_length_1d(n, k, p)
    rhs = expected_expand_length_2d(n, k, p, root_p) + expected_fold_length_2d(n, k, p, root_p)
    return lhs - rhs


def crossover_degree(n: float, p: float, k_max: float = 1e4) -> float:
    """Average degree at which 1D and 2D message volumes are equal.

    Solved with Brent's method on :func:`partition_message_gap` over
    ``(k_min, k_max)``.  Raises ``ValueError`` when no crossover exists in
    the bracket (e.g. pathological ``P``).
    """
    check_positive("n", n)
    check_positive("P", p)
    if p < 4:
        raise ValueError("a 2D mesh needs at least 4 processors")
    k_min = 1e-6
    lo = partition_message_gap(k_min, n, p)
    hi = partition_message_gap(k_max, n, p)
    if lo * hi > 0:
        raise ValueError(
            f"no 1D/2D crossover in k=({k_min}, {k_max}) for n={n}, P={p} "
            f"(gap endpoints {lo:.3g}, {hi:.3g})"
        )
    return float(brentq(partition_message_gap, k_min, k_max, args=(n, p)))
