"""Scaling-curve helpers: speedups, log/sqrt regression fits, diameter law.

Used by the weak-scaling (Figure 4.a: time ~ log P) and strong-scaling
(Figure 5: speedup ~ sqrt(P)) benchmarks to *quantify* the paper's claimed
scaling shapes rather than eyeball them.
"""

from __future__ import annotations

import numpy as np


def speedup_curve(times: np.ndarray, baseline: float | None = None) -> np.ndarray:
    """Speedup of each entry relative to ``baseline`` (default: first entry)."""
    times = np.asarray(times, dtype=np.float64)
    if times.size == 0:
        return times
    if (times <= 0).any():
        raise ValueError("times must be positive")
    base = float(times[0]) if baseline is None else float(baseline)
    return base / times


def log_fit(p_values: np.ndarray, times: np.ndarray) -> tuple[float, float, float]:
    """Least-squares fit ``time = a * log2(P) + b``.

    Returns ``(a, b, r2)``.  The paper's regression analysis confirms the
    weak-scaling execution time grows in proportion to log P.
    """
    p_values = np.asarray(p_values, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if p_values.shape != times.shape or p_values.size < 2:
        raise ValueError("need matching arrays of at least two points")
    x = np.log2(p_values)
    a, b = np.polyfit(x, times, 1)
    return float(a), float(b), _r_squared(times, a * x + b)


def sqrt_fit(p_values: np.ndarray, speedups: np.ndarray) -> tuple[float, float]:
    """Least-squares fit ``speedup = a * sqrt(P)`` (through the origin).

    Returns ``(a, r2)``.  Figure 5's speedup grows in proportion to
    sqrt(P) for small P.
    """
    p_values = np.asarray(p_values, dtype=np.float64)
    speedups = np.asarray(speedups, dtype=np.float64)
    if p_values.shape != speedups.shape or p_values.size < 2:
        raise ValueError("need matching arrays of at least two points")
    x = np.sqrt(p_values)
    a = float((x * speedups).sum() / (x * x).sum())
    return a, _r_squared(speedups, a * x)


def expected_diameter(n: float, k: float) -> float:
    """Asymptotic random-graph diameter ``log n / log k`` [Bollobas 1981].

    The paper's weak-scaling time is dominated by the number of BFS levels,
    which tracks this quantity: O(log n), shrinking as the degree grows.
    """
    if n < 2:
        return 0.0
    if k <= 1:
        return float("inf")
    return float(np.log(n) / np.log(k))


def _r_squared(actual: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(((actual - predicted) ** 2).sum())
    total = float(((actual - actual.mean()) ** 2).sum())
    return 1.0 - residual / total if total > 0 else 1.0
