"""Communication lower bounds from bisection bandwidth, and predicted
compressed traffic.

Section 4.1 quotes BlueGene/L's bisection bandwidth (360 GB/s per
direction for the full 64x32x32 torus).  Any algorithm that must move
``B`` bytes across the machine's bisection needs at least ``B /
bisection_bandwidth`` seconds — a "speed of light" no simulation can beat.
These helpers compute that bound for a BFS level and let the tests assert
the simulator never reports an impossible time.

The second half of the module predicts what a :mod:`repro.wire` codec
puts on the wire for the Section 3.1 expected message lengths: γ(m)
gives the expected number of frontier vertices per message, the owner
block size gives the index span they are drawn from, and from those two
numbers each codec's encoded size follows in closed form
(:func:`predicted_message_bytes`, :func:`predicted_level_traffic_bytes`).
"""

from __future__ import annotations

import math

from repro.analysis.model import expected_expand_length_2d, expected_fold_length_2d
from repro.machine.bluegene import MachineModel
from repro.machine.torus import Torus3D
from repro.types import GridShape
from repro.utils.validation import check_positive


def bisection_bandwidth(torus: Torus3D, model: MachineModel) -> float:
    """Bytes/second across the torus' best bisection (one direction)."""
    return torus.bisection_links * model.bandwidth


def level_traffic_bytes(n: float, k: float, grid: GridShape, model: MachineModel) -> float:
    """Expected wire bytes of one worst-case 2D level (expand + fold, all ranks)."""
    check_positive("n", n)
    p = grid.size
    per_rank = expected_expand_length_2d(n, k, p, grid.rows) + expected_fold_length_2d(
        n, k, p, grid.cols
    )
    return per_rank * p * model.bytes_per_vertex


def _varint_bytes_for(value: float) -> float:
    """LEB128 bytes needed for a non-negative value (continuous model)."""
    if value < 1.0:
        return 1.0
    return max(1.0, math.ceil((math.floor(math.log2(value)) + 1) / 7.0))


def predicted_message_bytes(
    wire: str, num_vertices: float, span: float, *, bytes_per_vertex: int = 8
) -> float:
    """Expected encoded bytes for one message of ``num_vertices`` sorted
    vertex ids drawn from an index range of ``span`` vertices.

    This is the closed-form companion of the :mod:`repro.wire` codecs:

    * ``"raw"`` — ``bytes_per_vertex`` per id.
    * ``"delta-varint"`` — consecutive gaps average ``g = span/m``, zigzag
      doubles them, and LEB128 spends 7 bits per byte, so each id costs
      roughly ``bytes(2g)``; a count header rides along.
    * ``"bitmap"`` — one bit per vertex of the span plus the base/span
      header, independent of ``m`` (γ saturation makes this a constant).
    * ``"adaptive"`` — the cheaper of the two, which is what the runtime
      codec picks per message.
    """
    check_positive("span", span)
    if num_vertices <= 0.0:
        return 0.0
    if wire == "raw":
        return num_vertices * bytes_per_vertex
    if wire == "delta-varint":
        gap = max(1.0, span / num_vertices)
        return _varint_bytes_for(num_vertices) + num_vertices * _varint_bytes_for(
            2.0 * gap
        )
    if wire == "bitmap":
        return 2.0 * _varint_bytes_for(span) + math.ceil(span / 8.0)
    if wire == "adaptive":
        return 1.0 + min(
            predicted_message_bytes("delta-varint", num_vertices, span),
            predicted_message_bytes("bitmap", num_vertices, span),
        )
    raise ValueError(f"unknown wire codec {wire!r}")


def predicted_level_traffic_bytes(
    n: float, k: float, grid: GridShape, model: MachineModel, wire: str = "raw"
) -> float:
    """Expected *encoded* wire bytes of one worst-case 2D level.

    Uses the Section 3.1 expectations for message lengths: each rank sends
    ``R-1`` expand messages of γ-expected length over its owned block
    (span ``n/P``) and ``C-1`` fold messages over the destination column
    block (span ``n/C``).  With ``wire="raw"`` this reduces to
    :func:`level_traffic_bytes` up to varint-header rounding.
    """
    check_positive("n", n)
    p = grid.size
    rows, cols = grid.rows, grid.cols
    bpv = model.bytes_per_vertex
    total = 0.0
    if rows > 1:
        per_message = expected_expand_length_2d(n, k, p, rows) / (rows - 1)
        total += (rows - 1) * predicted_message_bytes(
            wire, per_message, n / p, bytes_per_vertex=bpv
        )
    if cols > 1:
        per_message = expected_fold_length_2d(n, k, p, cols) / (cols - 1)
        total += (cols - 1) * predicted_message_bytes(
            wire, per_message, n / cols, bytes_per_vertex=bpv
        )
    return total * p


def predicted_sieved_level_traffic_bytes(
    n: float,
    k: float,
    grid: GridShape,
    model: MachineModel,
    wire: str = "raw",
    *,
    visited_fraction: float = 0.5,
) -> float:
    """Expected encoded wire bytes of one 2D level with the sieve on.

    The sieve-aware companion of :func:`predicted_level_traffic_bytes`:
    expand traffic is untouched, but each fold message only carries the
    candidates the sender's shadow does not already mark as visited at
    the destination.  ``visited_fraction`` is the expected fraction of
    fold candidates so suppressed — in a dense mid-search level roughly
    the fraction of the graph already reached, since each candidate's
    probability of being old is the fraction of earlier-level
    discoveries.  On top of the shrunken fold messages, each rank pays
    ``C-1`` end-of-level summary broadcasts: a bitmap over its owned
    block (``n/P`` bits) plus a fixed header word, to every row peer.
    """
    check_positive("n", n)
    if not 0.0 <= visited_fraction <= 1.0:
        raise ValueError(
            f"visited_fraction must be in [0, 1], got {visited_fraction}"
        )
    p = grid.size
    rows, cols = grid.rows, grid.cols
    bpv = model.bytes_per_vertex
    total = 0.0
    if rows > 1:
        per_message = expected_expand_length_2d(n, k, p, rows) / (rows - 1)
        total += (rows - 1) * predicted_message_bytes(
            wire, per_message, n / p, bytes_per_vertex=bpv
        )
    if cols > 1:
        per_message = expected_fold_length_2d(n, k, p, cols) / (cols - 1)
        per_message *= 1.0 - visited_fraction
        total += (cols - 1) * predicted_message_bytes(
            wire, per_message, n / cols, bytes_per_vertex=bpv
        )
        # summary broadcasts: raw bitmaps, never run through the codec
        total += (cols - 1) * (8.0 + math.ceil((n / p) / 8.0))
    return total * p


def predicted_compression_ratio(
    n: float, k: float, grid: GridShape, model: MachineModel, wire: str
) -> float:
    """Raw-over-encoded ratio the γ model predicts for one dense level."""
    encoded = predicted_level_traffic_bytes(n, k, grid, model, wire)
    if encoded == 0.0:
        return 1.0
    return predicted_level_traffic_bytes(n, k, grid, model, "raw") / encoded


def level_time_lower_bound(
    n: float, k: float, grid: GridShape, torus: Torus3D, model: MachineModel
) -> float:
    """Seconds one worst-case level needs at minimum.

    Two terms, take the max: (a) roughly half the traffic crosses the
    bisection; (b) no rank can inject its own traffic faster than one
    link allows.
    """
    total = level_traffic_bytes(n, k, grid, model)
    bisection_term = (total / 2) / bisection_bandwidth(torus, model)
    per_rank_term = (total / grid.size) / model.bandwidth
    return max(bisection_term, per_rank_term)
