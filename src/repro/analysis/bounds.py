"""Communication lower bounds from bisection bandwidth.

Section 4.1 quotes BlueGene/L's bisection bandwidth (360 GB/s per
direction for the full 64x32x32 torus).  Any algorithm that must move
``B`` bytes across the machine's bisection needs at least ``B /
bisection_bandwidth`` seconds — a "speed of light" no simulation can beat.
These helpers compute that bound for a BFS level and let the tests assert
the simulator never reports an impossible time.
"""

from __future__ import annotations

from repro.analysis.model import expected_expand_length_2d, expected_fold_length_2d
from repro.machine.bluegene import MachineModel
from repro.machine.torus import Torus3D
from repro.types import GridShape
from repro.utils.validation import check_positive


def bisection_bandwidth(torus: Torus3D, model: MachineModel) -> float:
    """Bytes/second across the torus' best bisection (one direction)."""
    return torus.bisection_links * model.bandwidth


def level_traffic_bytes(n: float, k: float, grid: GridShape, model: MachineModel) -> float:
    """Expected wire bytes of one worst-case 2D level (expand + fold, all ranks)."""
    check_positive("n", n)
    p = grid.size
    per_rank = expected_expand_length_2d(n, k, p, grid.rows) + expected_fold_length_2d(
        n, k, p, grid.cols
    )
    return per_rank * p * model.bytes_per_vertex


def level_time_lower_bound(
    n: float, k: float, grid: GridShape, torus: Torus3D, model: MachineModel
) -> float:
    """Seconds one worst-case level needs at minimum.

    Two terms, take the max: (a) roughly half the traffic crosses the
    bisection; (b) no rank can inject its own traffic faster than one
    link allows.
    """
    total = level_traffic_bytes(n, k, grid, model)
    bisection_term = (total / 2) / bisection_bandwidth(torus, model)
    per_rank_term = (total / grid.size) / model.bandwidth
    return max(bisection_term, per_rank_term)
