"""Analytic model: gamma function, message-length bounds, 1D/2D crossover."""

from repro.analysis.gamma import gamma
from repro.analysis.model import (
    expected_fold_length_1d,
    expected_expand_length_2d,
    expected_fold_length_2d,
    worst_case_expand_length_2d,
    MessageLengthModel,
)
from repro.analysis.crossover import crossover_degree, partition_message_gap
from repro.analysis.bounds import (
    bisection_bandwidth,
    level_time_lower_bound,
    level_traffic_bytes,
)
from repro.analysis.frontier_model import (
    predict_frontier_fractions,
    predict_frontier_sizes,
    predict_giant_component_fraction,
    predict_num_levels,
)
from repro.analysis.memory import (
    BLUEGENE_L_NODE_MEMORY,
    MemoryModel,
    fits_in_memory,
    max_vertices_per_rank,
)
from repro.analysis.scaling import (
    speedup_curve,
    log_fit,
    sqrt_fit,
    expected_diameter,
)

__all__ = [
    "gamma",
    "expected_fold_length_1d",
    "expected_expand_length_2d",
    "expected_fold_length_2d",
    "worst_case_expand_length_2d",
    "MessageLengthModel",
    "crossover_degree",
    "partition_message_gap",
    "bisection_bandwidth",
    "level_time_lower_bound",
    "level_traffic_bytes",
    "predict_frontier_fractions",
    "predict_frontier_sizes",
    "predict_giant_component_fraction",
    "predict_num_levels",
    "BLUEGENE_L_NODE_MEMORY",
    "MemoryModel",
    "fits_in_memory",
    "max_vertices_per_rank",
    "speedup_curve",
    "log_fit",
    "sqrt_fit",
    "expected_diameter",
]
