"""Wire-codec interface and registry.

A :class:`WireCodec` turns a vertex-id payload (a contiguous ``int64``
array, the only thing this library ever puts on the wire) into bytes and
back.  The paper ships raw 8-byte ids on every expand/fold message; the
compression literature on distributed BFS (Lv et al.'s *Compression and
Sieve*; Buluç & Madduri's bitmap frontiers) shows that encoding frontiers
as deltas or dense bitsets cuts communication volume dramatically once the
frontier saturates — exactly the regime the Section 3.1 γ(m) analysis
describes.

Codecs are consulted in two places:

* the **simulated** runtime (:class:`~repro.runtime.comm.Communicator`)
  charges the network for :meth:`WireCodec.encoded_nbytes` instead of
  ``num_vertices * bytes_per_vertex``, plus a calibrated per-vertex
  encode/decode CPU cost on the clock;
* the **SPMD** multiprocessing backend round-trips real encoded buffers
  (:meth:`encode` on send, :meth:`decode` on receive), so every codec is
  exercised under true parallelism.

The contract is ``decode(encode(x)) == x`` and ``encoded_nbytes(x) ==
len(encode(x))`` for every payload a codec accepts; see the concrete
classes for per-codec restrictions (only :class:`~repro.wire.codecs.
BitmapCodec` restricts its domain).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import CodecError


class WireCodec(abc.ABC):
    """Encode/decode vertex-id payloads for the wire, with cost accounting.

    ``encode_cost_per_vertex`` / ``decode_cost_per_vertex`` are seconds of
    simulated CPU time per payload vertex, calibrated against the 700 MHz
    BlueGene/L core like the other :class:`~repro.machine.bluegene.
    MachineModel` compute constants.  The raw codec's costs are zero so the
    default runtime stays byte-identical to the uncompressed one.
    """

    name: str = "codec-base"
    #: simulated seconds of sender CPU per encoded vertex
    encode_cost_per_vertex: float = 0.0
    #: simulated seconds of receiver CPU per decoded vertex
    decode_cost_per_vertex: float = 0.0

    @abc.abstractmethod
    def encode(self, payload: np.ndarray) -> bytes:
        """Serialise ``payload`` (1-D int64 vertex ids) to wire bytes."""

    @abc.abstractmethod
    def decode(self, data: bytes) -> np.ndarray:
        """Inverse of :meth:`encode`; returns a 1-D int64 array."""

    def encoded_nbytes(self, payload: np.ndarray) -> int:
        """Wire bytes :meth:`encode` would produce, without building them.

        Subclasses override this with a vectorised computation — the
        simulated runtime calls it on every message, so it must be cheap.
        """
        return len(self.encode(payload))

    # ------------------------------------------------------------------ #
    # simulated CPU cost
    # ------------------------------------------------------------------ #
    def encode_seconds(self, payload: np.ndarray) -> float:
        """Simulated sender-side CPU seconds to encode ``payload``."""
        return self.encode_cost_per_vertex * int(np.size(payload))

    def decode_seconds(self, payload: np.ndarray) -> float:
        """Simulated receiver-side CPU seconds to decode ``payload``."""
        return self.decode_cost_per_vertex * int(np.size(payload))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
WIRE_CODECS: dict[str, type] = {}


def register_codec(cls: type) -> type:
    """Class decorator: register a :class:`WireCodec` under its ``name``."""
    WIRE_CODECS[cls.name] = cls
    return cls


def get_codec(name: str) -> WireCodec:
    """Instantiate the codec registered under ``name``."""
    if not WIRE_CODECS:  # direct base-module import: register the built-ins
        from repro.wire import codecs  # noqa: F401
    try:
        return WIRE_CODECS[name]()
    except KeyError:
        raise CodecError(
            f"unknown wire codec {name!r}; available: {sorted(WIRE_CODECS)}"
        ) from None


def resolve_wire(wire: "WireCodec | str | None") -> WireCodec:
    """Coerce a ``wire=`` argument (codec, name, or None) to a codec instance.

    ``None`` means the raw codec — today's uncompressed behaviour.
    """
    if wire is None:
        return get_codec("raw")
    if isinstance(wire, str):
        return get_codec(wire)
    if isinstance(wire, WireCodec):
        return wire
    raise CodecError(
        f"wire must be a WireCodec, a codec name, or None, got {type(wire).__name__}"
    )
