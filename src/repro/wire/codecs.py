"""Concrete frontier wire codecs: raw, delta+varint, bitmap, adaptive.

Payloads in this library are vertex-id arrays, and on every hot path they
are *sorted and duplicate-free* (frontiers and fold buckets come out of
``np.unique``).  That structure is what the codecs exploit:

* :class:`RawCodec` — little-endian ``int64`` ids, byte-identical to the
  paper's wire format (8 bytes/vertex, zero CPU cost).
* :class:`DeltaVarintCodec` — consecutive differences, zigzag-mapped and
  LEB128-encoded.  Sorted ids give small non-negative gaps, so dense
  frontiers cost ~1-2 bytes/vertex instead of 8.  Round-trips *any* int64
  array (order and duplicates preserved), so forwarding collectives that
  concatenate buckets (bruck, two-phase) stay safe.
* :class:`BitmapCodec` — a dense bitset over the message's vertex range
  (``[min, max]``, a sub-range of the destination rank's owned block for
  fold traffic).  Cost is ``span/8`` bytes regardless of how many vertices
  are set — unbeatable once the frontier saturates its block.
* :class:`AdaptiveCodec` — per-message choice between the two compressed
  formats from the frontier's density, mirroring the γ(m) saturation
  analysis of Section 3.1: with mean gap ``g = span/count``, delta+varint
  pays ~``bytes(2g)`` per vertex while the bitmap pays ``g/8``, so the
  bitmap wins once the density ``1/g`` exceeds roughly 1/8 — which γ(m)
  predicts as soon as ``m·k`` approaches the block size
  (:func:`repro.analysis.bounds.predicted_message_bytes` is the matching
  closed form).

Encode/decode CPU costs are seconds per vertex on the simulated 700 MHz
BlueGene/L core (a few cycles per vertex for bitmap word operations, ~15
cycles per vertex for varint branch-per-byte loops).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError
from repro.types import VERTEX_DTYPE, as_vertex_array
from repro.wire.base import WireCodec, register_codec

#: LEB128 length thresholds: a zigzagged value needs ``1 + #(thresholds <= u)``
#: bytes (7 payload bits per byte, 10 bytes max for 64-bit values).
_VARINT_THRESHOLDS = np.array([1 << (7 * i) for i in range(1, 10)], dtype=np.uint64)

_ADAPTIVE_VARINT_TAG = 0
_ADAPTIVE_BITMAP_TAG = 1


# ---------------------------------------------------------------------- #
# varint / zigzag primitives
# ---------------------------------------------------------------------- #
def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 deltas to unsigned ``uint64`` (-1→1, 0→0, 1→2, …)."""
    values = np.asarray(values, dtype=np.int64)
    return (values.astype(np.uint64) << np.uint64(1)) ^ (
        values >> np.int64(63)
    ).astype(np.uint64)


def varint_nbytes(unsigned: np.ndarray) -> np.ndarray:
    """LEB128 byte length of each unsigned 64-bit value (vectorised)."""
    u = np.asarray(unsigned, dtype=np.uint64)
    return 1 + np.searchsorted(_VARINT_THRESHOLDS, u, side="right")


def _append_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint in encoded payload")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def _deltas(payload: np.ndarray) -> np.ndarray:
    """First value then consecutive differences (wrapping int64 arithmetic)."""
    deltas = np.empty(payload.size, dtype=np.int64)
    deltas[0] = payload[0]
    np.subtract(payload[1:], payload[:-1], out=deltas[1:])
    return deltas


def _is_bitmap_eligible(payload: np.ndarray) -> bool:
    """Bitmaps represent sets: sorted, duplicate-free, non-negative ids."""
    if payload.size == 0:
        return True
    if payload[0] < 0:
        return False
    return payload.size == 1 or bool(np.all(np.diff(payload) > 0))


# ---------------------------------------------------------------------- #
# codecs
# ---------------------------------------------------------------------- #
@register_codec
class RawCodec(WireCodec):
    """Uncompressed little-endian int64 ids — the paper's wire format."""

    name = "raw"
    encode_cost_per_vertex = 0.0
    decode_cost_per_vertex = 0.0

    def encode(self, payload: np.ndarray) -> bytes:
        return as_vertex_array(payload).astype("<i8", copy=False).tobytes()

    def decode(self, data: bytes) -> np.ndarray:
        return np.frombuffer(data, dtype="<i8").astype(VERTEX_DTYPE)

    def encoded_nbytes(self, payload: np.ndarray) -> int:
        return 8 * int(np.size(payload))


@register_codec
class DeltaVarintCodec(WireCodec):
    """Sort-exploiting delta + zigzag + LEB128 encoding of vertex ids.

    Wire format: ``varint(count)`` then one zigzag-varint per delta, where
    ``delta[0] = x[0]`` and ``delta[i] = x[i] - x[i-1]`` (wrapping int64
    arithmetic, so the round-trip is exact for *every* int64 array — the
    zigzag step keeps occasional negative gaps from concatenated buckets
    cheap instead of catastrophic).
    """

    name = "delta-varint"
    # ~15 / ~12 cycles per vertex at 700 MHz (branchy byte-at-a-time loops)
    encode_cost_per_vertex = 2.1e-8
    decode_cost_per_vertex = 1.7e-8

    def encode(self, payload: np.ndarray) -> bytes:
        payload = as_vertex_array(payload)
        out = bytearray()
        _append_varint(out, payload.size)
        if payload.size:
            for value in zigzag(_deltas(payload)).tolist():
                _append_varint(out, value)
        return bytes(out)

    def decode(self, data: bytes) -> np.ndarray:
        count, pos = _read_varint(data, 0)
        values = np.empty(count, dtype=np.uint64)
        for i in range(count):
            value, pos = _read_varint(data, pos)
            values[i] = value
        if pos != len(data):
            raise CodecError(f"{len(data) - pos} trailing bytes after encoded payload")
        halved = values >> np.uint64(1)
        deltas = np.where(values & np.uint64(1), ~halved, halved).astype(np.int64)
        return np.cumsum(deltas, dtype=np.int64)

    def encoded_nbytes(self, payload: np.ndarray) -> int:
        payload = as_vertex_array(payload)
        header = int(varint_nbytes(payload.size))
        if payload.size == 0:
            return header
        return header + int(varint_nbytes(zigzag(_deltas(payload))).sum())


@register_codec
class BitmapCodec(WireCodec):
    """Dense bitset over the message's vertex range.

    Wire format: ``varint(base) varint(span)`` then ``ceil(span/8)`` bytes
    of little-endian bits, where ``base = min(x)`` and ``span = max(x) -
    min(x) + 1``.  Fold payloads are slices of the destination rank's
    owned block, so the span never exceeds that block's width.  Bitmaps
    represent sets: :meth:`encode` rejects unsorted, duplicated, or
    negative ids (:meth:`encoded_nbytes` still prices such payloads as the
    bitset of their value range, which is what a real implementation would
    ship after an in-flight dedup).
    """

    name = "bitmap"
    # ~3 / ~4 cycles per vertex at 700 MHz (word-wide set/scan operations)
    encode_cost_per_vertex = 4.0e-9
    decode_cost_per_vertex = 6.0e-9

    def encode(self, payload: np.ndarray) -> bytes:
        payload = as_vertex_array(payload)
        if payload.size == 0:
            return b""
        if not _is_bitmap_eligible(payload):
            raise CodecError(
                "bitmap codec requires sorted, duplicate-free, non-negative "
                "vertex ids (frontier/bucket payloads satisfy this)"
            )
        base = int(payload[0])
        span = int(payload[-1]) - base + 1
        out = bytearray()
        _append_varint(out, base)
        _append_varint(out, span)
        bits = np.zeros(span, dtype=np.uint8)
        bits[payload - base] = 1
        out.extend(np.packbits(bits, bitorder="little").tobytes())
        return bytes(out)

    def decode(self, data: bytes) -> np.ndarray:
        if not data:
            return np.empty(0, dtype=VERTEX_DTYPE)
        base, pos = _read_varint(data, 0)
        span, pos = _read_varint(data, pos)
        if len(data) - pos != (span + 7) // 8:
            raise CodecError(
                f"bitmap payload has {len(data) - pos} bitset bytes, "
                f"expected {(span + 7) // 8} for span {span}"
            )
        bits = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8, offset=pos), bitorder="little"
        )[:span]
        return np.flatnonzero(bits).astype(VERTEX_DTYPE) + base

    def encoded_nbytes(self, payload: np.ndarray) -> int:
        payload = as_vertex_array(payload)
        if payload.size == 0:
            return 0
        base = int(payload.min())
        span = int(payload.max()) - base + 1
        header = int(varint_nbytes(max(base, 0))) + int(varint_nbytes(span))
        return header + (span + 7) // 8


@register_codec
class AdaptiveCodec(WireCodec):
    """Per-message bitmap-vs-varint choice driven by frontier density.

    One tag byte selects the format; the cheaper of the two encodings (by
    exact byte count) follows.  Payloads a bitmap cannot represent
    (unsorted or duplicated — forwarding collectives concatenate buckets)
    always take the varint path, in both the byte accounting and the real
    SPMD round-trip, so the two stay consistent.
    """

    name = "adaptive"

    def __init__(self) -> None:
        self._varint = DeltaVarintCodec()
        self._bitmap = BitmapCodec()

    def _choose(self, payload: np.ndarray) -> WireCodec:
        if not _is_bitmap_eligible(payload):
            return self._varint
        if self._bitmap.encoded_nbytes(payload) < self._varint.encoded_nbytes(payload):
            return self._bitmap
        return self._varint

    def encode(self, payload: np.ndarray) -> bytes:
        payload = as_vertex_array(payload)
        if payload.size == 0:
            return b""
        codec = self._choose(payload)
        tag = _ADAPTIVE_BITMAP_TAG if codec is self._bitmap else _ADAPTIVE_VARINT_TAG
        return bytes([tag]) + codec.encode(payload)

    def decode(self, data: bytes) -> np.ndarray:
        if not data:
            return np.empty(0, dtype=VERTEX_DTYPE)
        if data[0] == _ADAPTIVE_BITMAP_TAG:
            return self._bitmap.decode(data[1:])
        if data[0] == _ADAPTIVE_VARINT_TAG:
            return self._varint.decode(data[1:])
        raise CodecError(f"unknown adaptive-codec tag byte {data[0]}")

    def encoded_nbytes(self, payload: np.ndarray) -> int:
        payload = as_vertex_array(payload)
        if payload.size == 0:
            return 0
        return 1 + self._choose(payload).encoded_nbytes(payload)

    def encode_seconds(self, payload: np.ndarray) -> float:
        return self._choose(as_vertex_array(payload)).encode_seconds(payload)

    def decode_seconds(self, payload: np.ndarray) -> float:
        return self._choose(as_vertex_array(payload)).decode_seconds(payload)
