"""repro.wire — pluggable frontier compression codecs.

``WireCodec`` implementations turn vertex-id payloads into wire bytes and
back; the simulated runtime charges the network for the *encoded* size
(plus per-vertex encode/decode CPU), and the SPMD backend round-trips the
real buffers.  Select one via ``SystemSpec(wire=...)``, the ``wire=``
keyword on the API entry points, or the CLI ``--wire-codec`` flag:

========== ====================================================== =========
name       encoding                                               best for
========== ====================================================== =========
raw        little-endian int64 ids (the paper's format)           baseline
delta-varint  sorted deltas, zigzag + LEB128                      sparse
bitmap     dense bitset over the message's vertex range           saturated
adaptive   per-message bitmap-vs-varint choice by density         everything
========== ====================================================== =========
"""

from repro.wire.base import (
    WIRE_CODECS,
    WireCodec,
    get_codec,
    register_codec,
    resolve_wire,
)
from repro.wire.codecs import (
    AdaptiveCodec,
    BitmapCodec,
    DeltaVarintCodec,
    RawCodec,
    varint_nbytes,
    zigzag,
)

__all__ = [
    "WIRE_CODECS",
    "WireCodec",
    "get_codec",
    "register_codec",
    "resolve_wire",
    "RawCodec",
    "DeltaVarintCodec",
    "BitmapCodec",
    "AdaptiveCodec",
    "varint_nbytes",
    "zigzag",
]
