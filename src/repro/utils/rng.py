"""Deterministic random-number streams.

Every stochastic component of the library draws from a
:class:`numpy.random.Generator` derived from a user-supplied seed through
``SeedSequence.spawn``.  This gives two properties the experiments rely on:

* **Reproducibility** — the same ``(seed, n, k, P)`` always yields the same
  graph, the same BFS, and the same message counts.
* **Rank independence** — each virtual rank gets a statistically
  independent stream, so per-rank generation (e.g. the distributed graph
  builder) does not depend on the number of ranks stepping order.
"""

from __future__ import annotations

import numpy as np


class RngFactory:
    """Factory producing named, independent random generators from one seed.

    Named streams are derived by hashing the name into the seed sequence
    entropy, so ``factory.named("edges")`` is stable across processes and
    library versions and independent of call order.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def root(self) -> np.random.Generator:
        """Generator seeded directly from the root seed."""
        return np.random.default_rng(np.random.SeedSequence(self._seed))

    def named(self, name: str) -> np.random.Generator:
        """Independent generator for the stream called ``name``."""
        digest = _stable_hash(name)
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(digest,))
        return np.random.default_rng(seq)

    def for_rank(self, name: str, rank: int) -> np.random.Generator:
        """Independent generator for stream ``name`` on virtual rank ``rank``."""
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        digest = _stable_hash(name)
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(digest, rank))
        return np.random.default_rng(seq)


def spawn_rank_rngs(seed: int, nranks: int, name: str = "rank") -> list[np.random.Generator]:
    """Spawn one independent generator per rank from a single ``seed``."""
    factory = RngFactory(seed)
    return [factory.for_rank(name, r) for r in range(nranks)]


def _stable_hash(name: str) -> int:
    """Stable 63-bit FNV-1a hash of ``name`` (independent of PYTHONHASHSEED)."""
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h >> 1
