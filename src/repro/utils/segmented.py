"""Segmented (per-virtual-rank) NumPy kernels for the batched BFS hot paths.

The simulator advances P virtual ranks in one process, and the scalar
engines paid one Python iteration — and one small ``np.unique`` — per
rank per level.  These helpers collapse such loops into single fused
array operations over *concatenated* per-rank data: values from every
segment are packed into one array, each element tagged with its segment
id, and a segment-offset key (``seg * domain + value``) makes one global
``np.unique`` equivalent to a per-segment unique.  Each segment's result
is byte-identical to ``np.unique`` over that segment alone (same sorted
order, same int64 dtype), which is what lets the batched engines keep
simulated clocks and statistics bit-for-bit equal to the scalar loops.
"""

from __future__ import annotations

import numpy as np

from repro.types import VERTEX_DTYPE


def segmented_unique(
    values: np.ndarray, segs: np.ndarray, nseg: int, domain: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Per-segment sorted unique of ``values`` tagged with segment ids.

    ``values`` must be non-negative and < ``domain``; ``segs`` is parallel
    to ``values`` with entries in ``[0, nseg)``.  Returns ``(flat, bounds,
    dups, seg_of)``: segment ``s``'s unique values are
    ``flat[bounds[s]:bounds[s+1]]`` (equal to ``np.unique`` of that
    segment's values), ``dups`` is the total number of entries the unique
    eliminated across all segments — the union-fold's duplicate tally —
    and ``seg_of`` tags each element of ``flat`` with its segment id (a
    byproduct of the offset-key split, free for callers that need it).
    """
    if values.size == 0:
        return (
            np.empty(0, dtype=VERTEX_DTYPE),
            np.zeros(nseg + 1, dtype=np.int64),
            0,
            np.empty(0, dtype=np.int64),
        )
    keys = segs * domain + values
    # Sorted-unique via sort + mask: identical output to np.unique, and
    # much faster here because fold payloads are concatenations of already
    # sorted runs (timsort exploits them; the hash path cannot).
    keys.sort(kind="stable")
    mask = np.empty(keys.size, dtype=bool)
    mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=mask[1:])
    uk = keys[mask]
    seg_of, flat = np.divmod(uk, domain)
    bounds = np.empty(nseg + 1, dtype=np.int64)
    bounds[0] = 0
    np.cumsum(np.bincount(seg_of, minlength=nseg), out=bounds[1:])
    return flat, bounds, values.size - uk.size, seg_of


def gather_segments(
    flat: np.ndarray, bounds: np.ndarray, select: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather one source segment per output segment from a CSR-packed array.

    ``select[s]`` names the segment of ``(flat, bounds)`` whose values
    become output segment ``s``.  Returns ``(values, segs, sizes)`` where
    ``segs`` tags each gathered value with its output segment id.
    """
    starts = bounds[select]
    sizes = bounds[select + 1] - starts
    total = int(sizes.sum())
    if total == 0:
        return (
            np.empty(0, dtype=flat.dtype),
            np.empty(0, dtype=np.int64),
            sizes,
        )
    out_offsets = np.concatenate(([0], np.cumsum(sizes)))
    idx = np.arange(total, dtype=np.int64)
    idx += np.repeat(starts - out_offsets[:-1], sizes)
    segs = np.repeat(np.arange(select.size, dtype=np.int64), sizes)
    return flat[idx], segs, sizes


def pack_segments(
    parts: list[tuple[int, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``(segment id, array)`` parts into parallel arrays.

    Empty arrays are skipped; returns ``(values, segs)`` ready for
    :func:`segmented_unique`.
    """
    arrs = [a for _s, a in parts if a.size]
    if not arrs:
        return np.empty(0, dtype=VERTEX_DTYPE), np.empty(0, dtype=np.int64)
    seg_ids = np.array([s for s, a in parts if a.size], dtype=np.int64)
    sizes = np.array([a.size for a in arrs], dtype=np.int64)
    return np.concatenate(arrs), np.repeat(seg_ids, sizes)
