"""Small argument-validation helpers with uniform error messages."""

from __future__ import annotations

from numbers import Real


def check_positive(name: str, value: Real) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(name: str, value: Real, lo: Real, hi: Real) -> None:
    """Raise ``ValueError`` unless ``lo <= value < hi``."""
    if not (lo <= value < hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}), got {value!r}")


def check_probability(name: str, value: Real) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
