"""Library logging.

The library logs through the standard ``logging`` module under the
``repro`` namespace and never configures handlers on import (the usual
library etiquette).  :func:`configure_logging` is a convenience for
scripts and the CLI; level DEBUG surfaces per-level BFS progress and the
SPMD hub's protocol steps.
"""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro`` namespace (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}")


def configure_logging(level: int | str = logging.INFO) -> None:
    """Attach a simple stderr handler to the ``repro`` root logger.

    Idempotent: repeated calls only adjust the level.
    """
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
