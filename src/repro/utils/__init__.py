"""Shared utilities: RNG streams, timers, validation, sorted-array ops, logging."""

from repro.utils.rng import RngFactory, spawn_rank_rngs
from repro.utils.timer import Timer, PhaseTimer
from repro.utils.validation import check_positive, check_in_range, check_probability
from repro.utils.logging import configure_logging, get_logger
from repro.utils.arrays import in_sorted, intersect_sorted

__all__ = [
    "RngFactory",
    "spawn_rank_rngs",
    "Timer",
    "PhaseTimer",
    "check_positive",
    "check_in_range",
    "check_probability",
    "configure_logging",
    "get_logger",
    "in_sorted",
    "intersect_sorted",
]
