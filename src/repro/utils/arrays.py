"""Sorted-array set operations (vectorised replacements for hash probes)."""

from __future__ import annotations

import numpy as np

from repro.types import as_vertex_array


def in_sorted(values: np.ndarray, sorted_array: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``values`` occur in ``sorted_array``.

    ``sorted_array`` must be sorted ascending (duplicates allowed).  This is
    the vectorised membership test used wherever the paper would probe a
    hash table.
    """
    values = as_vertex_array(values)
    sorted_array = as_vertex_array(sorted_array)
    if sorted_array.size == 0 or values.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.searchsorted(sorted_array, values)
    pos = np.minimum(pos, sorted_array.size - 1)
    return sorted_array[pos] == values


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted duplicate-free arrays."""
    a = as_vertex_array(a)
    return a[in_sorted(a, b)]
