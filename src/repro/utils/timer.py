"""Wall-clock timers for profiling the host-side simulation.

These measure *real* elapsed time of the simulator itself (the optimisation
workflow from the HPC guides: measure before optimising).  They are distinct
from the *simulated* clocks in :mod:`repro.runtime.clock`, which model the
virtual machine's time.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator


class Timer:
    """A simple cumulative wall-clock timer usable as a context manager."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self.calls: int = 0
        self._start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self.calls += 1
        self._start = None
        return delta

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer(elapsed={self.elapsed:.6f}s, calls={self.calls})"


class PhaseTimer:
    """Named cumulative timers, e.g. ``expand`` / ``local`` / ``fold`` phases."""

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = defaultdict(Timer)

    @contextmanager
    def phase(self, name: str) -> Iterator[Timer]:
        timer = self._timers[name]
        timer.start()
        try:
            yield timer
        finally:
            timer.stop()

    def elapsed(self, name: str) -> float:
        """Cumulative seconds spent in phase ``name`` (0.0 if never entered)."""
        return self._timers[name].elapsed if name in self._timers else 0.0

    def as_dict(self) -> dict[str, float]:
        """Snapshot of cumulative seconds per phase."""
        return {name: t.elapsed for name, t in self._timers.items()}
