"""Deterministic digests of run outputs — the cross-version CI contract.

The simulator guarantees bit-identical simulated clocks, level arrays, and
message traces for a given (graph, system, source) across platforms and
Python versions.  These helpers reduce a run to short hex digests so CI
can run the reference workload under Python 3.10 and 3.12 and fail if any
of them differ.

Floats are hashed through ``float.hex()`` (exact, locale-free); NumPy
arrays through their C-contiguous little-endian bytes.  Host wall-clock
values are deliberately excluded everywhere — only simulated quantities
take part.
"""

from __future__ import annotations

import hashlib
import sys
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bfs.result import BfsResult
    from repro.runtime.stats import CommStats
    from repro.runtime.trace import MessageEvent


def _hasher() -> "hashlib._Hash":
    return hashlib.sha256()


def _feed_array(h, arr: np.ndarray) -> None:
    arr = np.ascontiguousarray(arr)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    h.update(arr.dtype.str.encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())


def _feed_float(h, value: float) -> None:
    h.update(float(value).hex().encode())


def levels_digest(levels: np.ndarray) -> str:
    """Digest of an assembled level array."""
    h = _hasher()
    _feed_array(h, np.asarray(levels))
    return h.hexdigest()


def stats_digest(stats: "CommStats") -> str:
    """Digest of the run's counters and per-level simulated-time series."""
    h = _hasher()
    for total in (
        stats.total_messages, stats.total_bytes, stats.total_encoded_bytes,
        stats.total_processed, stats.total_drops, stats.total_retries,
        stats.total_rollbacks, stats.total_edges_scanned,
    ):
        h.update(str(int(total)).encode())
    for s in stats.levels:
        h.update(
            f"{s.level},{s.expand_received},{s.fold_received},{s.processed},"
            f"{s.duplicates_eliminated},{s.messages},{s.raw_bytes},"
            f"{s.encoded_bytes},{s.frontier_size},{s.drops},{s.retries},"
            f"{s.direction},{s.edges_scanned}".encode()
        )
        _feed_float(h, s.comm_seconds)
        _feed_float(h, s.compute_seconds)
        _feed_float(h, s.fault_seconds)
    if getattr(stats, "total_sieved", 0):
        # sieve-free runs keep their historical digests: the sieve block
        # only takes part when the sieve actually dropped candidates
        h.update(str(int(stats.total_sieved)).encode())
        for s in stats.levels:
            h.update(str(int(getattr(s, "sieved", 0))).encode())
    return h.hexdigest()


def trace_digest(events: Iterable["MessageEvent"]) -> str:
    """Digest of a message trace (simulated timestamps, no wall clock)."""
    h = _hasher()
    for e in events:
        _feed_float(h, e.time)
        h.update(
            f"{e.src},{e.dst},{e.num_vertices},{e.raw_bytes},"
            f"{e.encoded_bytes},{e.phase}".encode()
        )
    return h.hexdigest()


def fault_digest(report) -> str:
    """Digest of a :class:`~repro.faults.FaultReport`'s integer tallies.

    ``overhead_seconds``/``rollback_seconds`` are derived clock values
    already covered by the clock digest, so only the discrete counters
    take part.
    """
    h = _hasher()
    for value in (
        report.injected, report.retries, report.recovered, report.unrecovered,
        report.rollbacks, report.degraded_links, report.straggler_ranks,
        report.crashes, report.spare_failovers, report.shrink_failovers,
        report.replayed_levels, report.checkpoint_bytes,
    ):
        h.update(str(int(value)).encode())
    h.update(str(report.link_down).encode())
    return h.hexdigest()


def result_digests(result: "BfsResult") -> dict[str, str]:
    """All component digests of one run, plus their combination.

    Keys: ``levels``, ``stats``, ``trace`` (only when the run captured
    message events), ``clock`` (elapsed/comm/compute/fault seconds),
    ``faults`` (only when a fault schedule was attached — fault-free
    digests are unchanged), and ``combined`` (a digest over the other
    digests, in key order).
    """
    digests: dict[str, str] = {
        "levels": levels_digest(result.levels),
        "stats": stats_digest(result.stats),
    }
    h = _hasher()
    for value in (result.elapsed, result.comm_time, result.compute_time):
        _feed_float(h, value)
    digests["clock"] = h.hexdigest()
    obs = getattr(result, "observability", None)
    if obs is not None and obs.messages:
        digests["trace"] = trace_digest(obs.messages)
    faults = getattr(result, "faults", None)
    if faults is not None:
        # fault-free runs keep their historical digests: the "faults" key
        # only exists when a schedule was attached
        digests["faults"] = fault_digest(faults)
    combined = _hasher()
    for key in sorted(digests):
        combined.update(f"{key}:{digests[key]}".encode())
    digests["combined"] = combined.hexdigest()
    return digests
