"""Hierarchical span timelines over the simulated runtime.

A *span* is one timed region of the simulation — the whole run, one BFS
level, one phase inside a level (expand / fold / union / compute /
fault-recovery), one collective round, or one communicator exchange —
stamped with both the **simulated clock** (the makespan of the virtual
machine, deterministic) and the **host wall clock** (where the simulator
itself spends real time).  Spans nest: each records the id of the span
that was open when it began, so the list reconstructs the full
run → level → phase → round → exchange tree.

Recording is controlled by an :class:`ObserveSpec` (the ``observe`` axis
of :class:`repro.types.SystemSpec`).  When disabled, every instrumentation
site talks to the shared :data:`NULL_RECORDER`, whose methods are no-ops —
the cost of observability-off is a handful of attribute lookups per BFS
level (see ``benchmarks/bench_observability_overhead.py`` for the proof).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ObserveSpec:
    """What the observability layer captures for one run.

    ``spans`` turns on the hierarchical span timeline; ``messages`` turns
    on per-message event capture (a :class:`repro.runtime.trace.TraceRecorder`
    installed on the communicator).  Presets: ``"off"`` (nothing, the
    default), ``"spans"``, ``"messages"``, ``"full"`` (both).
    """

    #: record hierarchical spans (run / level / phase / round / exchange)
    spans: bool = False
    #: record one event per wire message (TraceRecorder on the communicator)
    messages: bool = False

    @property
    def active(self) -> bool:
        """Whether anything is being captured."""
        return self.spans or self.messages

    @classmethod
    def parse(cls, value: "ObserveSpec | str | None") -> "ObserveSpec":
        """Coerce a preset name / spec / None into an :class:`ObserveSpec`."""
        if value is None:
            return _OFF
        if isinstance(value, ObserveSpec):
            return value
        if isinstance(value, str):
            try:
                return OBSERVE_PRESETS[value]
            except KeyError:
                raise ConfigurationError(
                    f"unknown observe preset {value!r}; use one of "
                    f"{sorted(OBSERVE_PRESETS)} or an ObserveSpec"
                ) from None
        # duck-typed: anything carrying the two booleans (keeps types.py
        # import-cycle-free, mirroring the wire-codec validation)
        spans = getattr(value, "spans", None)
        messages = getattr(value, "messages", None)
        if isinstance(spans, bool) and isinstance(messages, bool):
            return cls(spans=spans, messages=messages)
        raise ConfigurationError(
            f"observe must be a preset name, an ObserveSpec, or None, "
            f"got {type(value).__name__}"
        )


_OFF = ObserveSpec()

#: Named observability configurations accepted wherever ``observe=`` is.
OBSERVE_PRESETS: dict[str, ObserveSpec] = {
    "off": _OFF,
    "spans": ObserveSpec(spans=True),
    "messages": ObserveSpec(messages=True),
    "full": ObserveSpec(spans=True, messages=True),
}


@dataclass(slots=True)
class Span:
    """One timed region: simulated begin/end plus host wall begin/end."""

    #: dense id (index into the recorder's span list)
    sid: int
    #: sid of the enclosing span, -1 for a root
    parent: int
    name: str
    #: span kind: ``run`` / ``level`` / ``phase`` / ``round`` / ``exchange``
    cat: str
    #: simulated seconds (slowest rank's clock) when the span opened
    sim_begin: float
    #: host ``time.perf_counter()`` when the span opened
    wall_begin: float
    sim_end: float = 0.0
    wall_end: float = 0.0
    #: small free-form metadata (level number, message counts, ...)
    args: dict = field(default_factory=dict)

    @property
    def sim_duration(self) -> float:
        """Simulated seconds spanned (end - begin of the makespan clock)."""
        return self.sim_end - self.sim_begin

    @property
    def wall_duration(self) -> float:
        """Host seconds the simulator spent inside this span."""
        return self.wall_end - self.wall_begin


class _SpanHandle:
    """Context manager closing one span on exit (what ``span()`` returns)."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "SpanRecorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._recorder.end(self._span)


class _NullHandle:
    """Shared do-nothing context manager for the disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_HANDLE = _NullHandle()


class SpanRecorder:
    """Collects a tree of :class:`Span` objects for one run.

    Simulated timestamps come from the bound
    :class:`~repro.runtime.clock.SimClock` (the makespan, ``clock.elapsed``);
    host timestamps from :func:`time.perf_counter`.  Spans nest through an
    explicit stack, so ``begin``/``end`` pairs (or the :meth:`span` context
    manager) reconstruct the hierarchy without any thread-local state.
    """

    __slots__ = ("clock", "spans", "_stack")

    #: instrumentation sites may skip arg construction when this is False
    enabled = True

    def __init__(self, clock=None) -> None:
        self.clock = clock
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock that stamps ``sim_begin``/``sim_end``."""
        self.clock = clock

    def _now(self) -> float:
        clock = self.clock
        return float(clock.elapsed) if clock is not None else 0.0

    def begin(self, name: str, cat: str = "phase", **args) -> Span:
        """Open a span as a child of the innermost open span."""
        span = Span(
            sid=len(self.spans),
            parent=self._stack[-1].sid if self._stack else -1,
            name=name,
            cat=cat,
            sim_begin=self._now(),
            wall_begin=time.perf_counter(),
            args=args,
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **args) -> Span:
        """Close ``span`` (and any forgotten children still open inside it)."""
        while self._stack:
            if self._stack.pop() is span:
                break
        span.sim_end = self._now()
        span.wall_end = time.perf_counter()
        if args:
            span.args.update(args)
        return span

    def span(self, name: str, cat: str = "phase", **args) -> _SpanHandle:
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        return _SpanHandle(self, self.begin(name, cat, **args))

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def by_cat(self, cat: str) -> list[Span]:
        """All closed spans of one kind, in begin order."""
        return [s for s in self.spans if s.cat == cat]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``."""
        return [s for s in self.spans if s.parent == span.sid]

    def phase_totals(self, kind: str = "sim") -> dict[str, float]:
        """Total seconds per phase-span name (``kind``: ``sim`` or ``wall``).

        This is the per-phase breakdown the paper's Section 3 analysis
        wants: simulated seconds attributed to expand vs fold vs compute
        (vs fault-recovery), summed over every level.
        """
        if kind not in ("sim", "wall"):
            raise ValueError(f"kind must be 'sim' or 'wall', got {kind!r}")
        totals: dict[str, float] = {}
        for span in self.by_cat("phase"):
            dur = span.sim_duration if kind == "sim" else span.wall_duration
            totals[span.name] = totals.get(span.name, 0.0) + dur
        return totals


class NullRecorder:
    """Do-nothing recorder: the observability-off fast path.

    Shares the :class:`SpanRecorder` interface; every method is a no-op
    and :meth:`span` hands back one preallocated null context manager, so
    an instrumentation site costs a method call and nothing else.
    """

    __slots__ = ()

    enabled = False
    #: immutable empty span list (so analysis code works unconditionally)
    spans: tuple = ()

    def bind_clock(self, clock) -> None:
        return None

    def begin(self, name: str, cat: str = "phase", **args) -> None:
        return None

    def end(self, span, **args) -> None:
        return None

    def span(self, name: str, cat: str = "phase", **args) -> _NullHandle:
        return _NULL_HANDLE

    def by_cat(self, cat: str) -> list:
        return []

    def phase_totals(self, kind: str = "sim") -> dict:
        return {}


#: The shared disabled recorder every un-observed communicator uses.
NULL_RECORDER = NullRecorder()
