"""The per-run observability bundle carried on result objects.

When a run is observed (``observe="spans"``/``"messages"``/``"full"``),
the drivers attach an :class:`ObservabilityData` to the result: the span
timeline, the captured message events, and one-call exporters for the
Perfetto trace and the metrics registry.  :func:`collect_observability`
is what the drivers call; :func:`export_artifacts` is the shared CLI /
harness path that writes whichever artifact files were requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.observability.metrics import MetricsRegistry
from repro.observability.perfetto import to_chrome_trace, write_chrome_trace
from repro.observability.spans import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.comm import Communicator
    from repro.runtime.trace import MessageEvent


@dataclass(slots=True)
class ObservabilityData:
    """Everything the observability layer captured during one run."""

    #: hierarchical span timeline (empty when spans were off)
    spans: list[Span] = field(default_factory=list)
    #: per-wire-message events (empty when message capture was off)
    messages: "list[MessageEvent]" = field(default_factory=list)
    #: number of virtual ranks (sizes the per-rank Perfetto tracks)
    nranks: int = 0

    def to_chrome_trace(self) -> dict:
        """The combined Perfetto / Chrome trace-event document."""
        return to_chrome_trace(self.spans, self.messages, nranks=self.nranks)

    def write_trace(self, path: str | Path) -> dict:
        """Write the Perfetto JSON to ``path``; returns the document."""
        return write_chrome_trace(path, self.spans, self.messages, nranks=self.nranks)

    def phase_totals(self, kind: str = "sim") -> dict[str, float]:
        """Seconds per phase name over all levels (``sim`` or ``wall``)."""
        if kind not in ("sim", "wall"):
            raise ValueError(f"kind must be 'sim' or 'wall', got {kind!r}")
        totals: dict[str, float] = {}
        for span in self.spans:
            if span.cat == "phase":
                dur = span.sim_duration if kind == "sim" else span.wall_duration
                totals[span.name] = totals.get(span.name, 0.0) + dur
        return totals


def collect_observability(comm: "Communicator") -> ObservabilityData | None:
    """Snapshot a communicator's recorders; None when observability is off."""
    if not comm.observe.active:
        return None
    spans = list(comm.obs.spans)
    messages = list(comm.obs_trace.events) if comm.obs_trace is not None else []
    return ObservabilityData(spans=spans, messages=messages, nranks=comm.nranks)


def export_artifacts(
    result,
    *,
    trace_out: str | Path | None = None,
    metrics_out: str | Path | None = None,
) -> list[Path]:
    """Write the requested artifact files for one result; returns the paths.

    ``trace_out`` gets the Perfetto JSON (requires the run to have been
    observed); ``metrics_out`` gets the unified metrics registry, as JSON
    when the suffix is ``.json`` and CSV otherwise.
    """
    written: list[Path] = []
    if trace_out is not None:
        obs = getattr(result, "observability", None)
        if obs is None:
            raise ValueError(
                "run has no observability data; pass observe='spans'/'full' "
                "(or the --observe CLI flag) to capture a trace"
            )
        obs.write_trace(trace_out)
        written.append(Path(trace_out))
    if metrics_out is not None:
        metrics_out = Path(metrics_out)
        registry = MetricsRegistry.from_result(result)
        if metrics_out.suffix.lower() == ".json":
            registry.to_json(metrics_out)
        else:
            registry.to_csv(metrics_out)
        written.append(metrics_out)
    return written
