"""repro.observability — spans, Perfetto export, metrics, digests.

The unified observability layer over the simulated runtime (see
``docs/OBSERVABILITY.md``):

* :mod:`~repro.observability.spans` — hierarchical span timelines
  (run → level → phase → collective round → exchange), stamped with the
  simulated clock and the host wall clock, recorded near-zero-cost via a
  no-op recorder when disabled;
* :mod:`~repro.observability.perfetto` — Chrome trace-event / Perfetto
  JSON export rendering spans and per-message events on one timeline;
* :mod:`~repro.observability.metrics` — a registry flattening
  CommStats / LevelStats / fault / codec counters into named samples with
  labels, exported as CSV or JSON;
* :mod:`~repro.observability.digest` — deterministic digests of run
  outputs (the cross-version determinism contract CI enforces);
* :mod:`~repro.observability.artifacts` — the per-run bundle attached to
  ``BfsResult.observability`` plus the shared artifact writer.
"""

from repro.observability.artifacts import (
    ObservabilityData,
    collect_observability,
    export_artifacts,
)
from repro.observability.digest import (
    levels_digest,
    result_digests,
    stats_digest,
    trace_digest,
)
from repro.observability.metrics import MetricSample, MetricsRegistry
from repro.observability.perfetto import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observability.spans import (
    NULL_RECORDER,
    OBSERVE_PRESETS,
    NullRecorder,
    ObserveSpec,
    Span,
    SpanRecorder,
)

__all__ = [
    "ObserveSpec",
    "OBSERVE_PRESETS",
    "Span",
    "SpanRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MetricSample",
    "MetricsRegistry",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "ObservabilityData",
    "collect_observability",
    "export_artifacts",
    "levels_digest",
    "stats_digest",
    "trace_digest",
    "result_digests",
]
