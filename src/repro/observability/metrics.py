"""Unified metrics registry over the runtime's counters.

:class:`CommStats`/:class:`LevelStats`, the fault report, and the wire
codec counters each grew up as their own ad-hoc objects.  The registry
flattens all of them into one schema — named samples with string labels,
Prometheus-style — so external tooling gets a single CSV/JSON surface
instead of four bespoke ones:

========================  =============================  =================
name                      labels                         source
========================  =============================  =================
bfs_messages_total        —                              CommStats
bfs_vertices_processed    —                              CommStats
bfs_bytes_total           kind=raw|encoded               CommStats / codec
bfs_compression_ratio     —                              codec counters
bfs_drops_total           —                              fault layer
bfs_retries_total         —                              fault layer
bfs_rollbacks_total       —                              fault layer
bfs_seconds_total         bucket=total|comm|compute|...  SimClock
bfs_levels_total          —                              CommStats
bfs_edges_scanned_total   —                              CommStats
bfs_direction_levels_total  mode=top-down|bottom-up      LevelStats
bfs_level_delivered       level, phase=expand|fold       LevelStats
bfs_level_bytes           level, kind=raw|encoded        LevelStats
bfs_level_seconds         level, bucket=comm|compute|..  LevelStats
bfs_level_frontier        level                          LevelStats
bfs_level_duplicates      level                          LevelStats
bfs_level_messages        level                          LevelStats
========================  =============================  =================

The CSV and JSON exports carry identical content (one row/object per
sample; labels serialised as sorted ``k=v`` pairs in CSV), and
:meth:`MetricsRegistry.from_rows` parses either back, so round-trips are
loss-free — a property the test suite asserts.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.stats import CommStats


@dataclass(frozen=True, slots=True)
class MetricSample:
    """One named measurement with string labels."""

    name: str
    value: float
    labels: tuple[tuple[str, str], ...] = ()

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)

    def label_string(self) -> str:
        """Sorted ``k=v;k2=v2`` form (the CSV cell encoding)."""
        return ";".join(f"{k}={v}" for k, v in sorted(self.labels))


def _labels(**kwargs) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in kwargs.items()))


class MetricsRegistry:
    """An append-only collection of :class:`MetricSample` values."""

    def __init__(self) -> None:
        self.samples: list[MetricSample] = []

    def record(self, name: str, value: float, **labels) -> MetricSample:
        """Append one sample; labels are coerced to sorted string pairs."""
        sample = MetricSample(str(name), float(value), _labels(**labels))
        self.samples.append(sample)
        return sample

    def value(self, name: str, **labels) -> float:
        """Sum of every sample matching ``name`` and the given labels."""
        want = dict(_labels(**labels))
        return sum(
            s.value
            for s in self.samples
            if s.name == name and all(s.labels_dict.get(k) == v for k, v in want.items())
        )

    def names(self) -> list[str]:
        """Distinct sample names, sorted."""
        return sorted({s.name for s in self.samples})

    # ------------------------------------------------------------------ #
    # construction from the runtime's counters
    # ------------------------------------------------------------------ #
    @classmethod
    def from_stats(
        cls,
        stats: "CommStats",
        *,
        clock=None,
        faults=None,
    ) -> "MetricsRegistry":
        """Flatten a run's counters into the unified schema.

        ``clock`` (a :class:`~repro.runtime.clock.SimClock`) adds the
        simulated-seconds buckets; ``faults`` (a
        :class:`~repro.faults.FaultReport`) adds the fault layer's view.
        """
        reg = cls()
        reg.record("bfs_messages_total", stats.total_messages)
        reg.record("bfs_vertices_processed", stats.total_processed)
        reg.record("bfs_bytes_total", stats.total_bytes, kind="raw")
        reg.record("bfs_bytes_total", stats.total_encoded_bytes, kind="encoded")
        reg.record("bfs_compression_ratio", stats.compression_ratio)
        reg.record("bfs_drops_total", stats.total_drops)
        reg.record("bfs_retries_total", stats.total_retries)
        reg.record("bfs_rollbacks_total", stats.total_rollbacks)
        reg.record("bfs_levels_total", len(stats.levels))
        reg.record("bfs_edges_scanned_total", stats.total_edges_scanned)
        for mode, count in sorted(stats.direction_counts().items()):
            reg.record("bfs_direction_levels_total", count, mode=mode)
        if clock is not None:
            reg.record("bfs_seconds_total", clock.elapsed, bucket="total")
            reg.record("bfs_seconds_total", clock.max_comm_time, bucket="comm")
            reg.record("bfs_seconds_total", clock.max_compute_time, bucket="compute")
            reg.record("bfs_seconds_total", clock.max_fault_time, bucket="fault")
        for s in stats.levels:
            lvl = s.level
            reg.record("bfs_level_delivered", s.expand_received, level=lvl, phase="expand")
            reg.record("bfs_level_delivered", s.fold_received, level=lvl, phase="fold")
            reg.record("bfs_level_bytes", s.raw_bytes, level=lvl, kind="raw")
            reg.record("bfs_level_bytes", s.encoded_bytes, level=lvl, kind="encoded")
            reg.record("bfs_level_seconds", s.comm_seconds, level=lvl, bucket="comm")
            reg.record("bfs_level_seconds", s.compute_seconds, level=lvl, bucket="compute")
            reg.record("bfs_level_seconds", s.fault_seconds, level=lvl, bucket="fault")
            reg.record("bfs_level_frontier", s.frontier_size, level=lvl)
            reg.record("bfs_level_duplicates", s.duplicates_eliminated, level=lvl)
            reg.record("bfs_level_messages", s.messages, level=lvl)
        if faults is not None:
            reg.record("bfs_fault_injected_total", faults.injected)
            reg.record("bfs_fault_retries_total", faults.retries)
            reg.record("bfs_fault_recovered_total", faults.recovered)
            reg.record("bfs_fault_unrecovered_total", faults.unrecovered)
            reg.record("bfs_fault_rollbacks_total", faults.rollbacks)
            reg.record("bfs_fault_seconds_total", faults.added_seconds)
            reg.record("bfs_fault_crashes_total", faults.crashes)
            reg.record("bfs_fault_failovers_total", faults.spare_failovers, mode="spare")
            reg.record("bfs_fault_failovers_total", faults.shrink_failovers, mode="shrink")
            reg.record("bfs_fault_replayed_levels_total", faults.replayed_levels)
            reg.record("bfs_fault_checkpoint_bytes_total", faults.checkpoint_bytes)
        return reg

    @classmethod
    def from_result(cls, result) -> "MetricsRegistry":
        """Registry for one :class:`~repro.bfs.result.BfsResult`-like object."""
        reg = cls.from_stats(result.stats, faults=getattr(result, "faults", None))
        reg.record("bfs_seconds_total", result.elapsed, bucket="total")
        reg.record("bfs_seconds_total", result.comm_time, bucket="comm")
        reg.record("bfs_seconds_total", result.compute_time, bucket="compute")
        return reg

    # ------------------------------------------------------------------ #
    # export / import
    # ------------------------------------------------------------------ #
    def rows(self) -> list[dict[str, object]]:
        """One plain dict per sample (the JSON export shape)."""
        return [
            {"name": s.name, "value": s.value, "labels": s.labels_dict}
            for s in self.samples
        ]

    def to_csv(self, path: str | Path) -> None:
        """Write ``name,value,labels`` rows (labels as sorted ``k=v;...``)."""
        path = Path(path)
        with path.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(["name", "value", "labels"])
            for s in self.samples:
                writer.writerow([s.name, repr(s.value), s.label_string()])

    def to_json(self, path: str | Path) -> None:
        """Write the samples as a JSON array of objects."""
        Path(path).write_text(json.dumps(self.rows(), indent=1), encoding="utf-8")

    @classmethod
    def from_rows(cls, rows: list[dict]) -> "MetricsRegistry":
        """Rebuild a registry from parsed JSON rows (inverse of :meth:`rows`)."""
        reg = cls()
        for row in rows:
            reg.record(row["name"], float(row["value"]), **row.get("labels", {}))
        return reg

    @classmethod
    def read_csv(cls, path: str | Path) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_csv` file."""
        reg = cls()
        with Path(path).open(newline="", encoding="utf-8") as fh:
            for row in csv.DictReader(fh):
                labels = {}
                if row["labels"]:
                    for pair in row["labels"].split(";"):
                        key, _, val = pair.partition("=")
                        labels[key] = val
                reg.record(row["name"], float(row["value"]), **labels)
        return reg

    @classmethod
    def read_json(cls, path: str | Path) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_json` file."""
        return cls.from_rows(json.loads(Path(path).read_text(encoding="utf-8")))
