"""Chrome trace-event / Perfetto JSON export of spans and message events.

Produces one JSON object in the Chrome trace-event format (the
``traceEvents`` array documented in the Trace Event Format spec, which
Perfetto and ``chrome://tracing`` both load):

* every :class:`~repro.observability.spans.Span` becomes one complete
  (``"ph": "X"``) slice on the driver track, nested by begin/end times —
  the run → level → phase → round → exchange hierarchy reads directly off
  the timeline;
* every :class:`~repro.runtime.trace.MessageEvent` becomes an instant
  event on its sender's per-rank track plus a flow-event pair
  (``"s"``/``"f"``) arrowing from the source rank's track to the
  destination rank's track — one track per virtual rank, as the paper's
  per-processor timers would show it.

Timestamps are the **simulated** clock in microseconds (the trace renders
the virtual machine's time, not the simulator's); each span's host
wall-clock duration rides along in ``args.wall_us``.

:func:`validate_chrome_trace` checks a document against the schema rules
the viewers actually enforce (required keys per event phase); the test
suite runs it over the reference workload's export.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.spans import Span
    from repro.runtime.trace import MessageEvent

#: process ids of the two track groups in the exported trace
DRIVER_PID = 0
RANKS_PID = 1

_US = 1e6  # seconds -> microseconds (trace-event timestamps are in us)


def _span_events(spans: Iterable["Span"]) -> list[dict]:
    events: list[dict] = []
    for span in spans:
        args = {str(k): v for k, v in span.args.items()}
        args["wall_us"] = round(span.wall_duration * _US, 3)
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.sim_begin * _US,
                "dur": max(span.sim_duration, 0.0) * _US,
                "pid": DRIVER_PID,
                "tid": 0,
                "args": args,
            }
        )
    return events


def _message_events(messages: Iterable["MessageEvent"]) -> list[dict]:
    events: list[dict] = []
    for idx, event in enumerate(messages):
        ts = event.time * _US
        args = {
            "vertices": event.num_vertices,
            "raw_bytes": event.raw_bytes,
            "encoded_bytes": event.encoded_bytes,
            "dst": event.dst,
        }
        events.append(
            {
                "name": f"send {event.phase}",
                "cat": "message",
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": RANKS_PID,
                "tid": event.src,
                "args": args,
            }
        )
        if event.src != event.dst:  # self-sends are local hand-offs, no arrow
            flow = {"name": event.phase, "cat": "message", "id": idx, "ts": ts}
            events.append(
                {**flow, "ph": "s", "pid": RANKS_PID, "tid": event.src}
            )
            events.append(
                {**flow, "ph": "f", "bp": "e", "pid": RANKS_PID, "tid": event.dst}
            )
    return events


def _metadata_events(
    rank_tracks: Iterable[int], have_spans: bool, have_messages: bool
) -> list[dict]:
    events: list[dict] = []
    if have_spans:
        events.append(
            {
                "name": "process_name", "ph": "M", "pid": DRIVER_PID, "tid": 0,
                "args": {"name": "driver (spans)"},
            }
        )
        events.append(
            {
                "name": "thread_name", "ph": "M", "pid": DRIVER_PID, "tid": 0,
                "args": {"name": "timeline"},
            }
        )
    if have_messages:
        events.append(
            {
                "name": "process_name", "ph": "M", "pid": RANKS_PID, "tid": 0,
                "args": {"name": "virtual ranks (messages)"},
            }
        )
        # Only ranks that actually appear in the message stream get a
        # track: on large sparse runs (thousands of virtual ranks, a
        # handful active) naming every rank would swamp the trace with
        # O(P) metadata for tracks that render empty.
        for rank in rank_tracks:
            events.append(
                {
                    "name": "thread_name", "ph": "M", "pid": RANKS_PID, "tid": rank,
                    "args": {"name": f"rank {rank}"},
                }
            )
    return events


def to_chrome_trace(
    spans: Iterable["Span"] = (),
    messages: Iterable["MessageEvent"] = (),
    *,
    nranks: int | None = None,
) -> dict:
    """Build the Chrome trace-event document (a plain JSON-able dict).

    Only ranks that actually sent or received a message get a track name;
    ``nranks``, when given, caps which rank ids are eligible (events from
    out-of-range ranks still export, just without a named track).
    """
    spans = list(spans)
    messages = list(messages)
    touched = {e.src for e in messages} | {e.dst for e in messages}
    if nranks is not None:
        touched = {r for r in touched if r < nranks}
    events = _metadata_events(sorted(touched), bool(spans), bool(messages))
    events += _span_events(spans)
    events += _message_events(messages)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    spans: Iterable["Span"] = (),
    messages: Iterable["MessageEvent"] = (),
    *,
    nranks: int | None = None,
) -> dict:
    """Export to ``path`` (open it at https://ui.perfetto.dev); returns the doc."""
    doc = to_chrome_trace(spans, messages, nranks=nranks)
    Path(path).write_text(json.dumps(doc, indent=0), encoding="utf-8")
    return doc


# ---------------------------------------------------------------------- #
# schema validation
# ---------------------------------------------------------------------- #
#: keys every trace event must carry, per the trace-event format spec
_COMMON_REQUIRED = ("name", "ph", "pid", "tid")
#: extra required keys per event phase (the phases this exporter emits)
_PHASE_REQUIRED: dict[str, tuple[str, ...]] = {
    "X": ("ts", "dur"),
    "i": ("ts", "s"),
    "s": ("ts", "id"),
    "f": ("ts", "id"),
    "M": ("args",),
}


def validate_chrome_trace(doc: dict) -> None:
    """Raise ``ValueError`` if ``doc`` breaks the Chrome trace-event schema.

    Checks the JSON-object container format (a ``traceEvents`` array),
    per-phase required keys, timestamp/duration types and signs, and that
    flow-event ``s``/``f`` pairs match up by id.  Passing this is what the
    CI trace artifacts are gated on.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("trace must be a JSON object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be an array")
    flow_starts: set = set()
    flow_ends: set = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"event {i} is missing its phase ('ph')")
        required = _COMMON_REQUIRED + _PHASE_REQUIRED.get(ph, ("ts",))
        for key in required:
            if key not in event:
                raise ValueError(f"event {i} (ph={ph!r}) is missing {key!r}")
        if "ts" in event:
            ts = event["ts"]
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"event {i} has invalid ts {ts!r}")
        if ph == "X":
            dur = event["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i} has invalid dur {dur!r}")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"event {i} has non-object args")
        if ph == "s":
            flow_starts.add(event["id"])
        elif ph == "f":
            flow_ends.add(event["id"])
    unmatched = flow_starts ^ flow_ends
    if unmatched:
        raise ValueError(f"unmatched flow-event ids: {sorted(unmatched)[:5]}")
