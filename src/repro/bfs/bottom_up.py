"""Bottom-up BFS level kernels for the 1D and 2D layouts.

In a *bottom-up* level (Beamer's direction-optimizing traversal, carried
to distributed memory by arXiv:1104.4518 / arXiv:1705.04590) the roles
flip: instead of frontier vertices pushing their edge lists outward,
every still-unvisited vertex scans its own edge list for a parent in the
current frontier and stops at the first hit.  When the frontier holds
most of the graph — the explosive middle levels of both Poisson and
scale-free graphs — almost every scan exits after a handful of edges, so
the level touches a small fraction of the edges the top-down push would.

Communication pattern (charged through the simulated
:class:`~repro.runtime.comm.Communicator`):

* **1D**: each rank scans its *owned* vertices against the global
  frontier, so the frontier membership bitmap is allgathered around the
  ring first — ``span/8`` bytes per block, the
  :mod:`~repro.bfs.sent_cache`-style bitset over each rank's owned span.
  No fold follows: owners label their own vertices.
* **2D**: rank ``(i, j)`` stores partial *column* edge lists for the
  column chunk of mesh column ``j``, whose rows are vertices owned by
  processor row ``i``.  Three steps: frontier bitmaps travel along
  processor **rows** (so each rank can test its stored rows), unvisited
  bitmaps travel along processor **columns** (so each rank knows which
  stored columns still need a parent), then every found vertex is sent
  to its owner *within the processor column* — a real
  :meth:`~repro.runtime.comm.Communicator.exchange`, so wire codecs,
  chunking, and contention pricing all apply — where owners de-duplicate
  multi-finder hits and label.

The bitmap broadcasts are charged as raw byte transfers on the routed
network (the MS-BFS mask-word pattern); because they bypass the
droppable-message path, direction policies that can reach bottom-up are
rejected when a fault schedule is attached (see ``LevelSyncEngine.start``).

Determinism: the level sets a bottom-up level labels are *identical* to
top-down's (a vertex is at level ``l+1`` iff it is unvisited and has a
neighbour at level ``l``), so hybrid runs return byte-identical ``levels``
arrays; only the traversed-edge counts and simulated times differ.
"""

from __future__ import annotations

import numpy as np

from repro.types import UNREACHED, VERTEX_DTYPE
from repro.utils.segmented import pack_segments, segmented_unique

__all__ = ["bottom_up_level_1d", "bottom_up_level_2d"]

#: sentinel larger than any in-segment position (np.minimum.reduceat seed)
_NO_HIT = np.iinfo(np.int64).max


def _first_hit_scan(
    starts: np.ndarray,
    lengths: np.ndarray,
    adjacency: np.ndarray,
    frontier_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Early-exit scan of CSR segments against a frontier bitmap.

    Segment ``s`` is ``adjacency[starts[s] : starts[s] + lengths[s]]``.
    Returns ``(found, edges_scanned)`` per segment: whether any entry is
    in the frontier, and how many entries a sequential scan would touch
    before stopping (first hit position + 1, or the whole segment on a
    miss) — the quantity that makes bottom-up cheap.
    """
    nseg = starts.size
    found = np.zeros(nseg, dtype=bool)
    edges = np.zeros(nseg, dtype=np.int64)
    nz = np.flatnonzero(lengths)
    if nz.size == 0:
        return found, edges
    nz_starts = starts[nz]
    nz_lengths = lengths[nz]
    total = int(nz_lengths.sum())
    out_offsets = np.concatenate(([0], np.cumsum(nz_lengths)))
    gather = np.arange(total, dtype=np.int64)
    gather += np.repeat(nz_starts - out_offsets[:-1], nz_lengths)
    hits = frontier_mask[adjacency[gather]]
    pos = np.arange(total, dtype=np.int64) - np.repeat(out_offsets[:-1], nz_lengths)
    score = np.where(hits, pos, _NO_HIT)
    first = np.minimum.reduceat(score, out_offsets[:-1])
    nz_found = first < _NO_HIT
    found[nz] = nz_found
    edges[nz] = np.where(nz_found, first + 1, nz_lengths)
    return found, edges


def _charge_bitmap_round(
    comm, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray
) -> None:
    """Charge one synchronous round of raw bitmap transfers.

    Bitmaps are fixed-size bitsets, not vertex payloads, so they skip the
    wire codec and are priced directly on the routed network — the same
    accounting the MS-BFS mask words use."""
    if src.size == 0:
        comm.barrier()
        return
    send, recv, _ = comm.network.round_times_arrays(src, dst, nbytes)
    comm.clock.advance_many(np.maximum(send, recv), kind="comm")
    total = int(nbytes.sum())
    comm.stats.record_message_bulk(int(src.size), 0, total, total)
    comm.barrier()


def bottom_up_level_1d(engine) -> tuple[np.ndarray, np.ndarray]:
    """One bottom-up level of :class:`~repro.bfs.bfs_1d.Bfs1DEngine`.

    Ring-allgather of the per-rank frontier bitmaps, then every rank
    scans its unvisited owned vertices' (full) edge lists with early
    exit.  Owners label their own finds, so no fold round follows.
    """
    comm = engine.comm
    nranks = comm.nranks
    obs = comm.obs
    levels = engine._levels_flat
    offsets = engine.partition.dist.offsets

    # Frontier-bitmap allgather: P-1 ring rounds aggregated as one
    # concurrent transfer; rank i forwards every block except the one its
    # successor owns.
    with obs.span("bitmap-allgather", cat="phase"):
        span_bytes = (np.diff(offsets) + 7) // 8
        if nranks > 1:
            src = np.arange(nranks, dtype=np.int64)
            dst = (src + 1) % nranks
            nbytes = int(span_bytes.sum()) - span_bytes[dst]
            _charge_bitmap_round(comm, src, dst, nbytes)

    with obs.span("bottom-up-scan", cat="phase"):
        frontier_mask = levels == engine.level
        unvisited = np.flatnonzero(levels == UNREACHED).astype(VERTEX_DTYPE)
        starts = engine._cat_indptr[unvisited]
        lengths = engine._cat_indptr[unvisited + 1] - starts
        found, edges = _first_hit_scan(
            starts, lengths, engine._cat_adjacency, frontier_mask
        )
        # unvisited is sorted and blocks are contiguous, so one
        # searchsorted splits it into per-rank segments
        rank_bounds = np.searchsorted(unvisited, offsets)
        seg_rank = np.repeat(
            np.arange(nranks, dtype=np.int64), np.diff(rank_bounds)
        )
        per_rank_edges = np.zeros(nranks, dtype=np.int64)
        np.add.at(per_rank_edges, seg_rank, edges)
        # each scanned edge is one bitmap probe
        comm.charge_compute_many(
            edges_scanned=per_rank_edges, hash_lookups=per_rank_edges
        )
        fresh = unvisited[found]
        levels[fresh] = engine.level + 1
        fresh_counts = np.bincount(seg_rank[found], minlength=nranks)
        comm.charge_compute_many(updates=fresh_counts)
        fresh_bounds = np.concatenate(([0], np.cumsum(fresh_counts)))
    return fresh, fresh_bounds


def bottom_up_level_2d(engine) -> tuple[np.ndarray, np.ndarray]:
    """One bottom-up level of :class:`~repro.bfs.bfs_2d.Bfs2DEngine`.

    Frontier bitmaps along processor rows, unvisited bitmaps along
    processor columns, early-exit scan of the stored partial column
    lists, then found vertices travel to their owners within the
    processor column for de-duplication and labelling.
    """
    comm = engine.comm
    nranks = comm.nranks
    n = engine.n
    obs = comm.obs
    levels = engine._levels_flat
    part = engine.partition

    engine._owned_bounds()
    span_bytes = (engine._owned_spans + 7) // 8

    def group_pairs(groups):
        src_l: list[np.ndarray] = []
        dst_l: list[np.ndarray] = []
        for group in groups:
            g = np.asarray(group, dtype=np.int64)
            if g.size < 2:
                continue
            src_l.append(np.repeat(g, g.size - 1))
            dst_l.append(np.concatenate([g[g != s] for s in g]))
        if not src_l:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(src_l), np.concatenate(dst_l)

    # Frontier state of the stored rows lives on processor-row peers;
    # unvisited state of the column chunk lives on processor-column peers.
    with obs.span("bitmap-broadcast", cat="phase"):
        row_src, row_dst = group_pairs(engine._row_groups)
        col_src, col_dst = group_pairs(engine._col_groups)
        src = np.concatenate([row_src, col_src])
        dst = np.concatenate([row_dst, col_dst])
        _charge_bitmap_round(comm, src, dst, span_bytes[src])

    with obs.span("bottom-up-scan", cat="phase"):
        frontier_mask = levels == engine.level
        # stored columns, tagged by holder rank (the keyed concatenated
        # column-CSR is sorted by rank then vertex id)
        rank_bounds = np.searchsorted(
            engine._col_keys, np.arange(nranks + 1, dtype=np.int64) * n
        )
        cols_per_rank = np.diff(rank_bounds)
        col_rank = np.repeat(np.arange(nranks, dtype=np.int64), cols_per_rank)
        col_vertex = engine._col_keys - col_rank * n
        scan_idx = np.flatnonzero(levels[col_vertex] == UNREACHED)
        starts = engine._col_starts[scan_idx]
        lengths = engine._col_stops[scan_idx] - starts
        found, edges = _first_hit_scan(
            starts, lengths, engine._rows_cat, frontier_mask
        )
        scan_rank = col_rank[scan_idx]
        per_rank_edges = np.zeros(nranks, dtype=np.int64)
        np.add.at(per_rank_edges, scan_rank, edges)
        # one unvisited-bitmap probe per stored column plus one frontier
        # probe per scanned edge
        comm.charge_compute_many(
            edges_scanned=per_rank_edges,
            hash_lookups=per_rank_edges + cols_per_rank,
        )
        found_v = col_vertex[scan_idx[found]]
        finder = scan_rank[found]
        owner = part.owner_of(found_v) if found_v.size else found_v

    # Found vertices go to their owners (always within the finder's
    # processor column).  Real messages: codec, chunking, contention.
    with obs.span("bottom-up-fold", cat="phase"):
        outbox: dict[int, dict[int, np.ndarray]] = {}
        arrived: list[tuple[int, np.ndarray]] = []
        if found_v.size:
            pair = finder * nranks + owner
            order = np.argsort(pair, kind="stable")
            sv, sf, so = found_v[order], finder[order], owner[order]
            cut = np.flatnonzero(np.diff(pair[order])) + 1
            bounds = np.concatenate(([0], cut, [sv.size]))
            for b, e in zip(bounds[:-1], bounds[1:]):
                f, o = int(sf[b]), int(so[b])
                payload = sv[b:e]
                if f == o:
                    arrived.append((o, payload))
                else:
                    outbox.setdefault(f, {})[o] = payload
        inbox = comm.exchange(outbox, "fold")
        dsts: list[int] = []
        counts: list[int] = []
        for dest, items in inbox.items():
            for _, chunk in items:
                if chunk.size:
                    arrived.append((dest, chunk))
                    dsts.append(dest)
                    counts.append(int(chunk.size))
        if dsts:
            comm.stats.record_delivery_bulk(
                np.array(dsts, dtype=np.int64),
                np.array(counts, dtype=np.int64),
                "fold",
            )
        # Owner-side dedup (several column peers can find the same
        # vertex) and labelling — one segmented unique over every owner's
        # arrivals at once.
        values, vsegs = pack_segments(arrived)
        flat, fresh_bounds, dups, _ = segmented_unique(values, vsegs, nranks, n)
        incoming_counts = np.bincount(vsegs, minlength=nranks)
        fresh_counts = np.diff(fresh_bounds)
        levels[flat] = engine.level + 1
        comm.stats.record_duplicates(int(dups))
        comm.charge_compute_many(
            hash_lookups=incoming_counts, updates=fresh_counts
        )
    return flat, fresh_bounds
