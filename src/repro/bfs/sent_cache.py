"""The sent-neighbours optimisation (Section 2.4.3).

Each rank remembers which neighbour vertices it has already shipped during
a fold; a vertex sent once never needs to be sent again, because the
receiving owner would ignore the duplicate anyway.  Storage is one flag per
*unique vertex appearing in the rank's edge lists* — O(n/P) in expectation
(Section 2.4.1), which the tests verify statistically.
"""

from __future__ import annotations

import numpy as np

from repro.partition.indexing import VertexIndexMap
from repro.types import as_vertex_array


class SentCache:
    """Per-rank already-sent filter over a fixed vertex universe."""

    __slots__ = ("index", "_sent")

    def __init__(self, universe: VertexIndexMap) -> None:
        self.index = universe
        self._sent = np.zeros(len(universe), dtype=bool)

    def __len__(self) -> int:
        return len(self.index)

    @property
    def num_sent(self) -> int:
        """How many distinct vertices have been marked sent so far."""
        return int(self._sent.sum())

    def filter_unsent(self, vertices: np.ndarray) -> np.ndarray:
        """Return the not-yet-sent subset of ``vertices`` and mark it sent.

        ``vertices`` must be duplicate-free and drawn from the universe
        (every fold candidate appears in some local edge list by
        construction).
        """
        vertices = as_vertex_array(vertices)
        if vertices.size == 0:
            return vertices
        local = self.index.to_local(vertices)
        fresh_mask = ~self._sent[local]
        self._sent[local[fresh_mask]] = True
        return vertices[fresh_mask]

    def reset(self) -> None:
        """Forget all sent marks (for reusing a cache across runs)."""
        self._sent[:] = False

    def snapshot(self) -> np.ndarray:
        """Copy of the sent flags (level-boundary checkpointing)."""
        return self._sent.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        """Reinstate flags captured by :meth:`snapshot` (level rollback)."""
        self._sent[:] = snapshot
