"""The sent-neighbours optimisation (Section 2.4.3).

Each rank remembers which neighbour vertices it has already shipped during
a fold; a vertex sent once never needs to be sent again, because the
receiving owner would ignore the duplicate anyway.  Storage is one flag per
*unique vertex appearing in the rank's edge lists* — O(n/P) in expectation
(Section 2.4.1), which the tests verify statistically.

The cache only suppresses duplicates *this* sender has shipped before; a
vertex another rank discovered and delivered in an earlier level still
costs a first send from here.  The communication sieve
(:mod:`repro.bfs.sieve`) closes that gap with a cross-level shadow of
each destination's visited set, extending the same idea beyond
self-sent tracking.
"""

from __future__ import annotations

import numpy as np

from repro.partition.indexing import VertexIndexMap
from repro.types import as_vertex_array


class SentCache:
    """Per-rank already-sent filter over a fixed vertex universe."""

    __slots__ = ("index", "_sent")

    def __init__(self, universe: VertexIndexMap) -> None:
        self.index = universe
        self._sent = np.zeros(len(universe), dtype=bool)

    def __len__(self) -> int:
        return len(self.index)

    @property
    def num_sent(self) -> int:
        """How many distinct vertices have been marked sent so far."""
        return int(self._sent.sum())

    def filter_unsent(self, vertices: np.ndarray) -> np.ndarray:
        """Return the not-yet-sent subset of ``vertices`` and mark it sent.

        ``vertices`` must be duplicate-free and drawn from the universe
        (every fold candidate appears in some local edge list by
        construction).
        """
        vertices = as_vertex_array(vertices)
        if vertices.size == 0:
            return vertices
        local = self.index.to_local(vertices)
        fresh_mask = ~self._sent[local]
        self._sent[local[fresh_mask]] = True
        return vertices[fresh_mask]

    def reset(self) -> None:
        """Forget all sent marks (for reusing a cache across runs)."""
        self._sent[:] = False

    def snapshot(self) -> np.ndarray:
        """Copy of the sent flags (level-boundary checkpointing)."""
        return self._sent.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        """Reinstate flags captured by :meth:`snapshot` (level rollback)."""
        self._sent[:] = snapshot


class PooledSentCache:
    """All P ranks' sent filters in one flat bitset over pooled universes.

    Semantically identical to a list of per-rank :class:`SentCache`
    objects, but the flags live in a single array and the per-level
    filter runs as one segmented kernel over every rank's candidates at
    once — per-level cost scales with the candidates (active ranks),
    never with P.  Universes are immutable, so one pool serves every
    search of an engine's lifetime; :meth:`reset` rewinds it per run.
    """

    __slots__ = ("_universes", "_keys", "bounds", "_sent", "_nranks", "_domain")

    def __init__(self, universes: list[VertexIndexMap], domain: int) -> None:
        self._universes = universes
        self._nranks = len(universes)
        self._domain = int(domain)
        sizes = np.array([len(u) for u in universes], dtype=np.int64)
        #: per-rank slice bounds into the pooled flag array
        self.bounds = np.concatenate(([0], np.cumsum(sizes)))
        self._keys = (
            np.concatenate(
                [r * self._domain + u.ids for r, u in enumerate(universes)]
            )
            if universes
            else np.empty(0, dtype=np.int64)
        )
        self._sent = np.zeros(self._keys.size, dtype=bool)

    def view(self, rank: int) -> SentCache:
        """A :class:`SentCache` aliasing rank ``rank``'s slice of the pool."""
        cache = SentCache.__new__(SentCache)
        cache.index = self._universes[rank]
        cache._sent = self._sent[self.bounds[rank] : self.bounds[rank + 1]]
        return cache

    def filter_unsent_segmented(
        self, flat: np.ndarray, bounds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-rank ``filter_unsent`` over CSR-packed candidates.

        Segment ``r`` of ``(flat, bounds)`` holds rank ``r``'s sorted
        duplicate-free candidates, all drawn from its universe.  Returns
        the not-yet-sent subset in the same CSR form and marks it sent —
        element-for-element what P per-rank :meth:`SentCache.filter_unsent`
        calls produce.
        """
        if flat.size == 0:
            return flat, np.zeros(self._nranks + 1, dtype=np.int64)
        segs = np.repeat(
            np.arange(self._nranks, dtype=np.int64), np.diff(bounds)
        )
        pos = np.searchsorted(self._keys, segs * self._domain + flat)
        fresh_mask = ~self._sent[pos]
        self._sent[pos[fresh_mask]] = True
        out_counts = np.bincount(segs[fresh_mask], minlength=self._nranks)
        return flat[fresh_mask], np.concatenate(([0], np.cumsum(out_counts)))

    def reset(self) -> None:
        """Forget all sent marks (start of a new search)."""
        self._sent[:] = False

    def snapshot(self) -> np.ndarray:
        """Copy of the pooled flags (level-boundary checkpointing)."""
        return self._sent.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        """Reinstate flags captured by :meth:`snapshot` (level rollback)."""
        self._sent[:] = snapshot

    def checkpoint_nbytes(self) -> np.ndarray:
        """Per-rank bitset size of the buddy-replicated cache state."""
        return (np.diff(self.bounds) + 7) // 8
