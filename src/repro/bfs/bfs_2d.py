"""Algorithm 2: distributed breadth-first expansion with 2D partitioning.

Each level has two communication steps:

* **expand** (steps 7-11): frontier owners inform their processor-*column*
  peers, which hold the frontier vertices' partial edge lists;
* **fold** (steps 13-18): discovered neighbours travel across the
  processor-*row* to their owners.

Only ``R`` (resp. ``C``) ranks take part in each collective instead of all
``P`` — the paper's key communication-scalability argument.

All per-rank work of a level runs as batched NumPy kernels over the
pooled per-rank CSR state (frontier pool, per-vertex expand-target CSR,
keyed concatenated column-CSR, pooled sent cache, the fold's CSR driver)
— numerically identical to iterating the P virtual ranks in Python, but
with per-level cost proportional to active ranks plus touched data, not
to P.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottom_up import bottom_up_level_2d
from repro.bfs.level_sync import LevelSyncEngine
from repro.bfs.options import BfsOptions
from repro.bfs.sent_cache import PooledSentCache, SentCache
from repro.bfs.sieve import PooledSieve
from repro.collectives.base import get_expand, get_fold
from repro.errors import ConfigurationError
from repro.partition.two_d import TwoDPartition
from repro.runtime.comm import Communicator
from repro.types import VERTEX_DTYPE
from repro.utils.arrays import in_sorted
from repro.utils.segmented import gather_segments, segmented_unique


class Bfs2DEngine(LevelSyncEngine):
    """Level-synchronous BFS over a :class:`TwoDPartition` (R x C mesh)."""

    def __init__(
        self,
        partition: TwoDPartition,
        comm: Communicator,
        opts: BfsOptions | None = None,
    ) -> None:
        opts = opts or BfsOptions()
        if comm.nranks != partition.nranks:
            raise ConfigurationError(
                f"communicator has {comm.nranks} ranks but partition has {partition.nranks}"
            )
        if comm.grid != partition.grid:
            raise ConfigurationError(
                f"communicator grid {comm.grid} != partition grid {partition.grid}"
            )
        super().__init__(comm, partition.n, opts)
        self.partition = partition
        self.grid = partition.grid
        shape = opts.collective_shape
        self._expand = get_expand(
            opts.expand_collective,
            **({"shape": shape} if opts.expand_collective == "two-phase" else {}),
        )
        self._fold = get_fold(
            opts.fold_collective,
            **({"shape": shape} if opts.fold_collective == "two-phase" else {}),
        )
        self._col_groups = [self.grid.col_members(j) for j in range(self.grid.cols)]
        self._row_groups = [self.grid.row_members(i) for i in range(self.grid.rows)]
        # Pair-keyed expand filters are only needed by the collective
        # fallback paths (faulted runs, MS-BFS) — built lazily, because
        # the eager build is O(C^3) in group size.
        self._expand_filters_cache: dict[tuple[int, int], np.ndarray] | None = None
        self._expand_filter_cat_cache: (
            dict[int, tuple[list[int], np.ndarray, np.ndarray]] | None
        ) = None
        #: per-vertex expand-target CSR (lazy): the column-group peers
        #: holding a non-empty partial edge list for each vertex
        self._etarget_indptr: np.ndarray | None = None
        self._etarget_dst: np.ndarray | None = None
        #: pooled sent-neighbours cache over every rank's row universe
        self._sent_pool = PooledSentCache(
            [partition.local(r).row_map for r in range(partition.nranks)],
            partition.n,
        )
        if opts.use_sieve:
            if not self._fold.supports_csr:
                raise ConfigurationError(
                    "the communication sieve requires a CSR-capable fold "
                    f"collective (union-ring), not {opts.fold_collective!r}"
                )
            # Fold candidates only ever travel along processor-rows, so
            # each rank shadows exactly its row peers' owned blocks.
            spans = np.array(
                [
                    partition.local(r).vertex_hi - partition.local(r).vertex_lo
                    for r in range(partition.nranks)
                ],
                dtype=np.int64,
            )
            self._sieve = PooledSieve(self._row_groups, spans, partition.n)
        # Concatenated column-CSR of every rank, keyed by rank * n + column
        # id (ascending: ranks ascend, ids are sorted per rank) — one
        # searchsorted resolves all ranks' partial-edge-list lookups.
        n = partition.n
        key_parts: list[np.ndarray] = []
        start_parts: list[np.ndarray] = []
        stop_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        rows_base = 0
        for r in range(partition.nranks):
            loc = partition.local(r)
            key_parts.append(r * n + loc.col_map.ids)
            indptr = loc.col_indptr.astype(np.int64)
            start_parts.append(indptr[:-1] + rows_base)
            stop_parts.append(indptr[1:] + rows_base)
            row_parts.append(loc.rows)
            rows_base += loc.rows.shape[0]
        self._col_keys = np.concatenate(key_parts)
        self._col_starts = np.concatenate(start_parts)
        self._col_stops = np.concatenate(stop_parts)
        self._rows_cat = np.concatenate(row_parts)
        #: pre-routed expand pair population (direct fast path only):
        #: every (owner, holder) wire pair any expand round can use, keyed
        #: like the direct step's messages so a searchsorted indexes it
        self._expand_pop_keys: np.ndarray | None = None
        self._expand_population = None
        if (
            self._expand.name == "direct"
            and opts.use_expand_filter
            and comm.faults is None
        ):
            self._prime_expand_population()

    # ------------------------------------------------------------------ #
    # expand-side lookup structures
    # ------------------------------------------------------------------ #
    @property
    def _expand_filters(self) -> dict[tuple[int, int], np.ndarray] | None:
        """Owner-side knowledge of peers' non-empty partial edge lists.

        ``filters[(src, dst)]`` is the sorted array of ``src``-owned
        vertices for which column peer ``dst`` holds a non-empty partial
        edge list.  The paper stores exactly this (Section 2.2): storage is
        proportional to the number of owned vertices, hence scalable.
        """
        if not self.opts.use_expand_filter:
            return None
        if self._expand_filters_cache is None:
            self._expand_filters_cache = self._build_expand_filters()
        return self._expand_filters_cache

    @property
    def _expand_filter_cat(
        self,
    ) -> dict[int, tuple[list[int], np.ndarray, np.ndarray]] | None:
        """Per-source concatenation of the expand filters (lazy)."""
        if not self.opts.use_expand_filter:
            return None
        if self._expand_filter_cat_cache is None:
            self._expand_filter_cat_cache = self._build_expand_filter_cat()
        return self._expand_filter_cat_cache

    def _build_expand_filters(self) -> dict[tuple[int, int], np.ndarray]:
        filters: dict[tuple[int, int], np.ndarray] = {}
        for group in self._col_groups:
            # One searchsorted of each dst's column ids against all the
            # group's owned ranges replaces a probe per (src, dst) pair.
            los = np.array(
                [self.partition.local(src).vertex_lo for src in group],
                dtype=np.int64,
            )
            his = np.array(
                [self.partition.local(src).vertex_hi for src in group],
                dtype=np.int64,
            )
            for dst in group:
                ids = self.partition.local(dst).col_map.ids
                b_lo = np.searchsorted(ids, los)
                b_hi = np.searchsorted(ids, his)
                for k, src in enumerate(group):
                    if src != dst:
                        filters[(src, dst)] = ids[b_lo[k] : b_hi[k]]
        return filters

    def _build_expand_filter_cat(
        self,
    ) -> dict[int, tuple[list[int], np.ndarray, np.ndarray]]:
        """Per-source concatenation of the expand filters.

        One membership test of the concatenated filters against the
        source's frontier replaces one test per (src, dst) pair; the
        per-destination results are slices of the concatenation.
        """
        filters = self._expand_filters
        cat: dict[int, tuple[list[int], np.ndarray, np.ndarray]] = {}
        for group in self._col_groups:
            for src in group:
                dsts = [d for d in group if d != src]
                segs = [filters[(src, d)] for d in dsts]
                sizes = np.array([s.size for s in segs], dtype=np.int64)
                bounds = np.concatenate(([0], np.cumsum(sizes)))
                merged = (
                    np.concatenate(segs) if segs else np.empty(0, dtype=VERTEX_DTYPE)
                )
                cat[src] = (dsts, merged, bounds)
        return cat

    def _expand_targets(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-vertex expand destinations as a CSR over global vertex ids.

        ``_etarget_dst[_etarget_indptr[v]:_etarget_indptr[v+1]]`` lists, in
        ascending rank order, the column-group peers of ``v``'s owner that
        hold a non-empty partial edge list for ``v`` (owner excluded) —
        the transpose of the pair-keyed expand filters, built once from
        the keyed column-CSR.  The direct expand gathers each frontier
        vertex's targets straight from this table, so its per-level cost
        follows the frontier, not the P x C filter pairs.
        """
        if self._etarget_indptr is None:
            n = self.n
            nranks = self.comm.nranks
            R, C = self.grid.rows, self.grid.cols
            rank_bounds = np.searchsorted(
                self._col_keys, np.arange(nranks + 1, dtype=np.int64) * n
            )
            holder = np.repeat(
                np.arange(nranks, dtype=np.int64), np.diff(rank_bounds)
            )
            vertex = self._col_keys - holder * n
            if vertex.size:
                block = self.partition.dist.part_of(vertex)
                owner = (block % R) * C + (block // R)
                keep = holder != owner
                v = vertex[keep]
                d = holder[keep]
                order = np.argsort(v * nranks + d, kind="stable")
                v, d = v[order], d[order]
            else:
                v = vertex
                d = holder
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(v, minlength=n), out=indptr[1:])
            self._etarget_indptr = indptr
            self._etarget_dst = d
        return self._etarget_indptr, self._etarget_dst

    def _prime_expand_population(self) -> None:
        """Route every possible expand wire pair once, at build time.

        A direct-expand message always travels from a vertex's owner to a
        column peer holding a partial edge list for it — exactly the
        rank-level aggregation of the expand-target CSR.  Pre-analysing
        those routes keeps route interning out of the level loop: each
        level indexes the prepared population instead of resolving paths
        for whichever pair subset its frontier activates.
        """
        indptr, target_dst = self._expand_targets()
        if target_dst.size == 0:
            return
        nranks = self.comm.nranks
        R, C = self.grid.rows, self.grid.cols
        v = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(indptr)
        )
        block = self.partition.dist.part_of(v)
        # Same key space as the direct step's messages: owned block (the
        # dense emission order) then destination rank.
        keys = np.unique(block * nranks + target_dst)
        blk = keys // nranks
        src = (blk % R) * C + blk // R
        self._expand_pop_keys = keys
        self._expand_population = self.comm.network.prepare_pairs(
            src, keys % nranks
        )

    # ------------------------------------------------------------------ #
    # layout hooks
    # ------------------------------------------------------------------ #
    def owner_rank(self, vertex: int) -> int:
        return int(self.partition.owner_of(np.array([vertex]))[0])

    def owned_slice(self, rank: int) -> tuple[int, int]:
        loc = self.partition.local(rank)
        return loc.vertex_lo, loc.vertex_hi

    @property
    def _sent_caches(self) -> list[SentCache]:
        """Per-rank views of the pooled sent cache (compat accessor)."""
        return [self._sent_pool.view(r) for r in range(self.comm.nranks)]

    def _reset_layout_state(self) -> None:
        self._sent_pool.reset()
        if self._sieve is not None:
            self._sieve.reset()

    def _snapshot_layout_state(self):
        if self._sieve is not None:
            return self._sent_pool.snapshot(), self._sieve.snapshot()
        return self._sent_pool.snapshot()

    def _restore_layout_state(self, snapshot) -> None:
        if self._sieve is not None:
            sent, shadows = snapshot
            self._sent_pool.restore(sent)
            self._sieve.restore(shadows)
        else:
            self._sent_pool.restore(snapshot)

    def _layout_checkpoint_nbytes(self) -> np.ndarray:
        # the sent-neighbours cache travels in the buddy checkpoint as a
        # bitset over each rank's sent universe (plus the sieve's shadow
        # bitsets when it is enabled)
        nbytes = self._sent_pool.checkpoint_nbytes()
        if self._sieve is not None:
            nbytes = nbytes + self._sieve.checkpoint_nbytes()
        return nbytes

    def _expand_level_bottom_up(self) -> tuple[np.ndarray, np.ndarray]:
        return bottom_up_level_2d(self)

    # ------------------------------------------------------------------ #
    # one level (Algorithm 2, steps 7-21)
    # ------------------------------------------------------------------ #
    def _expand_level(self) -> tuple[np.ndarray, np.ndarray]:
        obs = self.comm.obs
        with obs.span("expand", cat="phase"):
            if (
                self._expand.name == "direct"
                and self.opts.use_expand_filter
                and self.comm.faults is None
            ):
                fbar_flat, fbar_bounds = self._expand_step_direct()
            else:
                fbar_flat, fbar_bounds = self._expand_step()
        with obs.span("compute", cat="phase"):
            send_flat, send_bounds = self._discover_step(fbar_flat, fbar_bounds)
        with obs.span("fold", cat="phase"):
            fresh = self._fold_step(send_flat, send_bounds)
        if self._sieve is not None:
            self._sieve_update(*fresh)
        return fresh

    def _expand_step(self) -> tuple[np.ndarray, np.ndarray]:
        """Steps 7-11 via the collective machinery; returns F-bar as CSR.

        All processor-columns run their collective rounds in lockstep
        (``expand_many``), so their messages contend for the torus in the
        same simulated round — as they would on the real machine.  This
        is the fallback for forwarding collectives and faulted runs; the
        plain direct expand takes :meth:`_expand_step_direct`.
        """
        frontier = self.frontier
        contributions_per_group = [
            [frontier[rank] for rank in group] for group in self._col_groups
        ]
        dest_filters = None
        if self._expand.name == "direct" and self.opts.use_expand_filter:
            filter_cat = self._expand_filter_cat

            def make_filter(group, contributions):
                # All destinations of one source share a single membership
                # test of the concatenated filters against its frontier;
                # each (src, dst) result is the intersection the scalar
                # per-pair test produced.
                cache: dict[int, dict[int, np.ndarray]] = {}

                def dest_filter(g: int, d: int) -> np.ndarray:
                    payload = contributions[g]
                    if payload.size == 0:
                        return payload
                    src = group[g]
                    per_dst = cache.get(src)
                    if per_dst is None:
                        dsts, merged, bounds = filter_cat[src]
                        mask = in_sorted(merged, payload)
                        per_dst = {
                            dst: merged[bounds[k] : bounds[k + 1]][
                                mask[bounds[k] : bounds[k + 1]]
                            ]
                            for k, dst in enumerate(dsts)
                        }
                        cache[src] = per_dst
                    return per_dst[group[d]]

                return dest_filter

            dest_filters = [
                make_filter(group, contributions)
                for group, contributions in zip(self._col_groups, contributions_per_group)
            ]

        received_per_group = self._expand.expand_many(
            self.comm,
            self._col_groups,
            contributions_per_group,
            phase="expand",
            dest_filters=dest_filters,
        )
        nranks = self.comm.nranks
        fbar: list[np.ndarray] = [None] * nranks  # type: ignore[list-item]
        inc_sizes = np.zeros(nranks, dtype=np.int64)
        parts: list[np.ndarray] = []
        part_segs: list[int] = []
        for group, received in zip(self._col_groups, received_per_group):
            for idx, rank in enumerate(group):
                incoming = sum(int(a.size) for a in received[idx])
                inc_sizes[rank] = incoming
                if incoming:
                    parts.append(frontier[rank])
                    part_segs.append(rank)
                    for a in received[idx]:
                        if a.size:
                            parts.append(a)
                            part_segs.append(rank)
                else:
                    fbar[rank] = frontier[rank]
        self.comm.charge_compute_many(hash_lookups=inc_sizes)
        if parts:
            values = np.concatenate(parts)
            segs = np.repeat(
                np.array(part_segs, dtype=np.int64),
                np.array([p.size for p in parts], dtype=np.int64),
            )
            flat, bounds, _, _ = segmented_unique(values, segs, nranks, self.n)
            for rank in range(nranks):
                if fbar[rank] is None:
                    fbar[rank] = flat[bounds[rank] : bounds[rank + 1]]
        sizes = np.array([f.size for f in fbar], dtype=np.int64)
        return (
            np.concatenate(fbar) if fbar else np.empty(0, dtype=VERTEX_DTYPE),
            np.concatenate(([0], np.cumsum(sizes))),
        )

    def _expand_step_direct(self) -> tuple[np.ndarray, np.ndarray]:
        """The filtered single-round expand as one batched exchange.

        Equivalent to ``DirectExpand.expand_many`` with the per-destination
        filters, but built straight from the per-vertex expand-target CSR:
        one gather resolves every frontier vertex's destinations, one
        stable sort produces the messages in the lockstep driver's merged
        outbox order (column groups ascending — which is ascending owned
        block, then destination, then vertex), one array exchange, one
        segmented union for the per-rank merges.  Fault injection decides
        deliveries per chunk, so faulted runs keep the collective path.
        """
        nranks = self.comm.nranks
        R, C = self.grid.rows, self.grid.cols
        fflat = self._frontier_flat
        fbounds = self._frontier_bounds
        fsizes = np.diff(fbounds)
        indptr, target_dst = self._expand_targets()
        starts = indptr[fflat]
        lengths = indptr[fflat + 1] - starts
        total = int(lengths.sum())
        if total:
            out_offsets = np.concatenate(([0], np.cumsum(lengths)))
            gather = np.arange(total, dtype=np.int64)
            gather += np.repeat(starts - out_offsets[:-1], lengths)
            entry_dst = target_dst[gather]
            entry_v = np.repeat(fflat, lengths)
            entry_src = np.repeat(
                np.repeat(np.arange(nranks, dtype=np.int64), fsizes), lengths
            )
            # Dense emission order: column groups ascending, sources
            # ascending within each group — i.e. ascending owned block —
            # then destination, then vertex (stable sort keeps the
            # ascending-vertex payload order within each message).
            src_block = (entry_src % C) * R + entry_src // C
            key = src_block * nranks + entry_dst
            order = np.argsort(key, kind="stable")
            payload = entry_v[order]
            skey = key[order]
            cut = np.flatnonzero(skey[1:] != skey[:-1]) + 1
            msg_bounds = np.concatenate(([0], cut, [total]))
            msg_key = skey[msg_bounds[:-1]]
            msg_dst = msg_key % nranks
            msg_block = msg_key // nranks
            msg_src = (msg_block % R) * C + msg_block // R
            msg_sizes = np.diff(msg_bounds)
            population = self._expand_population
            pop_idx = (
                np.searchsorted(self._expand_pop_keys, msg_key)
                if population is not None
                else None
            )
        else:
            payload = np.empty(0, dtype=VERTEX_DTYPE)
            msg_src = np.empty(0, dtype=np.int64)
            msg_dst = np.empty(0, dtype=np.int64)
            msg_sizes = np.empty(0, dtype=np.int64)
            msg_bounds = np.zeros(1, dtype=np.int64)
            population = None
            pop_idx = None
        self.comm.exchange_arrays(
            msg_src,
            msg_dst,
            payload,
            msg_bounds[:-1],
            msg_bounds[1:],
            "expand",
            population=population,
            pop_idx=pop_idx,
        )
        self.comm.stats.record_delivery_bulk(msg_dst, msg_sizes, "expand")

        inc_sizes = np.zeros(nranks, dtype=np.int64)
        np.add.at(inc_sizes, msg_dst, msg_sizes)
        self.comm.charge_compute_many(hash_lookups=inc_sizes)
        with_inc = np.flatnonzero(inc_sizes)
        if with_inc.size == 0:
            return fflat, fbounds
        fvals, _fsegs, fsz = gather_segments(fflat, fbounds, with_inc)
        values = np.concatenate((fvals, payload))
        segs = np.concatenate(
            (np.repeat(with_inc, fsz), np.repeat(msg_dst, msg_sizes))
        )
        uniq, ubounds, _, _ = segmented_unique(values, segs, nranks, self.n)
        # Two-bank merge: ranks with incoming take their union segment,
        # the rest keep their frontier segment — one gather, no per-rank
        # assembly loop.
        mask = inc_sizes > 0
        bank = np.concatenate((uniq, fflat))
        sel_starts = np.where(mask, ubounds[:-1], uniq.size + fbounds[:-1])
        sel_sizes = np.where(mask, np.diff(ubounds), fsizes)
        out_bounds = np.concatenate(([0], np.cumsum(sel_sizes)))
        out_total = int(out_bounds[-1])
        idx = np.arange(out_total, dtype=np.int64)
        idx += np.repeat(sel_starts - out_bounds[:-1], sel_sizes)
        return bank[idx], out_bounds

    def _discover_step(
        self, fbar_flat: np.ndarray, fbar_bounds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Step 12: merge partial edge lists; returns fold candidates as CSR."""
        nranks = self.comm.nranks
        n = self.n

        # One keyed lookup into the concatenated column-CSR resolves every
        # rank's partial edge lists; one gather merges them.
        fb_sizes = np.diff(fbar_bounds)
        qsegs = np.repeat(np.arange(nranks, dtype=np.int64), fb_sizes)
        qkeys = qsegs * n + fbar_flat
        pos = np.searchsorted(self._col_keys, qkeys)
        pos_c = np.minimum(pos, max(self._col_keys.size - 1, 0))
        hit = (
            self._col_keys[pos_c] == qkeys
            if self._col_keys.size
            else np.zeros(qkeys.shape, dtype=bool)
        )
        starts = self._col_starts[pos_c[hit]]
        lengths = self._col_stops[pos_c[hit]] - starts
        total = int(lengths.sum())
        if total:
            out_offsets = np.concatenate(([0], np.cumsum(lengths)))
            gather = np.arange(total, dtype=np.int64)
            gather += np.repeat(starts - out_offsets[:-1], lengths)
            raw = self._rows_cat[gather]
            raw_segs = np.repeat(qsegs[hit], lengths)
        else:
            raw = np.empty(0, dtype=VERTEX_DTYPE)
            raw_segs = np.empty(0, dtype=np.int64)
        raw_sizes = np.bincount(raw_segs, minlength=nranks)
        self.comm.charge_compute_many(
            edges_scanned=raw_sizes, hash_lookups=raw_sizes + fb_sizes
        )
        uniq_flat, uniq_bounds, _, _ = segmented_unique(raw, raw_segs, nranks, n)
        if self.opts.use_sent_cache:
            self.comm.charge_compute_many(hash_lookups=np.diff(uniq_bounds))
            return self._sent_pool.filter_unsent_segmented(uniq_flat, uniq_bounds)
        return uniq_flat, uniq_bounds

    def _fold_step(
        self, send_flat: np.ndarray, send_bounds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Steps 13-21: deliver neighbours across processor-rows, label fresh ones.

        All processor-rows fold in lockstep so their ring rounds share the
        wire in the contention model.  With a CSR-capable fold the slot
        sizes come from one bincount (row-group member ``i*C+j`` sending
        to member ``d`` is slot ``rank*C + d``, and ``send_flat`` is
        already in slot order); other folds get per-rank outbox dicts.
        """
        nranks = self.comm.nranks
        R = self.grid.rows
        offsets = self.partition.dist.offsets
        # Destination buckets within a processor-row are contiguous vertex
        # ranges: row member m (mesh column m) owns block rows [m*R, (m+1)*R).
        col_bounds = offsets[::R]
        if self._fold.supports_csr:
            C = self.grid.cols
            seg = np.repeat(
                np.arange(nranks, dtype=np.int64), np.diff(send_bounds)
            )
            bucket = np.searchsorted(col_bounds, send_flat, side="right") - 1
            csizes = np.bincount(seg * C + bucket, minlength=nranks * C)
            incoming, inc_bounds = self._fold.fold_many_csr(
                self.comm, self._row_groups, csizes, send_flat, "fold",
                sieve=self._sieve,
            )
            inc_segs = np.repeat(
                np.arange(nranks, dtype=np.int64), np.diff(inc_bounds)
            )
            return self._label_fresh(incoming, inc_segs)
        outboxes: list[dict[int, np.ndarray]] = []
        for r in range(nranks):
            neighbors = send_flat[send_bounds[r] : send_bounds[r + 1]]
            bounds = np.searchsorted(neighbors, col_bounds)
            nonempty = np.flatnonzero(bounds[1:] > bounds[:-1])
            outboxes.append(
                {int(m): neighbors[bounds[m] : bounds[m + 1]] for m in nonempty}
            )
        outboxes_per_group = [
            [outboxes[rank] for rank in group] for group in self._row_groups
        ]
        received_per_group = self._fold.fold_many(
            self.comm, self._row_groups, outboxes_per_group, phase="fold"
        )
        parts: list[np.ndarray] = []
        part_segs: list[int] = []
        for group, group_received in zip(self._row_groups, received_per_group):
            for idx, rank in enumerate(group):
                for arr in group_received[idx]:
                    if arr.size:
                        parts.append(arr)
                        part_segs.append(rank)
        if parts:
            incoming = np.concatenate(parts)
            inc_segs = np.repeat(
                np.array(part_segs, dtype=np.int64),
                np.array([p.size for p in parts], dtype=np.int64),
            )
        else:
            incoming = np.empty(0, dtype=VERTEX_DTYPE)
            inc_segs = np.empty(0, dtype=np.int64)
        return self._label_fresh(incoming, inc_segs)
