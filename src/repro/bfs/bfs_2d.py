"""Algorithm 2: distributed breadth-first expansion with 2D partitioning.

Each level has two communication steps:

* **expand** (steps 7-11): frontier owners inform their processor-*column*
  peers, which hold the frontier vertices' partial edge lists;
* **fold** (steps 13-18): discovered neighbours travel across the
  processor-*row* to their owners.

Only ``R`` (resp. ``C``) ranks take part in each collective instead of all
``P`` — the paper's key communication-scalability argument.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.level_sync import LevelSyncEngine
from repro.bfs.options import BfsOptions
from repro.bfs.sent_cache import SentCache
from repro.collectives.base import get_expand, get_fold
from repro.errors import ConfigurationError
from repro.partition.two_d import TwoDPartition
from repro.runtime.comm import Communicator
from repro.types import UNREACHED, VERTEX_DTYPE
from repro.utils.arrays import in_sorted


class Bfs2DEngine(LevelSyncEngine):
    """Level-synchronous BFS over a :class:`TwoDPartition` (R x C mesh)."""

    def __init__(
        self,
        partition: TwoDPartition,
        comm: Communicator,
        opts: BfsOptions | None = None,
    ) -> None:
        opts = opts or BfsOptions()
        if comm.nranks != partition.nranks:
            raise ConfigurationError(
                f"communicator has {comm.nranks} ranks but partition has {partition.nranks}"
            )
        if comm.grid != partition.grid:
            raise ConfigurationError(
                f"communicator grid {comm.grid} != partition grid {partition.grid}"
            )
        super().__init__(comm, partition.n, opts)
        self.partition = partition
        self.grid = partition.grid
        shape = opts.collective_shape
        self._expand = get_expand(
            opts.expand_collective,
            **({"shape": shape} if opts.expand_collective == "two-phase" else {}),
        )
        self._fold = get_fold(
            opts.fold_collective,
            **({"shape": shape} if opts.fold_collective == "two-phase" else {}),
        )
        self._col_groups = [self.grid.col_members(j) for j in range(self.grid.cols)]
        self._row_groups = [self.grid.row_members(i) for i in range(self.grid.rows)]
        self._expand_filters = self._build_expand_filters() if opts.use_expand_filter else None
        self._sent_caches: list[SentCache] = []

    def _build_expand_filters(self) -> dict[tuple[int, int], np.ndarray]:
        """Owner-side knowledge of peers' non-empty partial edge lists.

        ``filters[(src, dst)]`` is the sorted array of ``src``-owned
        vertices for which column peer ``dst`` holds a non-empty partial
        edge list.  The paper stores exactly this (Section 2.2): storage is
        proportional to the number of owned vertices, hence scalable.
        """
        filters: dict[tuple[int, int], np.ndarray] = {}
        for group in self._col_groups:
            for src in group:
                src_loc = self.partition.local(src)
                lo, hi = src_loc.vertex_lo, src_loc.vertex_hi
                for dst in group:
                    if dst == src:
                        continue
                    ids = self.partition.local(dst).col_map.ids
                    seg = ids[np.searchsorted(ids, lo) : np.searchsorted(ids, hi)]
                    filters[(src, dst)] = seg
        return filters

    # ------------------------------------------------------------------ #
    # layout hooks
    # ------------------------------------------------------------------ #
    def owner_rank(self, vertex: int) -> int:
        return int(self.partition.owner_of(np.array([vertex]))[0])

    def owned_slice(self, rank: int) -> tuple[int, int]:
        loc = self.partition.local(rank)
        return loc.vertex_lo, loc.vertex_hi

    def _reset_layout_state(self) -> None:
        self._sent_caches = [
            SentCache(self.partition.local(r).row_map) for r in range(self.comm.nranks)
        ]

    def _snapshot_layout_state(self):
        return [cache.snapshot() for cache in self._sent_caches]

    def _restore_layout_state(self, snapshot) -> None:
        for cache, sent in zip(self._sent_caches, snapshot):
            cache.restore(sent)

    # ------------------------------------------------------------------ #
    # one level (Algorithm 2, steps 7-21)
    # ------------------------------------------------------------------ #
    def _expand_level(self) -> list[np.ndarray]:
        expanded = self._expand_step()
        neighbor_outboxes = self._discover_step(expanded)
        return self._fold_step(neighbor_outboxes)

    def _expand_step(self) -> list[np.ndarray]:
        """Steps 7-11: share frontiers within processor-columns; return F-bar per rank.

        All processor-columns run their collective rounds in lockstep
        (``expand_many``), so their messages contend for the torus in the
        same simulated round — as they would on the real machine.
        """
        contributions_per_group = [
            [self.frontier[rank] for rank in group] for group in self._col_groups
        ]
        dest_filters = None
        if self._expand_filters is not None and self._expand.name == "direct":
            filters = self._expand_filters

            def make_filter(group, contributions):
                def dest_filter(g: int, d: int):
                    payload = contributions[g]
                    if payload.size == 0:
                        return payload
                    return payload[in_sorted(payload, filters[(group[g], group[d])])]

                return dest_filter

            dest_filters = [
                make_filter(group, contributions)
                for group, contributions in zip(self._col_groups, contributions_per_group)
            ]

        received_per_group = self._expand.expand_many(
            self.comm,
            self._col_groups,
            contributions_per_group,
            phase="expand",
            dest_filters=dest_filters,
        )
        fbar: list[np.ndarray] = [None] * self.comm.nranks  # type: ignore[list-item]
        for group, received in zip(self._col_groups, received_per_group):
            for idx, rank in enumerate(group):
                arrays = [self.frontier[rank], *received[idx]]
                incoming = sum(int(a.size) for a in received[idx])
                if incoming:
                    self.comm.charge_compute(rank, hash_lookups=incoming)
                fbar[rank] = (
                    np.unique(np.concatenate(arrays)) if incoming else self.frontier[rank]
                )
        return fbar

    def _discover_step(self, fbar: list[np.ndarray]) -> list[dict[int, np.ndarray]]:
        """Step 12 + bucketing: merge partial edge lists, route neighbours to owners."""
        R = self.grid.rows
        offsets = self.partition.dist.offsets
        # Destination buckets within a processor-row are contiguous vertex
        # ranges: row member m (mesh column m) owns block rows [m*R, (m+1)*R).
        col_bounds = offsets[:: R]
        outboxes: list[dict[int, np.ndarray]] = []
        for rank in range(self.comm.nranks):
            loc = self.partition.local(rank)
            raw = loc.partial_neighbors(fbar[rank])
            neighbors = np.unique(raw)
            self.comm.charge_compute(
                rank,
                edges_scanned=int(raw.size),
                hash_lookups=int(raw.size) + int(fbar[rank].size),
            )
            if self.opts.use_sent_cache:
                self.comm.charge_compute(rank, hash_lookups=int(neighbors.size))
                neighbors = self._sent_caches[rank].filter_unsent(neighbors)
            bounds = np.searchsorted(neighbors, col_bounds)
            outboxes.append(
                {
                    m: neighbors[bounds[m] : bounds[m + 1]]
                    for m in range(self.grid.cols)
                    if bounds[m + 1] > bounds[m]
                }
            )
        return outboxes

    def _fold_step(self, outboxes: list[dict[int, np.ndarray]]) -> list[np.ndarray]:
        """Steps 13-21: deliver neighbours across processor-rows, label fresh ones.

        All processor-rows fold in lockstep (``fold_many``) so their ring
        rounds share the wire in the contention model.
        """
        outboxes_per_group = [
            [outboxes[rank] for rank in group] for group in self._row_groups
        ]
        received_per_group = self._fold.fold_many(
            self.comm, self._row_groups, outboxes_per_group, phase="fold"
        )
        received: list[list[np.ndarray]] = [None] * self.comm.nranks  # type: ignore[list-item]
        for group, group_received in zip(self._row_groups, received_per_group):
            for idx, rank in enumerate(group):
                received[rank] = group_received[idx]

        new_frontiers: list[np.ndarray] = []
        for rank in range(self.comm.nranks):
            arrays = received[rank]
            if arrays:
                incoming = np.concatenate(arrays)
                self.comm.charge_compute(rank, hash_lookups=int(incoming.size))
                candidates = np.unique(incoming)
            else:
                candidates = np.empty(0, dtype=VERTEX_DTYPE)
            lo, _hi = self.owned_slice(rank)
            if candidates.size:
                fresh = candidates[self.owned_levels[rank][candidates - lo] == UNREACHED]
            else:
                fresh = candidates
            if fresh.size:
                self.owned_levels[rank][fresh - lo] = self.level + 1
                self.comm.charge_compute(rank, updates=int(fresh.size))
            new_frontiers.append(fresh)
        return new_frontiers
