"""Algorithm 2: distributed breadth-first expansion with 2D partitioning.

Each level has two communication steps:

* **expand** (steps 7-11): frontier owners inform their processor-*column*
  peers, which hold the frontier vertices' partial edge lists;
* **fold** (steps 13-18): discovered neighbours travel across the
  processor-*row* to their owners.

Only ``R`` (resp. ``C``) ranks take part in each collective instead of all
``P`` — the paper's key communication-scalability argument.

All per-rank work of a level runs as batched NumPy kernels over
concatenated per-rank data (one keyed lookup into the concatenated
column-CSR for discovery, segmented uniques for the per-rank merges, one
fresh-mask pass over the flat level array for labelling) — numerically
identical to iterating the P virtual ranks in Python, but vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottom_up import bottom_up_level_2d
from repro.bfs.level_sync import LevelSyncEngine
from repro.bfs.options import BfsOptions
from repro.bfs.sent_cache import SentCache
from repro.collectives.base import get_expand, get_fold
from repro.errors import ConfigurationError
from repro.partition.two_d import TwoDPartition
from repro.runtime.comm import Communicator
from repro.types import UNREACHED, VERTEX_DTYPE
from repro.utils.arrays import in_sorted
from repro.utils.segmented import segmented_unique


class Bfs2DEngine(LevelSyncEngine):
    """Level-synchronous BFS over a :class:`TwoDPartition` (R x C mesh)."""

    def __init__(
        self,
        partition: TwoDPartition,
        comm: Communicator,
        opts: BfsOptions | None = None,
    ) -> None:
        opts = opts or BfsOptions()
        if comm.nranks != partition.nranks:
            raise ConfigurationError(
                f"communicator has {comm.nranks} ranks but partition has {partition.nranks}"
            )
        if comm.grid != partition.grid:
            raise ConfigurationError(
                f"communicator grid {comm.grid} != partition grid {partition.grid}"
            )
        super().__init__(comm, partition.n, opts)
        self.partition = partition
        self.grid = partition.grid
        shape = opts.collective_shape
        self._expand = get_expand(
            opts.expand_collective,
            **({"shape": shape} if opts.expand_collective == "two-phase" else {}),
        )
        self._fold = get_fold(
            opts.fold_collective,
            **({"shape": shape} if opts.fold_collective == "two-phase" else {}),
        )
        self._col_groups = [self.grid.col_members(j) for j in range(self.grid.cols)]
        self._row_groups = [self.grid.row_members(i) for i in range(self.grid.rows)]
        self._expand_filters = self._build_expand_filters() if opts.use_expand_filter else None
        self._expand_filter_cat = (
            self._build_expand_filter_cat() if self._expand_filters is not None else None
        )
        self._sent_caches: list[SentCache] = []
        # Concatenated column-CSR of every rank, keyed by rank * n + column
        # id (ascending: ranks ascend, ids are sorted per rank) — one
        # searchsorted resolves all ranks' partial-edge-list lookups.
        n = partition.n
        key_parts: list[np.ndarray] = []
        start_parts: list[np.ndarray] = []
        stop_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        rows_base = 0
        for r in range(partition.nranks):
            loc = partition.local(r)
            key_parts.append(r * n + loc.col_map.ids)
            indptr = loc.col_indptr.astype(np.int64)
            start_parts.append(indptr[:-1] + rows_base)
            stop_parts.append(indptr[1:] + rows_base)
            row_parts.append(loc.rows)
            rows_base += loc.rows.shape[0]
        self._col_keys = np.concatenate(key_parts)
        self._col_starts = np.concatenate(start_parts)
        self._col_stops = np.concatenate(stop_parts)
        self._rows_cat = np.concatenate(row_parts)

    def _build_expand_filters(self) -> dict[tuple[int, int], np.ndarray]:
        """Owner-side knowledge of peers' non-empty partial edge lists.

        ``filters[(src, dst)]`` is the sorted array of ``src``-owned
        vertices for which column peer ``dst`` holds a non-empty partial
        edge list.  The paper stores exactly this (Section 2.2): storage is
        proportional to the number of owned vertices, hence scalable.
        """
        filters: dict[tuple[int, int], np.ndarray] = {}
        for group in self._col_groups:
            # One searchsorted of each dst's column ids against all the
            # group's owned ranges replaces a probe per (src, dst) pair.
            los = np.array(
                [self.partition.local(src).vertex_lo for src in group],
                dtype=np.int64,
            )
            his = np.array(
                [self.partition.local(src).vertex_hi for src in group],
                dtype=np.int64,
            )
            for dst in group:
                ids = self.partition.local(dst).col_map.ids
                b_lo = np.searchsorted(ids, los)
                b_hi = np.searchsorted(ids, his)
                for k, src in enumerate(group):
                    if src != dst:
                        filters[(src, dst)] = ids[b_lo[k] : b_hi[k]]
        return filters

    def _build_expand_filter_cat(
        self,
    ) -> dict[int, tuple[list[int], np.ndarray, np.ndarray]]:
        """Per-source concatenation of the expand filters.

        One membership test of the concatenated filters against the
        source's frontier replaces one test per (src, dst) pair; the
        per-destination results are slices of the concatenation.
        """
        cat: dict[int, tuple[list[int], np.ndarray, np.ndarray]] = {}
        for group in self._col_groups:
            for src in group:
                dsts = [d for d in group if d != src]
                segs = [self._expand_filters[(src, d)] for d in dsts]
                sizes = np.array([s.size for s in segs], dtype=np.int64)
                bounds = np.concatenate(([0], np.cumsum(sizes)))
                merged = (
                    np.concatenate(segs) if segs else np.empty(0, dtype=VERTEX_DTYPE)
                )
                cat[src] = (dsts, merged, bounds)
        return cat

    # ------------------------------------------------------------------ #
    # layout hooks
    # ------------------------------------------------------------------ #
    def owner_rank(self, vertex: int) -> int:
        return int(self.partition.owner_of(np.array([vertex]))[0])

    def owned_slice(self, rank: int) -> tuple[int, int]:
        loc = self.partition.local(rank)
        return loc.vertex_lo, loc.vertex_hi

    def _reset_layout_state(self) -> None:
        self._sent_caches = [
            SentCache(self.partition.local(r).row_map) for r in range(self.comm.nranks)
        ]

    def _snapshot_layout_state(self):
        return [cache.snapshot() for cache in self._sent_caches]

    def _restore_layout_state(self, snapshot) -> None:
        for cache, sent in zip(self._sent_caches, snapshot):
            cache.restore(sent)

    def _layout_checkpoint_nbytes(self) -> np.ndarray:
        # the sent-neighbours cache travels in the buddy checkpoint as a
        # bitset over each rank's sent universe
        return np.array(
            [(len(cache) + 7) // 8 for cache in self._sent_caches], dtype=np.int64
        )

    def _expand_level_bottom_up(self) -> list[np.ndarray]:
        return bottom_up_level_2d(self)

    # ------------------------------------------------------------------ #
    # one level (Algorithm 2, steps 7-21)
    # ------------------------------------------------------------------ #
    def _expand_level(self) -> list[np.ndarray]:
        obs = self.comm.obs
        with obs.span("expand", cat="phase"):
            expanded = self._expand_step()
        with obs.span("compute", cat="phase"):
            neighbor_outboxes = self._discover_step(expanded)
        with obs.span("fold", cat="phase"):
            return self._fold_step(neighbor_outboxes)

    def _expand_step(self) -> list[np.ndarray]:
        """Steps 7-11: share frontiers within processor-columns; return F-bar per rank.

        All processor-columns run their collective rounds in lockstep
        (``expand_many``), so their messages contend for the torus in the
        same simulated round — as they would on the real machine.
        """
        if (
            self._expand.name == "direct"
            and self._expand_filter_cat is not None
            and self.comm.faults is None
        ):
            return self._expand_step_direct()
        contributions_per_group = [
            [self.frontier[rank] for rank in group] for group in self._col_groups
        ]
        dest_filters = None
        if self._expand_filters is not None and self._expand.name == "direct":
            filter_cat = self._expand_filter_cat

            def make_filter(group, contributions):
                # All destinations of one source share a single membership
                # test of the concatenated filters against its frontier;
                # each (src, dst) result is the intersection the scalar
                # per-pair test produced.
                cache: dict[int, dict[int, np.ndarray]] = {}

                def dest_filter(g: int, d: int) -> np.ndarray:
                    payload = contributions[g]
                    if payload.size == 0:
                        return payload
                    src = group[g]
                    per_dst = cache.get(src)
                    if per_dst is None:
                        dsts, merged, bounds = filter_cat[src]
                        mask = in_sorted(merged, payload)
                        per_dst = {
                            dst: merged[bounds[k] : bounds[k + 1]][
                                mask[bounds[k] : bounds[k + 1]]
                            ]
                            for k, dst in enumerate(dsts)
                        }
                        cache[src] = per_dst
                    return per_dst[group[d]]

                return dest_filter

            dest_filters = [
                make_filter(group, contributions)
                for group, contributions in zip(self._col_groups, contributions_per_group)
            ]

        received_per_group = self._expand.expand_many(
            self.comm,
            self._col_groups,
            contributions_per_group,
            phase="expand",
            dest_filters=dest_filters,
        )
        nranks = self.comm.nranks
        fbar: list[np.ndarray] = [None] * nranks  # type: ignore[list-item]
        inc_sizes = np.zeros(nranks, dtype=np.int64)
        parts: list[np.ndarray] = []
        part_segs: list[int] = []
        for group, received in zip(self._col_groups, received_per_group):
            for idx, rank in enumerate(group):
                incoming = sum(int(a.size) for a in received[idx])
                inc_sizes[rank] = incoming
                if incoming:
                    parts.append(self.frontier[rank])
                    part_segs.append(rank)
                    for a in received[idx]:
                        if a.size:
                            parts.append(a)
                            part_segs.append(rank)
                else:
                    fbar[rank] = self.frontier[rank]
        self.comm.charge_compute_many(hash_lookups=inc_sizes)
        if parts:
            values = np.concatenate(parts)
            segs = np.repeat(
                np.array(part_segs, dtype=np.int64),
                np.array([p.size for p in parts], dtype=np.int64),
            )
            flat, bounds, _ = segmented_unique(values, segs, nranks, self.n)
            for rank in range(nranks):
                if fbar[rank] is None:
                    fbar[rank] = flat[bounds[rank] : bounds[rank + 1]]
        return fbar

    def _expand_step_direct(self) -> list[np.ndarray]:
        """The filtered single-round expand as one batched exchange.

        Equivalent to ``DirectExpand.expand_many`` with the per-destination
        filters, but built directly as message arrays: one membership test
        per source over its concatenated filters, message payloads as
        slices of the filtered result, one array exchange, one segmented
        union for the per-rank merges.  Fault injection decides deliveries
        per chunk, so faulted runs keep the collective path.
        """
        nranks = self.comm.nranks
        filter_cat = self._expand_filter_cat
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        size_parts: list[np.ndarray] = []
        flat_parts: list[np.ndarray] = []
        # Iterate groups then members — the merged-outbox message order of
        # the lockstep driver.
        for group in self._col_groups:
            for src in group:
                payload = self.frontier[src]
                if payload.size == 0:
                    continue
                dsts, merged, bounds = filter_cat[src]
                if merged.size == 0:
                    continue
                mask = in_sorted(merged, payload)
                cum = np.concatenate(([0], np.cumsum(mask)))
                sizes = cum[bounds[1:]] - cum[bounds[:-1]]
                nonempty = np.flatnonzero(sizes)
                if nonempty.size == 0:
                    continue
                src_parts.append(np.full(nonempty.size, src, dtype=np.int64))
                dst_parts.append(np.asarray(dsts, dtype=np.int64)[nonempty])
                size_parts.append(sizes[nonempty])
                # filtered is ordered by destination, so it is exactly the
                # non-empty message payloads back to back
                flat_parts.append(merged[mask])
        if src_parts:
            src_arr = np.concatenate(src_parts)
            dst_arr = np.concatenate(dst_parts)
            msg_sizes = np.concatenate(size_parts)
            flat = np.concatenate(flat_parts)
        else:
            src_arr = np.empty(0, dtype=np.int64)
            dst_arr = np.empty(0, dtype=np.int64)
            msg_sizes = np.empty(0, dtype=np.int64)
            flat = np.empty(0, dtype=VERTEX_DTYPE)
        msg_bounds = np.concatenate(([0], np.cumsum(msg_sizes)))
        self.comm.exchange_arrays(
            src_arr,
            dst_arr,
            flat,
            msg_bounds[:-1],
            msg_bounds[1:],
            "expand",
            participants=list(range(nranks)),
        )
        self.comm.stats.record_delivery_bulk(dst_arr, msg_sizes, "expand")

        inc_sizes = np.zeros(nranks, dtype=np.int64)
        np.add.at(inc_sizes, dst_arr, msg_sizes)
        self.comm.charge_compute_many(hash_lookups=inc_sizes)
        fbar: list[np.ndarray] = [None] * nranks  # type: ignore[list-item]
        with_inc = np.flatnonzero(inc_sizes)
        if with_inc.size:
            front_parts = [self.frontier[int(r)] for r in with_inc]
            front_sizes = np.array([p.size for p in front_parts], dtype=np.int64)
            values = np.concatenate(front_parts + [flat])
            segs = np.concatenate(
                (np.repeat(with_inc, front_sizes), np.repeat(dst_arr, msg_sizes))
            )
            uniq, bounds, _ = segmented_unique(values, segs, nranks, self.n)
            for rank in range(nranks):
                if inc_sizes[rank]:
                    fbar[rank] = uniq[bounds[rank] : bounds[rank + 1]]
                else:
                    fbar[rank] = self.frontier[rank]
        else:
            for rank in range(nranks):
                fbar[rank] = self.frontier[rank]
        return fbar

    def _discover_step(self, fbar: list[np.ndarray]) -> list[dict[int, np.ndarray]]:
        """Step 12 + bucketing: merge partial edge lists, route neighbours to owners."""
        nranks = self.comm.nranks
        n = self.n
        R = self.grid.rows
        offsets = self.partition.dist.offsets
        # Destination buckets within a processor-row are contiguous vertex
        # ranges: row member m (mesh column m) owns block rows [m*R, (m+1)*R).
        col_bounds = offsets[::R]

        # One keyed lookup into the concatenated column-CSR resolves every
        # rank's partial edge lists; one gather merges them.
        fb_sizes = np.array([f.size for f in fbar], dtype=np.int64)
        fbar_cat = np.concatenate(fbar)
        qsegs = np.repeat(np.arange(nranks, dtype=np.int64), fb_sizes)
        qkeys = qsegs * n + fbar_cat
        pos = np.searchsorted(self._col_keys, qkeys)
        pos_c = np.minimum(pos, max(self._col_keys.size - 1, 0))
        hit = (
            self._col_keys[pos_c] == qkeys
            if self._col_keys.size
            else np.zeros(qkeys.shape, dtype=bool)
        )
        starts = self._col_starts[pos_c[hit]]
        lengths = self._col_stops[pos_c[hit]] - starts
        total = int(lengths.sum())
        if total:
            out_offsets = np.concatenate(([0], np.cumsum(lengths)))
            gather = np.arange(total, dtype=np.int64)
            gather += np.repeat(starts - out_offsets[:-1], lengths)
            raw = self._rows_cat[gather]
            raw_segs = np.repeat(qsegs[hit], lengths)
        else:
            raw = np.empty(0, dtype=VERTEX_DTYPE)
            raw_segs = np.empty(0, dtype=np.int64)
        raw_sizes = np.bincount(raw_segs, minlength=nranks)
        self.comm.charge_compute_many(
            edges_scanned=raw_sizes, hash_lookups=raw_sizes + fb_sizes
        )
        uniq_flat, uniq_bounds, _ = segmented_unique(raw, raw_segs, nranks, n)
        per_rank = [
            uniq_flat[uniq_bounds[r] : uniq_bounds[r + 1]] for r in range(nranks)
        ]
        if self.opts.use_sent_cache:
            self.comm.charge_compute_many(hash_lookups=np.diff(uniq_bounds))
            per_rank = [
                self._sent_caches[r].filter_unsent(neighbors)
                for r, neighbors in enumerate(per_rank)
            ]
        outboxes: list[dict[int, np.ndarray]] = []
        for r in range(nranks):
            neighbors = per_rank[r]
            bounds = np.searchsorted(neighbors, col_bounds)
            nonempty = np.flatnonzero(bounds[1:] > bounds[:-1])
            outboxes.append(
                {int(m): neighbors[bounds[m] : bounds[m + 1]] for m in nonempty}
            )
        return outboxes

    def _fold_step(self, outboxes: list[dict[int, np.ndarray]]) -> list[np.ndarray]:
        """Steps 13-21: deliver neighbours across processor-rows, label fresh ones.

        All processor-rows fold in lockstep (``fold_many``) so their ring
        rounds share the wire in the contention model.
        """
        outboxes_per_group = [
            [outboxes[rank] for rank in group] for group in self._row_groups
        ]
        received_per_group = self._fold.fold_many(
            self.comm, self._row_groups, outboxes_per_group, phase="fold"
        )
        nranks = self.comm.nranks
        parts: list[np.ndarray] = []
        part_segs: list[int] = []
        for group, group_received in zip(self._row_groups, received_per_group):
            for idx, rank in enumerate(group):
                for arr in group_received[idx]:
                    if arr.size:
                        parts.append(arr)
                        part_segs.append(rank)
        if parts:
            incoming = np.concatenate(parts)
            inc_segs = np.repeat(
                np.array(part_segs, dtype=np.int64),
                np.array([p.size for p in parts], dtype=np.int64),
            )
        else:
            incoming = np.empty(0, dtype=VERTEX_DTYPE)
            inc_segs = np.empty(0, dtype=np.int64)
        self.comm.charge_compute_many(
            hash_lookups=np.bincount(inc_segs, minlength=nranks)
        )
        cand_flat, cand_bounds, _ = segmented_unique(incoming, inc_segs, nranks, self.n)
        cand_segs = np.repeat(np.arange(nranks, dtype=np.int64), np.diff(cand_bounds))
        fresh_mask = self._levels_flat[cand_flat] == UNREACHED
        fresh_flat = cand_flat[fresh_mask]
        self._levels_flat[fresh_flat] = self.level + 1
        fresh_counts = np.bincount(cand_segs[fresh_mask], minlength=nranks)
        self.comm.charge_compute_many(updates=fresh_counts)
        fresh_bounds = np.concatenate(([0], np.cumsum(fresh_counts)))
        return [
            fresh_flat[fresh_bounds[r] : fresh_bounds[r + 1]] for r in range(nranks)
        ]
