"""Bi-directional BFS (Section 2.3).

Two level-synchronous searches run towards each other — one from the
source, one from the destination (the graph is undirected, so both use the
same engines).  Each iteration advances the side with the smaller frontier,
which keeps the total frontier (and hence communication volume and memory
traffic) far below the uni-directional search — the paper measures a
worst-case search time of ~33% of uni-directional.

Termination: whenever a vertex is labelled by both searches it witnesses a
path of length ``Lf(v) + Lb(v)``.  The true distance ``d`` satisfies
``d <= best`` for the best witness seen, and once
``levels_forward + levels_backward >= best`` every vertex on some shortest
path has been labelled by both sides, so ``best == d`` exactly.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.level_sync import LevelSyncEngine
from repro.bfs.result import BidirectionalResult
from repro.errors import ConfigurationError, SearchError
from repro.observability.artifacts import collect_observability
from repro.types import UNREACHED

_INF = float("inf")


def run_bidirectional_bfs(
    forward: LevelSyncEngine,
    backward: LevelSyncEngine,
    source: int,
    target: int,
    max_levels: int | None = None,
) -> BidirectionalResult:
    """Run a bi-directional s-t search using two engines sharing one communicator.

    ``forward`` and ``backward`` must be distinct engine instances built on
    the same partition and the same :class:`~repro.runtime.comm.Communicator`
    (so simulated time and message statistics accumulate in one place).
    """
    if forward is backward:
        raise ConfigurationError("forward and backward must be distinct engine instances")
    if forward.comm is not backward.comm:
        raise ConfigurationError("both engines must share one communicator")
    if forward.n != backward.n:
        raise ConfigurationError("engines disagree on graph size")
    if not (0 <= source < forward.n) or not (0 <= target < forward.n):
        raise SearchError(f"source/target out of range [0, {forward.n})")

    comm = forward.comm
    obs = comm.obs
    run_span = (
        obs.begin("bidirectional bfs", cat="run", source=source, target=target)
        if obs.enabled
        else None
    )
    forward.start(source)
    backward.start(target)

    best = 0.0 if source == target else _INF
    frontier_f, frontier_b = 1, 1
    alive_f, alive_b = source != target, source != target
    while alive_f or alive_b:
        step_forward = alive_f and (not alive_b or frontier_f <= frontier_b)
        if step_forward:
            frontier_f = forward.step()
            alive_f = frontier_f > 0
            best = min(best, _meet_candidate(forward, backward))
        else:
            frontier_b = backward.step()
            alive_b = frontier_b > 0
            best = min(best, _meet_candidate(backward, forward))
        if best < _INF and forward.level + backward.level >= best:
            break
        if not alive_f or not alive_b:
            # One side exhausted its component: every witness is final.
            break
        if max_levels is not None and forward.level + backward.level >= max_levels:
            break

    if run_span is not None:
        obs.end(
            run_span,
            forward_levels=forward.level,
            backward_levels=backward.level,
            path_length=int(best) if best < _INF else None,
        )
    clock = comm.clock
    return BidirectionalResult(
        source=source,
        target=target,
        path_length=int(best) if best < _INF else None,
        forward_levels=forward.level,
        backward_levels=backward.level,
        elapsed=clock.elapsed,
        comm_time=clock.max_comm_time,
        compute_time=clock.max_compute_time,
        stats=comm.stats,
        faults=comm.fault_report(),
        observability=collect_observability(comm),
    )


def _meet_candidate(stepped: LevelSyncEngine, other: LevelSyncEngine) -> float:
    """Global min of ``L_stepped(v) + L_other(v)`` over freshly labelled vertices.

    Only the vertices the just-stepped side labelled this level need
    checking: any meeting vertex is fresh for whichever search labels it
    *second*, so scanning fresh vertices every step finds every witness.
    Each rank probes the other side's label array at its fresh vertices
    (O(frontier) work), then one min-allreduce combines the candidates —
    the per-level "have the searches met?" test of a real implementation.
    """
    comm = stepped.comm
    nranks = comm.nranks
    candidates = np.full(nranks, _INF)
    sizes = np.diff(stepped._frontier_bounds)
    comm.charge_compute_many(hash_lookups=sizes)
    fresh_cat = stepped._frontier_flat
    if fresh_cat.size:
        segs = np.repeat(np.arange(nranks, dtype=np.int64), sizes)
        lb = other._levels_flat[fresh_cat]
        met = lb != UNREACHED
        if met.any():
            sentinel = np.iinfo(np.int64).max
            mins = np.full(nranks, sentinel, dtype=np.int64)
            np.minimum.at(mins, segs[met], lb[met])
            touched = mins != sentinel
            candidates[touched] = (stepped.level + mins[touched]).astype(np.float64)
    return comm.allreduce_min(candidates)
