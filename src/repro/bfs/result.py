"""Result objects returned by the BFS drivers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults import FaultReport
from repro.observability.artifacts import ObservabilityData
from repro.runtime.stats import CommStats
from repro.types import UNREACHED


@dataclass(slots=True)
class QueryResult:
    """Lightweight per-query view of a BFS outcome, suitable for streaming.

    Carries only scalars (no level arrays), so a server can serialize one
    per answered query without shipping O(n) data; ``levels_digest`` is
    the SHA-256 of the query's level array, letting clients verify that a
    batched traversal answered exactly what a sequential run would have.
    ``elapsed`` is the simulated time of the run that produced the answer —
    for a batched query, the whole batch's traversal (shared by its
    ``batch_size`` members).
    """

    source: int
    target: int | None
    target_level: int | None
    num_levels: int
    num_reached: int
    elapsed: float
    batch_size: int = 1
    levels_digest: str | None = None

    @property
    def found_target(self) -> bool:
        """Whether a requested target vertex was reached."""
        return self.target_level is not None

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (the server's JSON reply payload)."""
        return {
            "source": self.source,
            "target": self.target,
            "target_level": self.target_level,
            "num_levels": self.num_levels,
            "num_reached": self.num_reached,
            "elapsed": self.elapsed,
            "batch_size": self.batch_size,
            "levels_digest": self.levels_digest,
        }


@dataclass(slots=True)
class BfsResult:
    """Outcome of one distributed BFS run.

    ``levels`` is the assembled global level array (``UNREACHED`` = -1 for
    vertices the search never labelled); times are simulated seconds from
    the machine cost model.
    """

    source: int
    levels: np.ndarray
    num_levels: int
    elapsed: float
    comm_time: float
    compute_time: float
    stats: CommStats
    target: int | None = None
    target_level: int | None = None
    #: fault-injection summary; None when the fault layer was disabled
    faults: FaultReport | None = None
    #: spans + message events; None when the run was not observed
    observability: ObservabilityData | None = None

    @property
    def reached(self) -> np.ndarray:
        """Boolean mask of vertices reached by the search."""
        return self.levels != UNREACHED

    @property
    def num_reached(self) -> int:
        """Number of vertices labelled by the search."""
        return int(self.reached.sum())

    @property
    def found_target(self) -> bool:
        """Whether a requested target vertex was reached."""
        return self.target_level is not None

    def query_view(self, *, digest: bool = True) -> QueryResult:
        """The lightweight streaming view of this result (no level array)."""
        levels_digest = None
        if digest:
            from repro.observability.digest import levels_digest as _levels_digest

            levels_digest = _levels_digest(self.levels)
        return QueryResult(
            source=self.source,
            target=self.target,
            target_level=self.target_level,
            num_levels=self.num_levels,
            num_reached=self.num_reached,
            elapsed=self.elapsed,
            batch_size=1,
            levels_digest=levels_digest,
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        tail = ""
        if self.target is not None:
            tail = (
                f", target {self.target} at level {self.target_level}"
                if self.found_target
                else f", target {self.target} unreachable"
            )
        return (
            f"BFS from {self.source}: {self.num_reached} vertices in "
            f"{self.num_levels} levels, {self.elapsed:.6f}s simulated "
            f"(comm {self.comm_time:.6f}s){tail}"
        )


@dataclass(slots=True)
class BidirectionalResult:
    """Outcome of a bi-directional s-t search (Section 2.3)."""

    source: int
    target: int
    path_length: int | None
    forward_levels: int
    backward_levels: int
    elapsed: float
    comm_time: float
    compute_time: float
    stats: CommStats
    #: fault-injection summary; None when the fault layer was disabled
    faults: FaultReport | None = None
    #: spans + message events; None when the run was not observed
    observability: ObservabilityData | None = None

    @property
    def found(self) -> bool:
        """Whether a source-target path was found."""
        return self.path_length is not None

    def summary(self) -> str:
        """One-line human-readable summary."""
        outcome = (
            f"path of length {self.path_length}" if self.found else "no path (disconnected)"
        )
        return (
            f"bi-directional BFS {self.source}->{self.target}: {outcome}, "
            f"{self.forward_levels}+{self.backward_levels} levels, "
            f"{self.elapsed:.6f}s simulated"
        )
