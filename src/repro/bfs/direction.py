"""Per-level direction policy for direction-optimizing BFS.

Beamer's direction-optimizing traversal (arXiv:1705.04590, following the
SC'12 paper) runs each level either *top-down* (frontier vertices push to
neighbours) or *bottom-up* (unvisited vertices scan their edge lists for a
frontier parent, stopping at the first hit).  Top-down work is proportional
to edges out of the frontier; bottom-up work is proportional to edges out
of the *unvisited* set, with early exit.  On scale-free graphs the middle
levels hold most of the graph, so a few bottom-up levels cut traversed
edges by an order of magnitude.

:class:`DirectionPolicy` decides the direction of each level from three
*global counts only* — frontier size, unvisited count, and ``n``.  This is
deliberate: the simulator's engines and the SPMD backend can all compute
these identically (the engines from their global arrays, the workers from
allreduced totals), so every rank takes the same branch in lockstep and
the hybrid traversal stays deterministic across backends.

Two adaptive modes are provided:

``hybrid``
    The classic online α/β heuristic with hysteresis: switch top-down →
    bottom-up when the frontier exceeds ``unvisited / alpha``, and back
    once the frontier shrinks below ``n / beta``.

``model``
    Offline cost-model mode: the per-level schedule is precomputed from
    :mod:`repro.analysis.frontier_model`'s epidemic recursion (valid for
    Poisson specs only — see :func:`DirectionPolicy.model_for`), so the
    switch levels are known before the search starts.  Falls back to the
    online heuristic for levels beyond the predicted horizon.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

TOP_DOWN = "top-down"
BOTTOM_UP = "bottom-up"

#: policy mode names accepted by :class:`DirectionPolicy` / ``BfsOptions``
DIRECTION_MODES = ("top-down", "bottom-up", "hybrid", "model")

__all__ = [
    "BOTTOM_UP",
    "DIRECTION_MODES",
    "TOP_DOWN",
    "DirectionPolicy",
]


@dataclass(frozen=True, slots=True)
class DirectionPolicy:
    """Chooses each BFS level's traversal direction.

    ``mode`` is one of :data:`DIRECTION_MODES`.  ``alpha`` and ``beta``
    are the Beamer switch thresholds (larger ``alpha`` switches to
    bottom-up later; larger ``beta`` switches back later).  ``schedule``
    is a precomputed per-level direction tuple used by ``model`` mode;
    levels beyond its end fall back to the online heuristic.
    """

    mode: str = "top-down"
    alpha: float = 6.0
    beta: float = 24.0
    schedule: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in DIRECTION_MODES:
            raise ValueError(
                f"unknown direction mode {self.mode!r}; "
                f"use one of {list(DIRECTION_MODES)}"
            )
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError(
                f"alpha/beta must be positive, got "
                f"alpha={self.alpha}, beta={self.beta}"
            )
        for entry in self.schedule:
            if entry not in (TOP_DOWN, BOTTOM_UP):
                raise ValueError(
                    f"schedule entries must be {TOP_DOWN!r} or "
                    f"{BOTTOM_UP!r}, got {entry!r}"
                )

    @classmethod
    def coerce(cls, value: "DirectionPolicy | str") -> "DirectionPolicy":
        """Accept a policy object or a bare mode name."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(
            f"direction must be a DirectionPolicy or a mode name, "
            f"got {type(value).__name__}"
        )

    @property
    def may_go_bottom_up(self) -> bool:
        """True when any level could run bottom-up under this policy."""
        return self.mode != TOP_DOWN

    def decide(
        self, level: int, frontier_size: int, unvisited: int, n: int,
        prev: str = TOP_DOWN,
    ) -> str:
        """Direction for ``level``, from global counts and the previous direction.

        ``frontier_size`` is the number of vertices at ``level``;
        ``unvisited`` counts vertices still unreached *before* this level
        expands.  Deterministic in its arguments — all backends feed it
        the same allreduced totals and take the same branch.
        """
        if self.mode == TOP_DOWN:
            return TOP_DOWN
        if self.mode == BOTTOM_UP:
            return BOTTOM_UP
        if self.mode == "model" and level < len(self.schedule):
            return self.schedule[level]
        # Online α/β heuristic with hysteresis (hybrid mode, and model
        # mode past the precomputed horizon).
        if frontier_size == 0 or unvisited == 0:
            return TOP_DOWN
        if prev == TOP_DOWN:
            return BOTTOM_UP if frontier_size > unvisited / self.alpha else TOP_DOWN
        return TOP_DOWN if frontier_size < n / self.beta else BOTTOM_UP

    @classmethod
    def model_for(
        cls,
        spec,
        *,
        alpha: float = 6.0,
        beta: float = 24.0,
        max_levels: int = 64,
    ) -> "DirectionPolicy":
        """A ``model``-mode policy whose schedule is predicted offline.

        Runs the α/β decision over the analytic frontier-fraction
        trajectory from :func:`repro.analysis.frontier_model.
        frontier_fractions_for` — so the switch levels are fixed before
        the search starts.  The frontier model is only valid for Poisson
        specs; for any other kind this warns and returns a plain
        ``hybrid`` (online) policy instead of mispredicting.
        """
        from repro.analysis.frontier_model import frontier_fractions_for
        from repro.errors import ConfigurationError

        try:
            fractions = frontier_fractions_for(spec, max_levels=max_levels)
        except ConfigurationError as exc:
            warnings.warn(
                f"DirectionPolicy.model_for: {exc}; falling back to the "
                f"online hybrid heuristic",
                RuntimeWarning,
                stacklevel=2,
            )
            return cls(mode="hybrid", alpha=alpha, beta=beta)
        n = spec.n
        online = cls(mode="hybrid", alpha=alpha, beta=beta)
        schedule: list[str] = []
        prev = TOP_DOWN
        reached = 0.0
        for level, fraction in enumerate(fractions):
            frontier = max(1, round(fraction * n))
            unvisited = max(0, n - round(reached * n) - frontier)
            prev = online.decide(level, frontier, unvisited, n, prev)
            schedule.append(prev)
            reached += fraction
        return cls(
            mode="model", alpha=alpha, beta=beta, schedule=tuple(schedule)
        )
