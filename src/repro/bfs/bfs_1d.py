"""Algorithm 1: distributed breadth-first expansion with 1D partitioning.

Every rank owns a contiguous vertex block with full edge lists.  Each
level: merge the edge lists of the local frontier, send every discovered
neighbour to its owner (the fold — the only communication step of the 1D
algorithm), and label the freshly received vertices.  All ``P`` ranks take
part in the fold collective, which is exactly the scalability weakness the
2D layout attacks.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.level_sync import LevelSyncEngine
from repro.bfs.options import BfsOptions
from repro.bfs.sent_cache import SentCache
from repro.collectives.base import get_fold
from repro.errors import ConfigurationError
from repro.partition.indexing import VertexIndexMap
from repro.partition.one_d import OneDPartition
from repro.runtime.comm import Communicator
from repro.types import UNREACHED, VERTEX_DTYPE


class Bfs1DEngine(LevelSyncEngine):
    """Level-synchronous BFS over a :class:`OneDPartition`."""

    def __init__(
        self,
        partition: OneDPartition,
        comm: Communicator,
        opts: BfsOptions | None = None,
    ) -> None:
        opts = opts or BfsOptions()
        if comm.nranks != partition.nranks:
            raise ConfigurationError(
                f"communicator has {comm.nranks} ranks but partition has {partition.nranks}"
            )
        super().__init__(comm, partition.n, opts)
        self.partition = partition
        shape_kwargs = (
            {"shape": opts.collective_shape} if opts.fold_collective == "two-phase" else {}
        )
        self._fold = get_fold(opts.fold_collective, **shape_kwargs)
        self._group = list(range(partition.nranks))
        # Sent-neighbours universe: unique vertices in each rank's edge lists.
        self._sent_universe = [
            VertexIndexMap(np.unique(partition.local(r).adjacency))
            for r in range(partition.nranks)
        ]
        self._sent_caches: list[SentCache] = []

    # ------------------------------------------------------------------ #
    # layout hooks
    # ------------------------------------------------------------------ #
    def owner_rank(self, vertex: int) -> int:
        return self.partition.dist.part_of_scalar(vertex)

    def owned_slice(self, rank: int) -> tuple[int, int]:
        return self.partition.dist.range_of(rank)

    def _reset_layout_state(self) -> None:
        self._sent_caches = [SentCache(u) for u in self._sent_universe]

    def _snapshot_layout_state(self):
        return [cache.snapshot() for cache in self._sent_caches]

    def _restore_layout_state(self, snapshot) -> None:
        for cache, sent in zip(self._sent_caches, snapshot):
            cache.restore(sent)

    # ------------------------------------------------------------------ #
    # one level (Algorithm 1, steps 7-16)
    # ------------------------------------------------------------------ #
    def _expand_level(self) -> list[np.ndarray]:
        nranks = self.comm.nranks
        offsets = self.partition.dist.offsets

        # Steps 7-10: local discovery + bucketing by owner.
        outboxes: list[dict[int, np.ndarray]] = []
        for rank in range(nranks):
            loc = self.partition.local(rank)
            raw = loc.neighbors_of_frontier(self.frontier[rank])
            neighbors = np.unique(raw)
            self.comm.charge_compute(
                rank, edges_scanned=int(raw.size), hash_lookups=int(raw.size)
            )
            if self.opts.use_sent_cache:
                self.comm.charge_compute(rank, hash_lookups=int(neighbors.size))
                neighbors = self._sent_caches[rank].filter_unsent(neighbors)
            # Owners are monotone in vertex id (block distribution), so one
            # searchsorted splits the sorted neighbour array into buckets.
            bounds = np.searchsorted(neighbors, offsets)
            outboxes.append(
                {
                    q: neighbors[bounds[q] : bounds[q + 1]]
                    for q in range(nranks)
                    if bounds[q + 1] > bounds[q]
                }
            )

        # Steps 8-13: the fold — neighbours travel to their owners.
        received = self._fold.fold(self.comm, self._group, outboxes, phase="fold")

        # Steps 14-16: label newly reached vertices.
        new_frontiers: list[np.ndarray] = []
        for rank in range(nranks):
            arrays = received[rank]
            if arrays:
                incoming = np.concatenate(arrays)
                self.comm.charge_compute(rank, hash_lookups=int(incoming.size))
                candidates = np.unique(incoming)
            else:
                candidates = np.empty(0, dtype=VERTEX_DTYPE)
            lo, _hi = self.owned_slice(rank)
            local = candidates - lo
            fresh_mask = self.owned_levels[rank][local] == UNREACHED if local.size else None
            fresh = candidates[fresh_mask] if local.size else candidates
            if fresh.size:
                self.owned_levels[rank][fresh - lo] = self.level + 1
                self.comm.charge_compute(rank, updates=int(fresh.size))
            new_frontiers.append(fresh)
        return new_frontiers
