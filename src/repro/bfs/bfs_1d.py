"""Algorithm 1: distributed breadth-first expansion with 1D partitioning.

Every rank owns a contiguous vertex block with full edge lists.  Each
level: merge the edge lists of the local frontier, send every discovered
neighbour to its owner (the fold — the only communication step of the 1D
algorithm), and label the freshly received vertices.  All ``P`` ranks take
part in the fold collective, which is exactly the scalability weakness the
2D layout attacks.

The per-level work of all P virtual ranks is executed as batched NumPy
kernels over the pooled frontier CSR: one gather over the concatenated
frontiers, one segmented unique for the per-rank neighbour sets, one
segmented pass of the pooled sent cache, and one owner bincount that
feeds the fold's CSR driver directly — numerically identical to looping
over ranks, but with per-level cost proportional to the touched data,
not to P.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottom_up import bottom_up_level_1d
from repro.bfs.level_sync import LevelSyncEngine
from repro.bfs.options import BfsOptions
from repro.bfs.sent_cache import PooledSentCache, SentCache
from repro.bfs.sieve import PooledSieve
from repro.collectives.base import get_fold
from repro.errors import ConfigurationError
from repro.partition.indexing import VertexIndexMap
from repro.partition.one_d import OneDPartition
from repro.runtime.comm import Communicator
from repro.types import VERTEX_DTYPE
from repro.utils.segmented import segmented_unique


class Bfs1DEngine(LevelSyncEngine):
    """Level-synchronous BFS over a :class:`OneDPartition`."""

    def __init__(
        self,
        partition: OneDPartition,
        comm: Communicator,
        opts: BfsOptions | None = None,
    ) -> None:
        opts = opts or BfsOptions()
        if comm.nranks != partition.nranks:
            raise ConfigurationError(
                f"communicator has {comm.nranks} ranks but partition has {partition.nranks}"
            )
        super().__init__(comm, partition.n, opts)
        self.partition = partition
        shape_kwargs = (
            {"shape": opts.collective_shape} if opts.fold_collective == "two-phase" else {}
        )
        self._fold = get_fold(opts.fold_collective, **shape_kwargs)
        self._group = list(range(partition.nranks))
        # Sent-neighbours universe: unique vertices in each rank's edge
        # lists, pooled into one flat bitset shared by every search.
        self._sent_universe = [
            VertexIndexMap(np.unique(partition.local(r).adjacency))
            for r in range(partition.nranks)
        ]
        self._sent_pool = PooledSentCache(self._sent_universe, partition.n)
        if opts.use_sieve:
            if not self._fold.supports_csr:
                raise ConfigurationError(
                    "the communication sieve requires a CSR-capable fold "
                    f"collective (union-ring), not {opts.fold_collective!r}"
                )
            # The 1D fold spans the whole machine, so every rank shadows
            # every other rank's owned block.
            self._sieve = PooledSieve(
                [self._group], np.diff(partition.dist.offsets), partition.n
            )
        # Concatenated CSR over every rank's local block (the blocks tile
        # [0, n) in rank order, so this is the global CSR re-assembled) —
        # one gather expands all P frontiers at once.
        cat_indptr = np.zeros(partition.n + 1, dtype=np.int64)
        adjacency_parts: list[np.ndarray] = []
        edge_base = 0
        for r in range(partition.nranks):
            loc = partition.local(r)
            cat_indptr[loc.vertex_lo + 1 : loc.vertex_hi + 1] = (
                loc.indptr[1:].astype(np.int64) + edge_base
            )
            adjacency_parts.append(loc.adjacency)
            edge_base += loc.adjacency.shape[0]
        self._cat_indptr = cat_indptr
        self._cat_adjacency = (
            np.concatenate(adjacency_parts)
            if adjacency_parts
            else np.empty(0, dtype=VERTEX_DTYPE)
        )

    # ------------------------------------------------------------------ #
    # layout hooks
    # ------------------------------------------------------------------ #
    def owner_rank(self, vertex: int) -> int:
        return self.partition.dist.part_of_scalar(vertex)

    def owned_slice(self, rank: int) -> tuple[int, int]:
        return self.partition.dist.range_of(rank)

    @property
    def _sent_caches(self) -> list[SentCache]:
        """Per-rank views of the pooled sent cache (compat accessor)."""
        return [self._sent_pool.view(r) for r in range(self.comm.nranks)]

    def _reset_layout_state(self) -> None:
        self._sent_pool.reset()
        if self._sieve is not None:
            self._sieve.reset()

    def _snapshot_layout_state(self):
        if self._sieve is not None:
            return self._sent_pool.snapshot(), self._sieve.snapshot()
        return self._sent_pool.snapshot()

    def _restore_layout_state(self, snapshot) -> None:
        if self._sieve is not None:
            sent, shadows = snapshot
            self._sent_pool.restore(sent)
            self._sieve.restore(shadows)
        else:
            self._sent_pool.restore(snapshot)

    def _layout_checkpoint_nbytes(self) -> np.ndarray:
        # the sent-neighbours cache travels in the buddy checkpoint as a
        # bitset over each rank's sent universe (plus the sieve's shadow
        # bitsets when it is enabled)
        nbytes = self._sent_pool.checkpoint_nbytes()
        if self._sieve is not None:
            nbytes = nbytes + self._sieve.checkpoint_nbytes()
        return nbytes

    def _expand_level_bottom_up(self) -> tuple[np.ndarray, np.ndarray]:
        return bottom_up_level_1d(self)

    # ------------------------------------------------------------------ #
    # one level (Algorithm 1, steps 7-16)
    # ------------------------------------------------------------------ #
    def _expand_level(self) -> tuple[np.ndarray, np.ndarray]:
        nranks = self.comm.nranks
        n = self.n
        obs = self.comm.obs
        offsets = self.partition.dist.offsets

        # Steps 7-10: local discovery — one CSR gather over the concatenated
        # frontiers, one segmented unique, then owner bucketing.
        discover_span = obs.begin("compute", cat="phase") if obs.enabled else None
        fsizes = np.diff(self._frontier_bounds)
        frontier_cat = self._frontier_flat
        starts = self._cat_indptr[frontier_cat]
        lengths = self._cat_indptr[frontier_cat + 1] - starts
        total = int(lengths.sum())
        if total:
            out_offsets = np.concatenate(([0], np.cumsum(lengths)))
            gather = np.arange(total, dtype=np.int64)
            gather += np.repeat(starts - out_offsets[:-1], lengths)
            raw = self._cat_adjacency[gather]
            raw_segs = np.repeat(
                np.repeat(np.arange(nranks, dtype=np.int64), fsizes), lengths
            )
        else:
            raw = np.empty(0, dtype=VERTEX_DTYPE)
            raw_segs = np.empty(0, dtype=np.int64)
        raw_sizes = np.bincount(raw_segs, minlength=nranks)
        self.comm.charge_compute_many(edges_scanned=raw_sizes, hash_lookups=raw_sizes)
        uniq_flat, uniq_bounds, _, _ = segmented_unique(raw, raw_segs, nranks, n)
        if self.opts.use_sent_cache:
            self.comm.charge_compute_many(hash_lookups=np.diff(uniq_bounds))
            send_flat, send_bounds = self._sent_pool.filter_unsent_segmented(
                uniq_flat, uniq_bounds
            )
        else:
            send_flat, send_bounds = uniq_flat, uniq_bounds
        csr_fold = self._fold.supports_csr
        if csr_fold:
            # Owners are monotone in vertex id (block distribution); the
            # fold's CSR slot for (src, dst) is src * P + dst, and
            # send_flat is already in slot order (ranks ascending, sorted
            # values → destinations ascending within each rank).
            seg = np.repeat(
                np.arange(nranks, dtype=np.int64), np.diff(send_bounds)
            )
            owner = np.searchsorted(offsets, send_flat, side="right") - 1
            csizes = np.bincount(seg * nranks + owner, minlength=nranks * nranks)
        else:
            outboxes: list[dict[int, np.ndarray]] = []
            for r in range(nranks):
                neighbors = send_flat[send_bounds[r] : send_bounds[r + 1]]
                bounds = np.searchsorted(neighbors, offsets)
                nonempty = np.flatnonzero(bounds[1:] > bounds[:-1])
                outboxes.append(
                    {int(q): neighbors[bounds[q] : bounds[q + 1]] for q in nonempty}
                )

        if discover_span is not None:
            obs.end(discover_span)

        # Steps 8-13: the fold — neighbours travel to their owners.
        with obs.span("fold", cat="phase"):
            if csr_fold:
                incoming, inc_bounds = self._fold.fold_many_csr(
                    self.comm, [self._group], csizes, send_flat, "fold",
                    sieve=self._sieve,
                )
                inc_segs = np.repeat(
                    np.arange(nranks, dtype=np.int64), np.diff(inc_bounds)
                )
            else:
                received = self._fold.fold(
                    self.comm, self._group, outboxes, phase="fold"
                )
                parts: list[np.ndarray] = []
                part_segs: list[int] = []
                for r in range(nranks):
                    for arr in received[r]:
                        if arr.size:
                            parts.append(arr)
                            part_segs.append(r)
                if parts:
                    incoming = np.concatenate(parts)
                    inc_segs = np.repeat(
                        np.array(part_segs, dtype=np.int64),
                        np.array([p.size for p in parts], dtype=np.int64),
                    )
                else:
                    incoming = np.empty(0, dtype=VERTEX_DTYPE)
                    inc_segs = np.empty(0, dtype=np.int64)

        # Steps 14-16: label newly reached vertices.
        label_span = obs.begin("compute", cat="phase") if obs.enabled else None
        result = self._label_fresh(incoming, inc_segs)
        if label_span is not None:
            obs.end(label_span)
        if self._sieve is not None:
            self._sieve_update(*result)
        return result
