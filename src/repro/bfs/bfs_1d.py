"""Algorithm 1: distributed breadth-first expansion with 1D partitioning.

Every rank owns a contiguous vertex block with full edge lists.  Each
level: merge the edge lists of the local frontier, send every discovered
neighbour to its owner (the fold — the only communication step of the 1D
algorithm), and label the freshly received vertices.  All ``P`` ranks take
part in the fold collective, which is exactly the scalability weakness the
2D layout attacks.

The per-level work of all P virtual ranks is executed as batched NumPy
kernels: one CSR gather over the concatenated frontiers, one segmented
unique for the per-rank neighbour sets, and one fresh-mask pass over the
flat level array — numerically identical to looping over ranks, but
without P Python iterations per level.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.bottom_up import bottom_up_level_1d
from repro.bfs.level_sync import LevelSyncEngine
from repro.bfs.options import BfsOptions
from repro.bfs.sent_cache import SentCache
from repro.collectives.base import get_fold
from repro.errors import ConfigurationError
from repro.partition.indexing import VertexIndexMap
from repro.partition.one_d import OneDPartition
from repro.runtime.comm import Communicator
from repro.types import UNREACHED, VERTEX_DTYPE
from repro.utils.segmented import segmented_unique


class Bfs1DEngine(LevelSyncEngine):
    """Level-synchronous BFS over a :class:`OneDPartition`."""

    def __init__(
        self,
        partition: OneDPartition,
        comm: Communicator,
        opts: BfsOptions | None = None,
    ) -> None:
        opts = opts or BfsOptions()
        if comm.nranks != partition.nranks:
            raise ConfigurationError(
                f"communicator has {comm.nranks} ranks but partition has {partition.nranks}"
            )
        super().__init__(comm, partition.n, opts)
        self.partition = partition
        shape_kwargs = (
            {"shape": opts.collective_shape} if opts.fold_collective == "two-phase" else {}
        )
        self._fold = get_fold(opts.fold_collective, **shape_kwargs)
        self._group = list(range(partition.nranks))
        # Sent-neighbours universe: unique vertices in each rank's edge lists.
        self._sent_universe = [
            VertexIndexMap(np.unique(partition.local(r).adjacency))
            for r in range(partition.nranks)
        ]
        self._sent_caches: list[SentCache] = []
        # Concatenated CSR over every rank's local block (the blocks tile
        # [0, n) in rank order, so this is the global CSR re-assembled) —
        # one gather expands all P frontiers at once.
        cat_indptr = np.zeros(partition.n + 1, dtype=np.int64)
        adjacency_parts: list[np.ndarray] = []
        edge_base = 0
        for r in range(partition.nranks):
            loc = partition.local(r)
            cat_indptr[loc.vertex_lo + 1 : loc.vertex_hi + 1] = (
                loc.indptr[1:].astype(np.int64) + edge_base
            )
            adjacency_parts.append(loc.adjacency)
            edge_base += loc.adjacency.shape[0]
        self._cat_indptr = cat_indptr
        self._cat_adjacency = (
            np.concatenate(adjacency_parts)
            if adjacency_parts
            else np.empty(0, dtype=VERTEX_DTYPE)
        )

    # ------------------------------------------------------------------ #
    # layout hooks
    # ------------------------------------------------------------------ #
    def owner_rank(self, vertex: int) -> int:
        return self.partition.dist.part_of_scalar(vertex)

    def owned_slice(self, rank: int) -> tuple[int, int]:
        return self.partition.dist.range_of(rank)

    def _reset_layout_state(self) -> None:
        self._sent_caches = [SentCache(u) for u in self._sent_universe]

    def _snapshot_layout_state(self):
        return [cache.snapshot() for cache in self._sent_caches]

    def _restore_layout_state(self, snapshot) -> None:
        for cache, sent in zip(self._sent_caches, snapshot):
            cache.restore(sent)

    def _layout_checkpoint_nbytes(self) -> np.ndarray:
        # the sent-neighbours cache travels in the buddy checkpoint as a
        # bitset over each rank's sent universe
        return np.array(
            [(len(cache) + 7) // 8 for cache in self._sent_caches], dtype=np.int64
        )

    def _expand_level_bottom_up(self) -> list[np.ndarray]:
        return bottom_up_level_1d(self)

    # ------------------------------------------------------------------ #
    # one level (Algorithm 1, steps 7-16)
    # ------------------------------------------------------------------ #
    def _expand_level(self) -> list[np.ndarray]:
        nranks = self.comm.nranks
        n = self.n
        obs = self.comm.obs
        offsets = self.partition.dist.offsets

        # Steps 7-10: local discovery — one CSR gather over the concatenated
        # frontiers, one segmented unique, then owner bucketing.
        discover_span = obs.begin("compute", cat="phase") if obs.enabled else None
        fsizes = np.array([f.size for f in self.frontier], dtype=np.int64)
        frontier_cat = np.concatenate(self.frontier)
        starts = self._cat_indptr[frontier_cat]
        lengths = self._cat_indptr[frontier_cat + 1] - starts
        total = int(lengths.sum())
        if total:
            out_offsets = np.concatenate(([0], np.cumsum(lengths)))
            gather = np.arange(total, dtype=np.int64)
            gather += np.repeat(starts - out_offsets[:-1], lengths)
            raw = self._cat_adjacency[gather]
            raw_segs = np.repeat(
                np.repeat(np.arange(nranks, dtype=np.int64), fsizes), lengths
            )
        else:
            raw = np.empty(0, dtype=VERTEX_DTYPE)
            raw_segs = np.empty(0, dtype=np.int64)
        raw_sizes = np.bincount(raw_segs, minlength=nranks)
        self.comm.charge_compute_many(edges_scanned=raw_sizes, hash_lookups=raw_sizes)
        uniq_flat, uniq_bounds, _ = segmented_unique(raw, raw_segs, nranks, n)
        per_rank = [uniq_flat[uniq_bounds[r] : uniq_bounds[r + 1]] for r in range(nranks)]
        if self.opts.use_sent_cache:
            self.comm.charge_compute_many(hash_lookups=np.diff(uniq_bounds))
            per_rank = [
                self._sent_caches[r].filter_unsent(neighbors)
                for r, neighbors in enumerate(per_rank)
            ]
        outboxes: list[dict[int, np.ndarray]] = []
        for r in range(nranks):
            neighbors = per_rank[r]
            # Owners are monotone in vertex id (block distribution), so one
            # searchsorted splits the sorted neighbour array into buckets.
            bounds = np.searchsorted(neighbors, offsets)
            nonempty = np.flatnonzero(bounds[1:] > bounds[:-1])
            outboxes.append(
                {int(q): neighbors[bounds[q] : bounds[q + 1]] for q in nonempty}
            )

        if discover_span is not None:
            obs.end(discover_span)

        # Steps 8-13: the fold — neighbours travel to their owners.
        with obs.span("fold", cat="phase"):
            received = self._fold.fold(self.comm, self._group, outboxes, phase="fold")

        # Steps 14-16: label newly reached vertices — one segmented unique
        # plus one fresh-mask pass over the flat level array.
        label_span = obs.begin("compute", cat="phase") if obs.enabled else None
        parts: list[np.ndarray] = []
        part_segs: list[int] = []
        for r in range(nranks):
            for arr in received[r]:
                if arr.size:
                    parts.append(arr)
                    part_segs.append(r)
        if parts:
            incoming = np.concatenate(parts)
            inc_segs = np.repeat(
                np.array(part_segs, dtype=np.int64),
                np.array([p.size for p in parts], dtype=np.int64),
            )
        else:
            incoming = np.empty(0, dtype=VERTEX_DTYPE)
            inc_segs = np.empty(0, dtype=np.int64)
        self.comm.charge_compute_many(
            hash_lookups=np.bincount(inc_segs, minlength=nranks)
        )
        cand_flat, cand_bounds, _ = segmented_unique(incoming, inc_segs, nranks, n)
        cand_segs = np.repeat(np.arange(nranks, dtype=np.int64), np.diff(cand_bounds))
        fresh_mask = self._levels_flat[cand_flat] == UNREACHED
        fresh_flat = cand_flat[fresh_mask]
        self._levels_flat[fresh_flat] = self.level + 1
        fresh_counts = np.bincount(cand_segs[fresh_mask], minlength=nranks)
        self.comm.charge_compute_many(updates=fresh_counts)
        fresh_bounds = np.concatenate(([0], np.cumsum(fresh_counts)))
        if label_span is not None:
            obs.end(label_span)
        return [fresh_flat[fresh_bounds[r] : fresh_bounds[r + 1]] for r in range(nranks)]
