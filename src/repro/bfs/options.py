"""Configuration of a distributed BFS run."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bfs.direction import DirectionPolicy
from repro.errors import ConfigurationError

_EXPAND_NAMES = frozenset({"direct", "ring", "two-phase", "recursive-doubling"})
_FOLD_NAMES = frozenset({"direct", "ring", "union-ring", "two-phase", "bruck"})


@dataclass(frozen=True, slots=True)
class BfsOptions:
    """Algorithmic switches of the distributed BFS.

    The defaults correspond to the paper's recommended configuration:
    sparse per-destination expand (Section 2.2), union-fold reduce-scatter
    (Section 3.2.2), and the sent-neighbours cache (Section 2.4.3).

    Parameters
    ----------
    expand_collective:
        ``"direct"`` (single-round personalized), ``"ring"`` (single
        all-gather ring), ``"two-phase"`` (Figure 3 grouped rings), or
        ``"recursive-doubling"`` (log-round Bruck all-gather baseline).
    fold_collective:
        ``"direct"`` (all-to-all), ``"ring"`` (personalized ring without
        reduction), ``"union-ring"`` (reduce-scatter with set-union),
        ``"two-phase"`` (Figure 2 grouped union rings), or ``"bruck"``
        (log-round all-to-all baseline).
    use_sent_cache:
        Keep per-rank track of neighbours already sent and never resend
        them (Section 2.4.3).
    use_sieve:
        Filter fold candidates against a sender-side shadow of each
        destination's visited set before they are encoded, so vertices
        the owner already visited in an earlier level never hit the wire
        (:mod:`repro.bfs.sieve`).  Requires a CSR-capable fold collective
        (``"union-ring"``) and is incompatible with fault injection.
        Labelled levels are byte-identical with the sieve on or off —
        only the fold traffic shrinks.
    use_expand_filter:
        With the ``direct`` expand, only send a frontier vertex to column
        peers that hold non-empty partial edge lists for it (Section 2.2).
        Ignored by forwarding collectives (ring / two-phase).
    buffer_capacity:
        Fixed message-buffer length in vertices (Section 3.1); ``None``
        means unbounded.  Oversized payloads are chunked, paying one
        latency per chunk.
    collective_shape:
        Optional explicit ``(a, b)`` subgrid shape for the two-phase
        collectives; default is the most-square factorisation.
    checkpoint:
        Level-boundary checkpoint/rollback policy under fault injection.
        ``None`` (default) enables it automatically when the attached
        fault schedule can drop messages; ``True`` forces it on;
        ``False`` disables it, turning an unrecovered message loss into a
        :class:`~repro.errors.FaultError`.
    direction:
        Per-level traversal direction policy
        (:class:`~repro.bfs.direction.DirectionPolicy`), or a bare mode
        name: ``"top-down"`` (default, the paper's algorithm),
        ``"bottom-up"``, ``"hybrid"`` (online Beamer α/β switch), or
        ``"model"`` (precomputed schedule; see
        :meth:`DirectionPolicy.model_for`).  Any policy that can choose
        bottom-up levels is incompatible with fault injection.
    """

    expand_collective: str = "direct"
    fold_collective: str = "union-ring"
    use_sent_cache: bool = True
    use_sieve: bool = False
    use_expand_filter: bool = True
    buffer_capacity: int | None = None
    collective_shape: tuple[int, int] | None = None
    checkpoint: bool | None = None
    direction: DirectionPolicy | str = "top-down"

    def __post_init__(self) -> None:
        if not isinstance(self.direction, DirectionPolicy):
            # frozen dataclass: coerce a bare mode name in place
            try:
                coerced = DirectionPolicy.coerce(self.direction)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(str(exc)) from None
            object.__setattr__(self, "direction", coerced)
        if self.expand_collective not in _EXPAND_NAMES:
            raise ConfigurationError(
                f"unknown expand collective {self.expand_collective!r}; "
                f"choose from {sorted(_EXPAND_NAMES)}"
            )
        if self.fold_collective not in _FOLD_NAMES:
            raise ConfigurationError(
                f"unknown fold collective {self.fold_collective!r}; "
                f"choose from {sorted(_FOLD_NAMES)}"
            )
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ConfigurationError(
                f"buffer_capacity must be positive or None, got {self.buffer_capacity}"
            )
