"""MS-BFS: batched multi-source traversal with bit-parallel frontiers.

The serving workload ("millions of users" querying one semantic graph)
issues many independent BFS queries against the *same* partitioned graph.
Running them one at a time repeats the per-level machinery — frontier
exchange, partial-edge-list lookup, fold, labelling — once per query.
MS-BFS (Then et al., VLDB 2015) amortizes it: up to 64 concurrent sources
share one traversal, each owning one bit of a 64-bit mask, and every
frontier entry becomes a ``(vertex, mask)`` pair.  One expand, one
discovery gather, and one fold per *batch* level serve every source at
once — a natural extension of the existing visited-bitmap machinery, with
the visited bit widened to a visited *word*.

The traversal rides the existing engines: :func:`run_ms_bfs` wraps a
constructed :class:`~repro.bfs.bfs_1d.Bfs1DEngine` or
:class:`~repro.bfs.bfs_2d.Bfs2DEngine` and reuses its immutable caches
(concatenated CSR tables, expand filters, partition geometry) and its
communicator — vertex payloads travel through the normal
:meth:`~repro.runtime.comm.Communicator.exchange` path (so wire codecs,
chunking, contention, and observability all apply), while the parallel
mask words are charged to the wire uncompressed (8 bytes per entry;
dense bitmasks are what the sparse-frontier codecs do *not* target).

Level semantics are bit-for-bit those of the sequential loop: a source's
level row after :func:`run_ms_bfs` is byte-identical to the ``levels``
array a dedicated :func:`~repro.bfs.level_sync.run_bfs` would produce —
including target-terminated runs, which retire the source's bit at the
end of the level that labels its target (exactly where the sequential
driver stops).  The test suite asserts this property across seeds,
layouts, and codecs.

Fault injection rides the same level-boundary checkpoint/replay protocol
as the sequential loop: each batch level snapshots the per-source level
rows, the per-vertex visited mask words, and the ``(vertex, mask)``
frontier, and buddy-replicates the per-rank slice of that state when
crashes are possible.  A lost chunk or a rank crash rolls the batch level
back to its entry state and re-executes it (mask-aware rollback), so
crash-spare/crash-shrink recovery and wire-drop retry work inside a
batched traversal — per-source rows stay byte-identical to fault-free
sequential runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.level_sync import LevelSyncEngine
from repro.bfs.result import QueryResult
from repro.errors import ConfigurationError, FaultError, SearchError
from repro.faults.report import FaultReport
from repro.runtime.stats import CommStats
from repro.types import LEVEL_DTYPE, UNREACHED, VERTEX_DTYPE
from repro.utils.arrays import in_sorted

#: dtype of the per-vertex source masks (one bit per batched source)
MASK_DTYPE = np.uint64

#: widest batch one traversal can carry (bits in a mask word)
MAX_BATCH = 64

__all__ = ["MAX_BATCH", "MsBfsResult", "run_ms_bfs"]


@dataclass(slots=True)
class MsBfsResult:
    """Outcome of one batched multi-source traversal.

    ``levels`` is a ``(batch, n)`` array: row ``i`` is exactly the level
    array the sequential driver would produce for ``sources[i]`` (with
    ``targets[i]`` when given).  Simulated times cover the whole batch —
    that sharing is the point.
    """

    sources: tuple[int, ...]
    targets: tuple[int | None, ...]
    levels: np.ndarray
    #: per-source level count, matching the sequential driver's ``num_levels``
    num_levels: np.ndarray
    target_levels: tuple[int | None, ...]
    #: batch levels actually executed (max over sources)
    batch_levels: int
    elapsed: float
    comm_time: float
    compute_time: float
    stats: CommStats
    #: structured fault tally when a schedule was attached (None otherwise)
    faults: FaultReport | None = None

    @property
    def batch_size(self) -> int:
        """Number of sources served by this traversal."""
        return len(self.sources)

    def levels_of(self, i: int) -> np.ndarray:
        """The level array of batched source ``i`` (a view, do not mutate)."""
        return self.levels[i]

    def query_view(self, i: int, *, digest: bool = True) -> QueryResult:
        """Streaming view of batched source ``i`` (scalars only)."""
        levels_digest = None
        if digest:
            from repro.observability.digest import levels_digest as _levels_digest

            levels_digest = _levels_digest(self.levels[i])
        row = self.levels[i]
        return QueryResult(
            source=self.sources[i],
            target=self.targets[i],
            target_level=self.target_levels[i],
            num_levels=int(self.num_levels[i]),
            num_reached=int((row != UNREACHED).sum()),
            elapsed=self.elapsed,
            batch_size=self.batch_size,
            levels_digest=levels_digest,
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"MS-BFS over {self.batch_size} sources: {self.batch_levels} batch "
            f"levels, {self.elapsed:.6f}s simulated (comm {self.comm_time:.6f}s)"
        )


def _or_reduce_segmented(
    verts: np.ndarray,
    masks: np.ndarray,
    segs: np.ndarray,
    nranks: int,
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment duplicate elimination with mask OR-merge.

    Returns ``(verts, masks, bounds)`` where segment ``r`` is
    ``verts[bounds[r]:bounds[r+1]]`` sorted ascending and each vertex's
    mask is the OR of its occurrences within the segment.
    """
    if verts.size == 0:
        bounds = np.zeros(nranks + 1, dtype=np.int64)
        return (
            np.empty(0, dtype=VERTEX_DTYPE),
            np.empty(0, dtype=MASK_DTYPE),
            bounds,
        )
    key = segs * n + verts
    order = np.argsort(key, kind="stable")
    k = key[order]
    first = np.concatenate(([True], k[1:] != k[:-1]))
    idx = np.flatnonzero(first)
    uv = verts[order][idx]
    us = segs[order][idx]
    um = np.bitwise_or.reduceat(masks[order], idx)
    counts = np.bincount(us, minlength=nranks)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return uv, um, bounds


class _MsBfsRun:
    """One batched traversal over a wrapped engine's immutable caches."""

    def __init__(
        self,
        engine: LevelSyncEngine,
        sources: list[int],
        targets: list[int | None] | None,
        max_levels: int | None,
    ) -> None:
        if not sources:
            raise SearchError("MS-BFS needs at least one source")
        if len(sources) > MAX_BATCH:
            raise ConfigurationError(
                f"MS-BFS batches carry at most {MAX_BATCH} sources (one mask "
                f"bit each), got {len(sources)}; split into waves"
            )
        n = engine.n
        for s in sources:
            if not (0 <= s < n):
                raise SearchError(f"source {s} out of range [0, {n})")
        if targets is None:
            targets = [None] * len(sources)
        if len(targets) != len(sources):
            raise SearchError(
                f"{len(targets)} targets for {len(sources)} sources"
            )
        for t in targets:
            if t is not None and not (0 <= t < n):
                raise SearchError(f"target {t} out of range [0, {n})")
        self.engine = engine
        self.comm = engine.comm
        self.n = n
        self.nranks = self.comm.nranks
        self.sources = [int(s) for s in sources]
        self.targets = [None if t is None else int(t) for t in targets]
        self.max_levels = max_levels
        self.B = len(sources)
        self.bits = np.left_shift(
            np.ones(self.B, dtype=MASK_DTYPE), np.arange(self.B, dtype=MASK_DTYPE)
        )
        self.is_2d = isinstance(engine, Bfs2DEngine)

    # ------------------------------------------------------------------ #
    # wire helpers
    # ------------------------------------------------------------------ #
    def _exchange_pairs(
        self,
        vert_outbox: dict[int, dict[int, np.ndarray]],
        mask_outbox: dict[int, dict[int, np.ndarray]],
        phase: str,
    ) -> dict[int, list[tuple[np.ndarray, np.ndarray]]]:
        """One synchronous round of ``(vertex, mask)`` pair messages.

        Vertex ids ride :meth:`Communicator.exchange` (codec-compressed,
        chunked, contention-priced, traced); the parallel mask words are
        charged as an uncompressed second round on the same links (8 bytes
        per entry) and re-paired with their vertices on arrival.
        """
        comm = self.comm
        inbox = comm.exchange(vert_outbox, phase, sync=False)
        src_l: list[int] = []
        dst_l: list[int] = []
        nbytes_l: list[int] = []
        for src, dests in mask_outbox.items():
            for dst, masks in dests.items():
                if masks.size:
                    src_l.append(src)
                    dst_l.append(dst)
                    nbytes_l.append(int(masks.size) * masks.dtype.itemsize)
        if src_l:
            src_a = np.array(src_l, dtype=np.int64)
            dst_a = np.array(dst_l, dtype=np.int64)
            nb = np.array(nbytes_l, dtype=np.int64)
            send, recv, _ = comm.network.round_times_arrays(src_a, dst_a, nb)
            comm.clock.advance_many(np.maximum(send, recv), kind="comm")
            total = int(nb.sum())
            comm.stats.record_message_bulk(0, 0, total, total)
        comm.barrier()
        paired: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        for dst, items in inbox.items():
            chunks_by_src: dict[int, list[np.ndarray]] = {}
            order: list[int] = []
            for src, chunk in items:
                if src not in chunks_by_src:
                    order.append(src)
                chunks_by_src.setdefault(src, []).append(chunk)
            out = []
            for src in order:
                chunks = chunks_by_src[src]
                verts = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                sent = vert_outbox[src][dst]
                masks = mask_outbox[src][dst]
                if verts.size != sent.size:
                    # a fault withheld chunks of this message: re-pair the
                    # surviving vertices (a sorted subset of the sorted
                    # unique send) with their mask words by position
                    masks = masks[np.searchsorted(sent, verts)]
                out.append((verts, masks))
            paired[dst] = out
        return paired

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def run(self) -> MsBfsResult:
        engine = self.engine
        comm = self.comm
        n, nranks, B = self.n, self.nranks, self.B
        obs = comm.obs
        stats = comm.stats
        clock = comm.clock

        levels = np.full((B, n), UNREACHED, dtype=LEVEL_DTYPE)
        levels[np.arange(B), self.sources] = 0
        seen = np.zeros(n, dtype=MASK_DTYPE)
        target_levels: list[int | None] = [
            0 if t is not None and t == s else None
            for s, t in zip(self.sources, self.targets)
        ]
        retired_level = np.zeros(B, dtype=np.int64)
        active = np.ones(B, dtype=bool)

        # initial frontier: each source at its owner rank
        init_verts = np.array(self.sources, dtype=VERTEX_DTYPE)
        init_masks = self.bits.copy()
        np.bitwise_or.at(seen, init_verts, init_masks)
        init_segs = np.array(
            [engine.owner_rank(s) for s in self.sources], dtype=np.int64
        )
        fr_verts, fr_masks, fr_bounds = _or_reduce_segmented(
            init_verts, init_masks, init_segs, nranks, n
        )
        frontier: list[tuple[np.ndarray, np.ndarray]] = [
            (fr_verts[fr_bounds[r]: fr_bounds[r + 1]],
             fr_masks[fr_bounds[r]: fr_bounds[r + 1]])
            for r in range(nranks)
        ]

        faults = comm.faults
        checkpointing = engine.opts.checkpoint
        if checkpointing is None:
            checkpointing = faults is not None and faults.spec.needs_checkpoint

        any_targets = any(t is not None for t in self.targets)
        run_span = (
            obs.begin("msbfs", cat="run", sources=B) if obs.enabled else None
        )
        t = 0
        while True:
            level_span = (
                obs.begin(f"level {t}", cat="level", level=t)
                if obs.enabled
                else None
            )
            comm_before = clock.max_comm_time
            compute_before = clock.max_compute_time
            fault_before = clock.max_fault_time
            if checkpointing and faults is not None and faults.spec.buddy_checkpointing:
                # buddy replication makes the batch-level snapshot
                # crash-proof: each rank streams its owned level rows,
                # visited mask words, and (vertex, mask) frontier to its
                # ring partner
                comm.replicate_checkpoint(self._checkpoint_nbytes(frontier))
            attempts_left = faults.spec.max_level_retries if faults is not None else 0
            rollbacks = 0
            replays = 0
            replay_span = None
            entry_frontier = frontier
            while True:
                snapshot = (
                    (levels.copy(), seen.copy()) if checkpointing else None
                )
                elapsed_before = clock.elapsed
                comm.begin_level(t)
                if self.is_2d:
                    frontier, new_entries = self._level_2d(
                        entry_frontier, seen, levels, t
                    )
                else:
                    frontier, new_entries = self._level_1d(
                        entry_frontier, seen, levels, t
                    )
                total_new = int(comm.allreduce_sum(new_entries.astype(np.float64)))
                if replay_span is not None:
                    obs.end(replay_span)
                    replay_span = None
                crashes = comm.consume_crashes()
                failed = comm.consume_level_failure()
                if not crashes and not failed:
                    break
                if snapshot is None:
                    raise FaultError(
                        f"batch state lost at level {t} and checkpointing is "
                        "disabled (BfsOptions.checkpoint=False)",
                        report=comm.fault_report(),
                    )
                if attempts_left <= 0:
                    raise FaultError(
                        f"batch level {t} still failing after "
                        f"{faults.spec.max_level_retries} rollbacks",
                        report=comm.fault_report(),
                    )
                attempts_left -= 1
                # the entry frontier's arrays are never mutated in place,
                # so rolling back only restores the level rows and the
                # visited mask words; the next attempt re-expands
                # entry_frontier under fresh fault draws
                if crashes:
                    replays += 1
                    with obs.span(
                        "crash-recovery",
                        cat="phase",
                        level=t,
                        ranks=[event.rank for event in crashes],
                    ):
                        stats.abort_level()
                        levels[:] = snapshot[0]
                        seen[:] = snapshot[1]
                        comm.recover_crashes(
                            crashes, self._checkpoint_nbytes(entry_frontier)
                        )
                        faults.record_replay(clock.elapsed - elapsed_before)
                    if obs.enabled:
                        replay_span = obs.begin("replay", cat="phase", level=t)
                else:
                    rollbacks += 1
                    with obs.span("fault-recovery", cat="phase", level=t):
                        stats.abort_level()
                        levels[:] = snapshot[0]
                        seen[:] = snapshot[1]
                        faults.record_rollback(clock.elapsed - elapsed_before)
            stats.end_level(
                total_new,
                comm_seconds=clock.max_comm_time - comm_before,
                compute_seconds=clock.max_compute_time - compute_before,
                fault_seconds=clock.max_fault_time - fault_before,
            )
            t += 1
            pending = [
                i
                for i in range(B)
                if active[i] and self.targets[i] is not None
            ]
            if any_targets and pending:
                # one found-check reduction covers every pending target —
                # the sequential driver pays one per query per level
                flags = np.zeros(nranks, dtype=np.float64)
                newly_found = []
                for i in pending:
                    tgt = self.targets[i]
                    if target_levels[i] is None and levels[i, tgt] != UNREACHED:
                        target_levels[i] = int(levels[i, tgt])
                    if target_levels[i] is not None:
                        flags[engine.owner_rank(tgt)] = 1.0
                        newly_found.append(i)
                comm.allreduce_flag(flags)
                if newly_found:
                    retire_mask = MASK_DTYPE(0)
                    for i in newly_found:
                        active[i] = False
                        retired_level[i] = t
                        retire_mask |= self.bits[i]
                    keep_mask = ~retire_mask
                    frontier = [
                        ((v[(m & keep_mask) != 0]), (m & keep_mask)[(m & keep_mask) != 0])
                        for v, m in frontier
                    ]
            if level_span is not None:
                obs.end(
                    level_span,
                    frontier=total_new,
                    rollbacks=rollbacks,
                    replays=replays,
                )
            if total_new == 0 or not active.any():
                break
            if self.max_levels is not None and t >= self.max_levels:
                break

        if run_span is not None:
            obs.end(run_span, levels=t, sources=B)

        # per-source level counts, matching the sequential driver
        num_levels = np.zeros(B, dtype=np.int64)
        for i in range(B):
            if target_levels[i] is not None and not active[i]:
                num_levels[i] = retired_level[i]
            else:
                row = levels[i]
                ecc = int(row.max())
                num_levels[i] = min(ecc + 1, t) if self.max_levels is None else min(
                    ecc + 1, t, self.max_levels
                )
        return MsBfsResult(
            sources=tuple(self.sources),
            targets=tuple(self.targets),
            levels=levels,
            num_levels=num_levels,
            target_levels=tuple(target_levels),
            batch_levels=t,
            elapsed=clock.elapsed,
            comm_time=clock.max_comm_time,
            compute_time=clock.max_compute_time,
            stats=stats,
            faults=comm.fault_report(),
        )

    # ------------------------------------------------------------------ #
    # level-boundary checkpointing (fault recovery)
    # ------------------------------------------------------------------ #
    def _checkpoint_nbytes(self, frontier) -> np.ndarray:
        """Per-rank byte size of the buddy-replicated batch checkpoint.

        The O(n/P) state a partner must hold to resurrect a rank inside a
        batched traversal: the owned slice of every source's level row
        (``B`` level words per vertex), the owned slice of the visited
        mask words (8 bytes per vertex), and the rank's current frontier
        as ``(vertex, mask)`` pairs.
        """
        engine = self.engine
        engine._owned_bounds()
        spans = engine._owned_spans
        frontier_sizes = np.array(
            [verts.size for verts, _ in frontier], dtype=np.int64
        )
        level_bytes = spans * (self.B * np.dtype(LEVEL_DTYPE).itemsize)
        mask_bytes = spans * np.dtype(MASK_DTYPE).itemsize
        frontier_bytes = frontier_sizes * (
            np.dtype(VERTEX_DTYPE).itemsize + np.dtype(MASK_DTYPE).itemsize
        )
        return level_bytes + mask_bytes + frontier_bytes

    # ------------------------------------------------------------------ #
    # one batch level — 2D (expand / discover / fold)
    # ------------------------------------------------------------------ #
    def _level_2d(self, frontier, seen, levels, t):
        engine = self.engine
        comm = self.comm
        nranks, n = self.nranks, self.n
        grid = engine.grid
        R = grid.rows
        obs = comm.obs

        # --- expand: frontier (vertex, mask) pairs to processor-column peers
        with obs.span("expand", cat="phase"):
            vert_out: dict[int, dict[int, np.ndarray]] = {}
            mask_out: dict[int, dict[int, np.ndarray]] = {}
            filter_cat = engine._expand_filter_cat
            for group in engine._col_groups:
                for src in group:
                    fv, fm = frontier[src]
                    if fv.size == 0:
                        continue
                    if filter_cat is not None:
                        dsts, merged, bounds = filter_cat[src]
                        if merged.size == 0:
                            continue
                        sel = in_sorted(merged, fv)
                        for k, dst in enumerate(dsts):
                            seg = merged[bounds[k]: bounds[k + 1]]
                            seg_sel = sel[bounds[k]: bounds[k + 1]]
                            verts = seg[seg_sel]
                            if verts.size:
                                pos = np.searchsorted(fv, verts)
                                vert_out.setdefault(src, {})[dst] = verts
                                mask_out.setdefault(src, {})[dst] = fm[pos]
                    else:
                        for dst in group:
                            if dst != src:
                                vert_out.setdefault(src, {})[dst] = fv
                                mask_out.setdefault(src, {})[dst] = fm
            inbox = self._exchange_pairs(vert_out, mask_out, "expand")

            inc_counts = np.zeros(nranks, dtype=np.int64)
            fbar_parts_v: list[np.ndarray] = []
            fbar_parts_m: list[np.ndarray] = []
            fbar_segs: list[np.ndarray] = []
            for r in range(nranks):
                fv, fm = frontier[r]
                if fv.size:
                    fbar_parts_v.append(fv)
                    fbar_parts_m.append(fm)
                    fbar_segs.append(np.full(fv.size, r, dtype=np.int64))
                for v, m in inbox.get(r, []):
                    if v.size:
                        inc_counts[r] += v.size
                        fbar_parts_v.append(v)
                        fbar_parts_m.append(m)
                        fbar_segs.append(np.full(v.size, r, dtype=np.int64))
            comm.charge_compute_many(hash_lookups=inc_counts)
            if fbar_parts_v:
                fb_v, fb_m, fb_bounds = _or_reduce_segmented(
                    np.concatenate(fbar_parts_v),
                    np.concatenate(fbar_parts_m),
                    np.concatenate(fbar_segs),
                    nranks,
                    n,
                )
            else:
                fb_v, fb_m, fb_bounds = _or_reduce_segmented(
                    np.empty(0, dtype=VERTEX_DTYPE),
                    np.empty(0, dtype=MASK_DTYPE),
                    np.empty(0, dtype=np.int64),
                    nranks,
                    n,
                )

        # --- discover: one keyed lookup into the concatenated column-CSR
        with obs.span("compute", cat="phase"):
            fb_sizes = np.diff(fb_bounds)
            qsegs = np.repeat(np.arange(nranks, dtype=np.int64), fb_sizes)
            qkeys = qsegs * n + fb_v
            pos = np.searchsorted(engine._col_keys, qkeys)
            pos_c = np.minimum(pos, max(engine._col_keys.size - 1, 0))
            hit = (
                engine._col_keys[pos_c] == qkeys
                if engine._col_keys.size
                else np.zeros(qkeys.shape, dtype=bool)
            )
            starts = engine._col_starts[pos_c[hit]]
            lengths = engine._col_stops[pos_c[hit]] - starts
            total = int(lengths.sum())
            if total:
                out_offsets = np.concatenate(([0], np.cumsum(lengths)))
                gather = np.arange(total, dtype=np.int64)
                gather += np.repeat(starts - out_offsets[:-1], lengths)
                raw_v = engine._rows_cat[gather]
                raw_m = np.repeat(fb_m[hit], lengths)
                raw_segs = np.repeat(qsegs[hit], lengths)
            else:
                raw_v = np.empty(0, dtype=VERTEX_DTYPE)
                raw_m = np.empty(0, dtype=MASK_DTYPE)
                raw_segs = np.empty(0, dtype=np.int64)
            raw_sizes = np.bincount(raw_segs, minlength=nranks)
            comm.charge_compute_many(
                edges_scanned=raw_sizes, hash_lookups=raw_sizes + fb_sizes
            )
            nb_v, nb_m, nb_bounds = _or_reduce_segmented(
                raw_v, raw_m, raw_segs, nranks, n
            )

            # --- bucket by processor-row member (mesh column owner blocks)
            col_bounds = engine.partition.dist.offsets[::R]
            vert_out = {}
            mask_out = {}
            own_parts: list[tuple[int, np.ndarray, np.ndarray]] = []
            for r in range(nranks):
                verts = nb_v[nb_bounds[r]: nb_bounds[r + 1]]
                masks = nb_m[nb_bounds[r]: nb_bounds[r + 1]]
                if verts.size == 0:
                    continue
                row = r // grid.cols
                bounds = np.searchsorted(verts, col_bounds)
                nonempty = np.flatnonzero(bounds[1:] > bounds[:-1])
                for m_idx in nonempty:
                    dst = grid.rank_of(row, int(m_idx))
                    v_slice = verts[bounds[m_idx]: bounds[m_idx + 1]]
                    m_slice = masks[bounds[m_idx]: bounds[m_idx + 1]]
                    if dst == r:
                        own_parts.append((r, v_slice, m_slice))
                    else:
                        vert_out.setdefault(r, {})[dst] = v_slice
                        mask_out.setdefault(r, {})[dst] = m_slice

        # --- fold: deliver across processor-rows, then label
        with obs.span("fold", cat="phase"):
            inbox = self._exchange_pairs(vert_out, mask_out, "fold")
        return self._label(inbox, own_parts, seen, levels, t)

    # ------------------------------------------------------------------ #
    # one batch level — 1D (discover / fold)
    # ------------------------------------------------------------------ #
    def _level_1d(self, frontier, seen, levels, t):
        engine = self.engine
        comm = self.comm
        nranks, n = self.nranks, self.n
        obs = comm.obs
        offsets = engine.partition.dist.offsets

        with obs.span("compute", cat="phase"):
            parts_v = [frontier[r][0] for r in range(nranks)]
            parts_m = [frontier[r][1] for r in range(nranks)]
            fsizes = np.array([p.size for p in parts_v], dtype=np.int64)
            f_v = np.concatenate(parts_v)
            f_m = np.concatenate(parts_m)
            starts = engine._cat_indptr[f_v]
            lengths = engine._cat_indptr[f_v + 1] - starts
            total = int(lengths.sum())
            if total:
                out_offsets = np.concatenate(([0], np.cumsum(lengths)))
                gather = np.arange(total, dtype=np.int64)
                gather += np.repeat(starts - out_offsets[:-1], lengths)
                raw_v = engine._cat_adjacency[gather]
                raw_m = np.repeat(f_m, lengths)
                raw_segs = np.repeat(
                    np.repeat(np.arange(nranks, dtype=np.int64), fsizes), lengths
                )
            else:
                raw_v = np.empty(0, dtype=VERTEX_DTYPE)
                raw_m = np.empty(0, dtype=MASK_DTYPE)
                raw_segs = np.empty(0, dtype=np.int64)
            raw_sizes = np.bincount(raw_segs, minlength=nranks)
            comm.charge_compute_many(edges_scanned=raw_sizes, hash_lookups=raw_sizes)
            nb_v, nb_m, nb_bounds = _or_reduce_segmented(
                raw_v, raw_m, raw_segs, nranks, n
            )

            vert_out: dict[int, dict[int, np.ndarray]] = {}
            mask_out: dict[int, dict[int, np.ndarray]] = {}
            own_parts: list[tuple[int, np.ndarray, np.ndarray]] = []
            for r in range(nranks):
                verts = nb_v[nb_bounds[r]: nb_bounds[r + 1]]
                masks = nb_m[nb_bounds[r]: nb_bounds[r + 1]]
                if verts.size == 0:
                    continue
                bounds = np.searchsorted(verts, offsets)
                nonempty = np.flatnonzero(bounds[1:] > bounds[:-1])
                for q in nonempty:
                    dst = int(q)
                    v_slice = verts[bounds[q]: bounds[q + 1]]
                    m_slice = masks[bounds[q]: bounds[q + 1]]
                    if dst == r:
                        own_parts.append((r, v_slice, m_slice))
                    else:
                        vert_out.setdefault(r, {})[dst] = v_slice
                        mask_out.setdefault(r, {})[dst] = m_slice

        with obs.span("fold", cat="phase"):
            inbox = self._exchange_pairs(vert_out, mask_out, "fold")
        return self._label(inbox, own_parts, seen, levels, t)

    # ------------------------------------------------------------------ #
    # label newly reached (vertex, bit) pairs, build the next frontier
    # ------------------------------------------------------------------ #
    def _label(self, inbox, own_parts, seen, levels, t):
        comm = self.comm
        nranks, n = self.nranks, self.n
        parts_v: list[np.ndarray] = []
        parts_m: list[np.ndarray] = []
        parts_s: list[np.ndarray] = []
        inc_counts = np.zeros(nranks, dtype=np.int64)
        for r, v, m in own_parts:
            parts_v.append(v)
            parts_m.append(m)
            parts_s.append(np.full(v.size, r, dtype=np.int64))
            inc_counts[r] += v.size
        for dst, items in inbox.items():
            for v, m in items:
                if v.size:
                    parts_v.append(v)
                    parts_m.append(m)
                    parts_s.append(np.full(v.size, dst, dtype=np.int64))
                    inc_counts[dst] += v.size
        comm.charge_compute_many(hash_lookups=inc_counts)
        if parts_v:
            cand_v, cand_m, cand_bounds = _or_reduce_segmented(
                np.concatenate(parts_v),
                np.concatenate(parts_m),
                np.concatenate(parts_s),
                nranks,
                n,
            )
        else:
            cand_v, cand_m, cand_bounds = _or_reduce_segmented(
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=MASK_DTYPE),
                np.empty(0, dtype=np.int64),
                nranks,
                n,
            )
        # freshness is evaluated against the *level-entry* visited words for
        # every rank at once (the engines' flat-array semantics), then all
        # updates apply together — duplicate candidates across ranks each
        # enter their rank's frontier, exactly as in the sequential engines
        new_m = cand_m & ~seen[cand_v]
        keep = new_m != 0
        kept_v = cand_v[keep]
        kept_m = new_m[keep]
        np.bitwise_or.at(seen, kept_v, kept_m)
        for b in range(self.B):
            sel = (kept_m >> MASK_DTYPE(b)) & MASK_DTYPE(1) != 0
            if sel.any():
                levels[b, kept_v[sel]] = t + 1
        kept_counts = np.zeros(nranks, dtype=np.int64)
        cand_segs = np.repeat(
            np.arange(nranks, dtype=np.int64), np.diff(cand_bounds)
        )
        np.add.at(kept_counts, cand_segs[keep], 1)
        comm.charge_compute_many(updates=kept_counts)
        kept_bounds = np.concatenate(([0], np.cumsum(kept_counts)))
        frontier = [
            (kept_v[kept_bounds[r]: kept_bounds[r + 1]],
             kept_m[kept_bounds[r]: kept_bounds[r + 1]])
            for r in range(nranks)
        ]
        return frontier, kept_counts


def run_ms_bfs(
    engine: LevelSyncEngine,
    sources: list[int],
    targets: list[int | None] | None = None,
    max_levels: int | None = None,
) -> MsBfsResult:
    """Run up to :data:`MAX_BATCH` sources through one shared traversal.

    ``engine`` is a constructed (and possibly
    :meth:`~repro.bfs.level_sync.LevelSyncEngine.rebind`-refreshed) 1D or
    2D engine; its immutable caches drive the batched traversal and its
    communicator carries the traffic.  ``targets[i]``, when given, stops
    source ``i`` at the end of the level that labels its target — the
    sequential driver's early-termination semantics.  Returns an
    :class:`MsBfsResult` whose per-source rows are byte-identical to
    dedicated :func:`~repro.bfs.level_sync.run_bfs` runs.
    """
    return _MsBfsRun(engine, list(sources), targets, max_levels).run()
