"""Shared scaffolding of the level-synchronized BFS loop.

Both Algorithm 1 (1D) and Algorithm 2 (2D) proceed level by level: build
the frontier, communicate, discover neighbours, communicate, label.  The
:class:`LevelSyncEngine` base class owns the loop bookkeeping (level
counter, per-level statistics, global termination reduction); subclasses
implement one level expansion.  Keeping ``step()`` public is what lets the
bi-directional driver (Section 2.3) interleave two searches.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.bfs.direction import BOTTOM_UP, TOP_DOWN, DirectionPolicy
from repro.bfs.options import BfsOptions
from repro.bfs.result import BfsResult
from repro.errors import ConfigurationError, FaultError, SearchError
from repro.observability.artifacts import collect_observability
from repro.runtime.comm import Communicator
from repro.types import LEVEL_DTYPE, UNREACHED, VERTEX_DTYPE
from repro.utils.logging import get_logger

logger = get_logger("bfs")


class LevelSyncEngine(abc.ABC):
    """A restartable level-synchronous distributed BFS over P virtual ranks."""

    def __init__(self, comm: Communicator, n: int, opts: BfsOptions) -> None:
        self.comm = comm
        self.n = int(n)
        self.opts = opts
        self.level = 0
        #: global level array indexed by vertex id (backing storage)
        self._levels_flat: np.ndarray = np.empty(0, dtype=LEVEL_DTYPE)
        #: per-rank level views over each rank's owned slice of ``_levels_flat``
        self.owned_levels: list[np.ndarray] = []
        #: per-rank current frontier (global vertex ids, sorted)
        self.frontier: list[np.ndarray] = []
        self._started = False
        #: resolved per-level direction policy (opts coerces bare names)
        self._direction_policy: DirectionPolicy = DirectionPolicy.coerce(opts.direction)
        #: direction the previous level ran (the policy's hysteresis input)
        self._direction = TOP_DOWN
        #: global count of still-unreached vertices (a policy input; every
        #: backend derives the same value from allreduced frontier totals)
        self._unvisited = 0

    # ------------------------------------------------------------------ #
    # abstract per-layout hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def owner_rank(self, vertex: int) -> int:
        """Owning rank of a single vertex."""

    @abc.abstractmethod
    def owned_slice(self, rank: int) -> tuple[int, int]:
        """Global vertex range ``[lo, hi)`` owned by ``rank``."""

    @abc.abstractmethod
    def _expand_level(self) -> list[np.ndarray]:
        """Run one level's communication + discovery.

        Returns, per rank, the sorted duplicate-free array of *newly
        labelled* owned vertices (the next frontier).  Implementations must
        update ``owned_levels`` themselves and charge compute/comm costs.
        """

    def _expand_level_bottom_up(self) -> list[np.ndarray]:
        """Run one *bottom-up* level (unvisited vertices probe the frontier).

        Same contract as :meth:`_expand_level`.  Layouts that support
        direction-optimizing traversal override this (see
        :mod:`repro.bfs.bottom_up`); the default refuses so a policy that
        reaches bottom-up on an unsupported engine fails loudly.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not implement bottom-up levels; "
            f"use direction='top-down'"
        )

    @abc.abstractmethod
    def _reset_layout_state(self) -> None:
        """Clear layout-specific per-run state (e.g. sent caches)."""

    def _snapshot_layout_state(self):
        """Capture layout-specific mutable state for a level checkpoint.

        Engines with per-run caches (the sent-neighbours cache) override
        this together with :meth:`_restore_layout_state`; the default
        carries nothing.
        """
        return None

    def _restore_layout_state(self, snapshot) -> None:
        """Reinstate state captured by :meth:`_snapshot_layout_state`."""

    # ------------------------------------------------------------------ #
    # re-entrant serving
    # ------------------------------------------------------------------ #
    def rebind(self, comm: Communicator) -> None:
        """Attach a fresh communicator for the next search.

        Everything an engine builds at construction (partition views,
        concatenated CSR tables, expand filters) depends only on the
        *immutable* partition, so a long-lived engine can serve many
        queries by rebinding a fresh communicator per query — each run
        then gets independent clocks and statistics without paying the
        construction cost again.  The engine's in-flight search state is
        invalidated: call :meth:`start` before :meth:`step`.
        """
        if comm.nranks != self.comm.nranks:
            raise ConfigurationError(
                f"communicator has {comm.nranks} ranks but engine was built "
                f"for {self.comm.nranks}"
            )
        if getattr(comm, "grid", None) != self.comm.grid:
            raise ConfigurationError(
                f"communicator grid {comm.grid} != engine grid {self.comm.grid}"
            )
        self.comm = comm
        self._started = False

    # ------------------------------------------------------------------ #
    # loop
    # ------------------------------------------------------------------ #
    def start(self, source: int) -> None:
        """Initialise a new search from ``source`` (Algorithm 1/2, step 1)."""
        if not (0 <= source < self.n):
            raise SearchError(f"source {source} out of range [0, {self.n})")
        nranks = self.comm.nranks
        # One flat global array; each rank's owned_levels entry is a view of
        # its owned slice, so per-rank writes and whole-search reads (the
        # batched kernels, assemble_levels) share the same storage.
        self._levels_flat = np.full(self.n, UNREACHED, dtype=LEVEL_DTYPE)
        self.owned_levels = []
        self.frontier = []
        for rank in range(nranks):
            lo, hi = self.owned_slice(rank)
            self.owned_levels.append(self._levels_flat[lo:hi])
            self.frontier.append(np.empty(0, dtype=VERTEX_DTYPE))
        owner = self.owner_rank(source)
        self._levels_flat[source] = 0
        self.frontier[owner] = np.array([source], dtype=VERTEX_DTYPE)
        self.level = 0
        if self._direction_policy.may_go_bottom_up and self.comm.faults is not None:
            # Bottom-up levels charge bitmap broadcasts outside the
            # droppable-message path, so the fault schedule cannot touch
            # them (the MS-BFS restriction, for the same reason).
            raise ConfigurationError(
                "direction-optimizing BFS does not support fault injection; "
                "use direction='top-down' with faults"
            )
        self._direction = TOP_DOWN
        self._unvisited = self.n - 1
        self._reset_layout_state()
        self._started = True

    def step(self) -> int:
        """Run one level expansion; returns the global new-frontier size.

        A return of 0 means the search has terminated (steps 4-6 of the
        algorithms: every rank's frontier is empty).

        Under fault injection with checkpointing enabled, a level in
        which a message chunk was lost for good (retry budget exhausted)
        is rolled back to its entry state and re-executed — the wasted
        simulated time stays on the clocks and is tallied in the fault
        report.  The re-execution draws fresh fault decisions, so it can
        (and eventually will) succeed.

        Under crash injection the level entry additionally replicates
        every rank's checkpoint to its buddy
        (:meth:`~repro.runtime.comm.Communicator.replicate_checkpoint`);
        a crash detected during the level triggers the failover protocol
        (spare takeover or shrink absorption) and a replay of the level
        from that checkpoint.
        """
        if not self._started:
            raise SearchError("engine not started; call start(source) first")
        stats = self.comm.stats
        clock = self.comm.clock
        obs = self.comm.obs
        level_span = (
            obs.begin(f"level {self.level}", cat="level", level=self.level)
            if obs.enabled
            else None
        )
        comm_before = clock.max_comm_time
        compute_before = clock.max_compute_time
        fault_before = clock.max_fault_time
        # Direction decision: global counts only (frontier size, unvisited,
        # n), so the SPMD workers reach the identical choice from their
        # allreduced totals.  Charge-free by design — a pure top-down
        # policy leaves every simulated clock bit-identical to a build
        # without direction optimization.
        frontier_total = sum(f.size for f in self.frontier)
        direction = self._direction_policy.decide(
            self.level, frontier_total, self._unvisited, self.n, self._direction
        )
        if direction != self._direction and obs.enabled:
            with obs.span(
                "direction-switch",
                cat="phase",
                level=self.level,
                frm=self._direction,
                to=direction,
            ):
                pass
        faults = self.comm.faults
        checkpointing = self.opts.checkpoint
        if checkpointing is None:
            checkpointing = faults is not None and faults.spec.needs_checkpoint
        if checkpointing and faults is not None and faults.spec.buddy_checkpointing:
            # buddy replication makes the level-entry snapshot crash-proof:
            # each rank's O(n/P) state streams to its ring partner
            self.comm.replicate_checkpoint(self._checkpoint_nbytes())
        attempts_left = faults.spec.max_level_retries if faults is not None else 0
        rollbacks = 0
        replays = 0
        replay_span = None
        while True:
            snapshot = self._checkpoint() if checkpointing else None
            elapsed_before = clock.elapsed
            self.comm.begin_level(self.level)
            if direction == BOTTOM_UP:
                new_frontiers = self._expand_level_bottom_up()
            else:
                new_frontiers = self._expand_level()
            sizes = np.array([f.size for f in new_frontiers], dtype=np.float64)
            total_new = int(self.comm.allreduce_sum(sizes))
            if replay_span is not None:
                obs.end(replay_span)
                replay_span = None
            crashes = self.comm.consume_crashes()
            failed = self.comm.consume_level_failure()
            if not crashes and not failed:
                break
            if snapshot is None:
                raise FaultError(
                    f"state lost at level {self.level} and checkpointing is "
                    "disabled (BfsOptions.checkpoint=False)",
                    report=self.comm.fault_report(),
                )
            if attempts_left <= 0:
                raise FaultError(
                    f"level {self.level} still failing after "
                    f"{faults.spec.max_level_retries} rollbacks",
                    report=self.comm.fault_report(),
                )
            attempts_left -= 1
            if crashes:
                replays += 1
                with obs.span(
                    "crash-recovery",
                    cat="phase",
                    level=self.level,
                    ranks=[event.rank for event in crashes],
                ):
                    stats.abort_level()
                    self._restore(snapshot)
                    self.comm.recover_crashes(crashes, self._checkpoint_nbytes())
                    faults.record_replay(clock.elapsed - elapsed_before)
                if obs.enabled:
                    replay_span = obs.begin("replay", cat="phase", level=self.level)
                logger.debug(
                    "level %d replayed after rank crash(es) %s",
                    self.level,
                    [event.rank for event in crashes],
                )
            else:
                rollbacks += 1
                with obs.span("fault-recovery", cat="phase", level=self.level):
                    stats.abort_level()
                    self._restore(snapshot)
                    faults.record_rollback(clock.elapsed - elapsed_before)
                logger.debug(
                    "level %d rolled back after an unrecovered loss", self.level
                )
        self.frontier = new_frontiers
        self._direction = direction
        self._unvisited -= total_new
        level_stats = stats.end_level(
            total_new,
            comm_seconds=clock.max_comm_time - comm_before,
            compute_seconds=clock.max_compute_time - compute_before,
            fault_seconds=clock.max_fault_time - fault_before,
            direction=direction,
        )
        if level_span is not None:
            obs.end(level_span, frontier=total_new, rollbacks=rollbacks, replays=replays)
        logger.debug(
            "level %d: frontier=%d delivered=%d messages=%d",
            self.level,
            total_new,
            level_stats.total_received,
            level_stats.messages,
        )
        self.level += 1
        return total_new

    # ------------------------------------------------------------------ #
    # level-boundary checkpointing (fault recovery)
    # ------------------------------------------------------------------ #
    def _checkpoint_nbytes(self) -> np.ndarray:
        """Per-rank byte size of the buddy-replicated checkpoint.

        The O(n/P) state a partner must hold to resurrect a rank: the
        owned level slice (one level word per vertex), the current
        frontier (vertex ids), a visited bitmap over the owned span, and
        whatever layout-specific cache the engine carries (the
        sent-neighbours cache, via :meth:`_layout_checkpoint_nbytes`).
        """
        nranks = self.comm.nranks
        spans = np.empty(nranks, dtype=np.int64)
        for rank in range(nranks):
            lo, hi = self.owned_slice(rank)
            spans[rank] = hi - lo
        frontier_sizes = np.array([f.size for f in self.frontier], dtype=np.int64)
        levels_bytes = spans * self._levels_flat.dtype.itemsize
        frontier_bytes = frontier_sizes * np.dtype(VERTEX_DTYPE).itemsize
        bitmap_bytes = (spans + 7) // 8
        return (
            levels_bytes + frontier_bytes + bitmap_bytes
            + self._layout_checkpoint_nbytes()
        )

    def _layout_checkpoint_nbytes(self) -> np.ndarray | int:
        """Layout-specific extra checkpoint bytes per rank (default none)."""
        return 0

    def _checkpoint(self):
        """Snapshot every mutable per-search structure at a level boundary."""
        return (
            self._levels_flat.copy(),
            [f.copy() for f in self.frontier],
            self._snapshot_layout_state(),
        )

    def _restore(self, snapshot) -> None:
        """Roll the search back to a :meth:`_checkpoint` snapshot.

        The flat level array is restored *in place* so the per-rank
        ``owned_levels`` views stay valid.
        """
        levels_flat, frontier, layout = snapshot
        self._levels_flat[:] = levels_flat
        self.frontier = frontier
        self._restore_layout_state(layout)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def assemble_levels(self) -> np.ndarray:
        """Gather the distributed level arrays into one global array."""
        return self._levels_flat.copy()

    def level_of(self, vertex: int) -> int:
        """Current label of ``vertex`` (``UNREACHED`` if not labelled yet)."""
        owner = self.owner_rank(vertex)
        lo, _ = self.owned_slice(owner)
        return int(self.owned_levels[owner][vertex - lo])


def run_bfs(
    engine: LevelSyncEngine,
    source: int,
    target: int | None = None,
    max_levels: int | None = None,
) -> BfsResult:
    """Run ``engine`` from ``source`` until exhaustion, target hit, or level cap.

    With a ``target``, every level pays one extra flag-allreduce (the
    found-check a real implementation performs); the search stops at the
    end of the level that labels the target — the worst-case unreachable
    target of Figure 6 is simply a target in another component.
    """
    if target is not None and not (0 <= target < engine.n):
        raise SearchError(f"target {target} out of range [0, {engine.n})")
    obs = engine.comm.obs
    run_span = (
        obs.begin("bfs", cat="run", source=source, target=target)
        if obs.enabled
        else None
    )
    engine.start(source)
    target_level: int | None = 0 if target == source else None
    while True:
        new_vertices = engine.step()
        if target is not None and target_level is None:
            flags = np.zeros(engine.comm.nranks)
            flags[engine.owner_rank(target)] = float(engine.level_of(target) != UNREACHED)
            if engine.comm.allreduce_flag(flags):
                target_level = engine.level_of(target)
        if new_vertices == 0:
            break
        if target_level is not None:
            break
        if max_levels is not None and engine.level >= max_levels:
            break
    if run_span is not None:
        obs.end(run_span, levels=engine.level)
    clock = engine.comm.clock
    return BfsResult(
        source=source,
        levels=engine.assemble_levels(),
        num_levels=engine.level,
        elapsed=clock.elapsed,
        comm_time=clock.max_comm_time,
        compute_time=clock.max_compute_time,
        stats=engine.comm.stats,
        target=target,
        target_level=target_level,
        faults=engine.comm.fault_report(),
        observability=collect_observability(engine.comm),
    )
