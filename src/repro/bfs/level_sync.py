"""Shared scaffolding of the level-synchronized BFS loop.

Both Algorithm 1 (1D) and Algorithm 2 (2D) proceed level by level: build
the frontier, communicate, discover neighbours, communicate, label.  The
:class:`LevelSyncEngine` base class owns the loop bookkeeping (level
counter, per-level statistics, global termination reduction); subclasses
implement one level expansion.  Keeping ``step()`` public is what lets the
bi-directional driver (Section 2.3) interleave two searches.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.bfs.direction import BOTTOM_UP, TOP_DOWN, DirectionPolicy
from repro.bfs.options import BfsOptions
from repro.bfs.result import BfsResult
from repro.errors import ConfigurationError, FaultError, SearchError
from repro.observability.artifacts import collect_observability
from repro.runtime.comm import Communicator
from repro.types import LEVEL_DTYPE, UNREACHED, VERTEX_DTYPE
from repro.utils.logging import get_logger
from repro.utils.segmented import segmented_unique

logger = get_logger("bfs")


class LevelSyncEngine(abc.ABC):
    """A restartable level-synchronous distributed BFS over P virtual ranks."""

    def __init__(self, comm: Communicator, n: int, opts: BfsOptions) -> None:
        self.comm = comm
        self.n = int(n)
        self.opts = opts
        self.level = 0
        #: global level array indexed by vertex id (backing storage)
        self._levels_flat: np.ndarray = np.empty(0, dtype=LEVEL_DTYPE)
        #: pooled per-rank frontier: sorted global vertex ids of rank ``r``
        #: are ``_frontier_flat[_frontier_bounds[r]:_frontier_bounds[r+1]]``.
        #: One flat array + one bounds vector instead of P Python lists —
        #: per-level bookkeeping is NumPy ops over the pool, never a
        #: Python iteration of all P ranks.
        self._frontier_flat: np.ndarray = np.empty(0, dtype=VERTEX_DTYPE)
        self._frontier_bounds: np.ndarray = np.zeros(
            comm.nranks + 1, dtype=np.int64
        )
        #: pooled owned-slice spans (``_owned_lo[r]``, ``_owned_hi[r]``);
        #: static for the engine's lifetime, built once on first start()
        self._owned_lo: np.ndarray | None = None
        self._owned_hi: np.ndarray | None = None
        self._owned_spans: np.ndarray | None = None
        self._started = False
        #: communication sieve (``repro.bfs.sieve``): a layout engine that
        #: supports it installs a PooledSieve here when opts.use_sieve
        self._sieve = None
        #: resolved per-level direction policy (opts coerces bare names)
        self._direction_policy: DirectionPolicy = DirectionPolicy.coerce(opts.direction)
        #: direction the previous level ran (the policy's hysteresis input)
        self._direction = TOP_DOWN
        #: global count of still-unreached vertices (a policy input; every
        #: backend derives the same value from allreduced frontier totals)
        self._unvisited = 0

    # ------------------------------------------------------------------ #
    # abstract per-layout hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def owner_rank(self, vertex: int) -> int:
        """Owning rank of a single vertex."""

    @abc.abstractmethod
    def owned_slice(self, rank: int) -> tuple[int, int]:
        """Global vertex range ``[lo, hi)`` owned by ``rank``."""

    @abc.abstractmethod
    def _expand_level(self) -> tuple[np.ndarray, np.ndarray]:
        """Run one level's communication + discovery.

        Returns the next frontier as pooled CSR ``(flat, bounds)``: rank
        ``r``'s sorted duplicate-free newly labelled vertices are
        ``flat[bounds[r]:bounds[r+1]]``.  Implementations must write the
        new labels into ``_levels_flat`` themselves and charge
        compute/comm costs.
        """

    def _expand_level_bottom_up(self) -> tuple[np.ndarray, np.ndarray]:
        """Run one *bottom-up* level (unvisited vertices probe the frontier).

        Same contract as :meth:`_expand_level`.  Layouts that support
        direction-optimizing traversal override this (see
        :mod:`repro.bfs.bottom_up`); the default refuses so a policy that
        reaches bottom-up on an unsupported engine fails loudly.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not implement bottom-up levels; "
            f"use direction='top-down'"
        )

    @abc.abstractmethod
    def _reset_layout_state(self) -> None:
        """Clear layout-specific per-run state (e.g. sent caches)."""

    def _snapshot_layout_state(self):
        """Capture layout-specific mutable state for a level checkpoint.

        Engines with per-run caches (the sent-neighbours cache) override
        this together with :meth:`_restore_layout_state`; the default
        carries nothing.
        """
        return None

    def _restore_layout_state(self, snapshot) -> None:
        """Reinstate state captured by :meth:`_snapshot_layout_state`."""

    # ------------------------------------------------------------------ #
    # pooled per-rank state
    # ------------------------------------------------------------------ #
    @property
    def frontier(self) -> list[np.ndarray]:
        """Per-rank frontier views over the pooled CSR storage.

        Compatibility accessor: materialises P views, so hot paths should
        read ``_frontier_flat`` / ``_frontier_bounds`` directly.
        """
        bounds = self._frontier_bounds
        flat = self._frontier_flat
        return [
            flat[bounds[r] : bounds[r + 1]] for r in range(self.comm.nranks)
        ]

    @frontier.setter
    def frontier(self, parts: list[np.ndarray]) -> None:
        sizes = np.array([p.size for p in parts], dtype=np.int64)
        self._frontier_bounds = np.concatenate(([0], np.cumsum(sizes)))
        self._frontier_flat = (
            np.concatenate(parts) if parts else np.empty(0, dtype=VERTEX_DTYPE)
        ).astype(VERTEX_DTYPE, copy=False)

    @property
    def owned_levels(self) -> list[np.ndarray]:
        """Per-rank level views over each rank's owned slice (compat)."""
        lo, hi = self._owned_bounds()
        return [
            self._levels_flat[lo[r] : hi[r]] for r in range(self.comm.nranks)
        ]

    def _owned_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Pooled owned-slice bounds, computed once per engine.

        The partition is immutable, so the per-rank ``owned_slice`` spans
        are static: one pass at first use replaces the per-call Python
        rebuild the checkpoint sizing used to pay.
        """
        if self._owned_lo is None:
            nranks = self.comm.nranks
            lo = np.empty(nranks, dtype=np.int64)
            hi = np.empty(nranks, dtype=np.int64)
            for rank in range(nranks):
                lo[rank], hi[rank] = self.owned_slice(rank)
            self._owned_lo, self._owned_hi = lo, hi
            self._owned_spans = hi - lo
        return self._owned_lo, self._owned_hi

    def _label_fresh(
        self, incoming: np.ndarray, inc_segs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Owner-side labelling shared by the fold epilogues.

        ``incoming`` holds every delivered candidate vertex, tagged by
        owner rank in ``inc_segs``.  Charges the per-owner hash probes,
        dedups per owner, labels the still-unreached vertices with
        ``level + 1``, charges the updates, and returns the new frontier
        as pooled CSR ``(flat, bounds)``.
        """
        nranks = self.comm.nranks
        self.comm.charge_compute_many(
            hash_lookups=np.bincount(inc_segs, minlength=nranks)
        )
        cand_flat, cand_bounds, _, _ = segmented_unique(
            incoming, inc_segs, nranks, self.n
        )
        cand_segs = np.repeat(
            np.arange(nranks, dtype=np.int64), np.diff(cand_bounds)
        )
        fresh_mask = self._levels_flat[cand_flat] == UNREACHED
        fresh_flat = cand_flat[fresh_mask]
        self._levels_flat[fresh_flat] = self.level + 1
        fresh_counts = np.bincount(cand_segs[fresh_mask], minlength=nranks)
        self.comm.charge_compute_many(updates=fresh_counts)
        fresh_bounds = np.concatenate(([0], np.cumsum(fresh_counts)))
        return fresh_flat, fresh_bounds

    def _sieve_update(
        self, fresh_flat: np.ndarray, fresh_bounds: np.ndarray
    ) -> None:
        """End-of-level sieve maintenance (top-down levels only).

        Every rank with freshly labelled vertices broadcasts a bitmap
        summary of them to its fold-group peers, who mark their shadows;
        next level's fold candidates for those vertices never reach the
        wire.  The broadcast pays real network time and bytes (phase
        ``"sieve"``) and the shadow marking pays per-rank update work, so
        the sieve's cost stays on the books next to its savings.
        """
        sieve = self._sieve
        obs = self.comm.obs
        span = obs.begin("sieve", cat="phase") if obs.enabled else None
        src, dst, nbytes = sieve.summary_messages(np.diff(fresh_bounds))
        self.comm.exchange_summaries(src, dst, nbytes)
        marks = sieve.observe_segmented(fresh_flat, fresh_bounds)
        self.comm.charge_compute_many(updates=marks)
        if span is not None:
            obs.end(span)

    # ------------------------------------------------------------------ #
    # re-entrant serving
    # ------------------------------------------------------------------ #
    def rebind(self, comm: Communicator) -> None:
        """Attach a fresh communicator for the next search.

        Everything an engine builds at construction (partition views,
        concatenated CSR tables, expand filters) depends only on the
        *immutable* partition, so a long-lived engine can serve many
        queries by rebinding a fresh communicator per query — each run
        then gets independent clocks and statistics without paying the
        construction cost again.  The engine's in-flight search state is
        invalidated: call :meth:`start` before :meth:`step`.
        """
        if comm.nranks != self.comm.nranks:
            raise ConfigurationError(
                f"communicator has {comm.nranks} ranks but engine was built "
                f"for {self.comm.nranks}"
            )
        if getattr(comm, "grid", None) != self.comm.grid:
            raise ConfigurationError(
                f"communicator grid {comm.grid} != engine grid {self.comm.grid}"
            )
        self.comm = comm
        self._started = False

    # ------------------------------------------------------------------ #
    # loop
    # ------------------------------------------------------------------ #
    def start(self, source: int) -> None:
        """Initialise a new search from ``source`` (Algorithm 1/2, step 1)."""
        if not (0 <= source < self.n):
            raise SearchError(f"source {source} out of range [0, {self.n})")
        nranks = self.comm.nranks
        # One flat global level array plus the pooled frontier CSR: a new
        # search allocates O(1) arrays, never P per-rank objects — the
        # session server runs many queries over one engine, and only the
        # source's rank has a non-empty frontier at level 0.
        self._levels_flat = np.full(self.n, UNREACHED, dtype=LEVEL_DTYPE)
        owner = self.owner_rank(source)
        self._levels_flat[source] = 0
        bounds = np.zeros(nranks + 1, dtype=np.int64)
        bounds[owner + 1 :] = 1
        self._frontier_flat = np.array([source], dtype=VERTEX_DTYPE)
        self._frontier_bounds = bounds
        self.level = 0
        if self._direction_policy.may_go_bottom_up and self.comm.faults is not None:
            # Bottom-up levels charge bitmap broadcasts outside the
            # droppable-message path, so the fault schedule cannot touch
            # them.
            raise ConfigurationError(
                "direction-optimizing BFS does not support fault injection; "
                "use direction='top-down' with faults"
            )
        self._direction = TOP_DOWN
        self._unvisited = self.n - 1
        self._reset_layout_state()
        self._started = True

    def step(self) -> int:
        """Run one level expansion; returns the global new-frontier size.

        A return of 0 means the search has terminated (steps 4-6 of the
        algorithms: every rank's frontier is empty).

        Under fault injection with checkpointing enabled, a level in
        which a message chunk was lost for good (retry budget exhausted)
        is rolled back to its entry state and re-executed — the wasted
        simulated time stays on the clocks and is tallied in the fault
        report.  The re-execution draws fresh fault decisions, so it can
        (and eventually will) succeed.

        Under crash injection the level entry additionally replicates
        every rank's checkpoint to its buddy
        (:meth:`~repro.runtime.comm.Communicator.replicate_checkpoint`);
        a crash detected during the level triggers the failover protocol
        (spare takeover or shrink absorption) and a replay of the level
        from that checkpoint.
        """
        if not self._started:
            raise SearchError("engine not started; call start(source) first")
        stats = self.comm.stats
        clock = self.comm.clock
        obs = self.comm.obs
        level_span = (
            obs.begin(f"level {self.level}", cat="level", level=self.level)
            if obs.enabled
            else None
        )
        comm_before = clock.max_comm_time
        compute_before = clock.max_compute_time
        fault_before = clock.max_fault_time
        # Direction decision: global counts only (frontier size, unvisited,
        # n), so the SPMD workers reach the identical choice from their
        # allreduced totals.  Charge-free by design — a pure top-down
        # policy leaves every simulated clock bit-identical to a build
        # without direction optimization.
        frontier_total = int(self._frontier_bounds[-1])
        direction = self._direction_policy.decide(
            self.level, frontier_total, self._unvisited, self.n, self._direction
        )
        if direction != self._direction and obs.enabled:
            with obs.span(
                "direction-switch",
                cat="phase",
                level=self.level,
                frm=self._direction,
                to=direction,
            ):
                pass
        faults = self.comm.faults
        checkpointing = self.opts.checkpoint
        if checkpointing is None:
            checkpointing = faults is not None and faults.spec.needs_checkpoint
        if checkpointing and faults is not None and faults.spec.buddy_checkpointing:
            # buddy replication makes the level-entry snapshot crash-proof:
            # each rank's O(n/P) state streams to its ring partner
            self.comm.replicate_checkpoint(self._checkpoint_nbytes())
        attempts_left = faults.spec.max_level_retries if faults is not None else 0
        rollbacks = 0
        replays = 0
        replay_span = None
        while True:
            snapshot = self._checkpoint() if checkpointing else None
            elapsed_before = clock.elapsed
            self.comm.begin_level(self.level)
            if direction == BOTTOM_UP:
                new_flat, new_bounds = self._expand_level_bottom_up()
            else:
                new_flat, new_bounds = self._expand_level()
            sizes = np.diff(new_bounds).astype(np.float64)
            total_new = int(self.comm.allreduce_sum(sizes))
            if replay_span is not None:
                obs.end(replay_span)
                replay_span = None
            crashes = self.comm.consume_crashes()
            failed = self.comm.consume_level_failure()
            if not crashes and not failed:
                break
            if snapshot is None:
                raise FaultError(
                    f"state lost at level {self.level} and checkpointing is "
                    "disabled (BfsOptions.checkpoint=False)",
                    report=self.comm.fault_report(),
                )
            if attempts_left <= 0:
                raise FaultError(
                    f"level {self.level} still failing after "
                    f"{faults.spec.max_level_retries} rollbacks",
                    report=self.comm.fault_report(),
                )
            attempts_left -= 1
            if crashes:
                replays += 1
                with obs.span(
                    "crash-recovery",
                    cat="phase",
                    level=self.level,
                    ranks=[event.rank for event in crashes],
                ):
                    stats.abort_level()
                    self._restore(snapshot)
                    self.comm.recover_crashes(crashes, self._checkpoint_nbytes())
                    faults.record_replay(clock.elapsed - elapsed_before)
                if obs.enabled:
                    replay_span = obs.begin("replay", cat="phase", level=self.level)
                logger.debug(
                    "level %d replayed after rank crash(es) %s",
                    self.level,
                    [event.rank for event in crashes],
                )
            else:
                rollbacks += 1
                with obs.span("fault-recovery", cat="phase", level=self.level):
                    stats.abort_level()
                    self._restore(snapshot)
                    faults.record_rollback(clock.elapsed - elapsed_before)
                logger.debug(
                    "level %d rolled back after an unrecovered loss", self.level
                )
        self._frontier_flat = new_flat
        self._frontier_bounds = new_bounds
        self._direction = direction
        self._unvisited -= total_new
        level_stats = stats.end_level(
            total_new,
            comm_seconds=clock.max_comm_time - comm_before,
            compute_seconds=clock.max_compute_time - compute_before,
            fault_seconds=clock.max_fault_time - fault_before,
            direction=direction,
        )
        if level_span is not None:
            obs.end(level_span, frontier=total_new, rollbacks=rollbacks, replays=replays)
        logger.debug(
            "level %d: frontier=%d delivered=%d messages=%d",
            self.level,
            total_new,
            level_stats.total_received,
            level_stats.messages,
        )
        self.level += 1
        return total_new

    # ------------------------------------------------------------------ #
    # level-boundary checkpointing (fault recovery)
    # ------------------------------------------------------------------ #
    def _checkpoint_nbytes(self) -> np.ndarray:
        """Per-rank byte size of the buddy-replicated checkpoint.

        The O(n/P) state a partner must hold to resurrect a rank: the
        owned level slice (one level word per vertex), the current
        frontier (vertex ids), a visited bitmap over the owned span, and
        whatever layout-specific cache the engine carries (the
        sent-neighbours cache, via :meth:`_layout_checkpoint_nbytes`).
        """
        self._owned_bounds()
        spans = self._owned_spans
        frontier_sizes = np.diff(self._frontier_bounds)
        levels_bytes = spans * self._levels_flat.dtype.itemsize
        frontier_bytes = frontier_sizes * np.dtype(VERTEX_DTYPE).itemsize
        bitmap_bytes = (spans + 7) // 8
        return (
            levels_bytes + frontier_bytes + bitmap_bytes
            + self._layout_checkpoint_nbytes()
        )

    def _layout_checkpoint_nbytes(self) -> np.ndarray | int:
        """Layout-specific extra checkpoint bytes per rank (default none)."""
        return 0

    def _checkpoint(self):
        """Snapshot every mutable per-search structure at a level boundary."""
        return (
            self._levels_flat.copy(),
            self._frontier_flat.copy(),
            self._frontier_bounds.copy(),
            self._snapshot_layout_state(),
        )

    def _restore(self, snapshot) -> None:
        """Roll the search back to a :meth:`_checkpoint` snapshot.

        The flat level array is restored *in place* so any outstanding
        ``owned_levels`` views stay valid.
        """
        levels_flat, frontier_flat, frontier_bounds, layout = snapshot
        self._levels_flat[:] = levels_flat
        self._frontier_flat = frontier_flat
        self._frontier_bounds = frontier_bounds
        self._restore_layout_state(layout)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def assemble_levels(self) -> np.ndarray:
        """Gather the distributed level arrays into one global array."""
        return self._levels_flat.copy()

    def level_of(self, vertex: int) -> int:
        """Current label of ``vertex`` (``UNREACHED`` if not labelled yet)."""
        return int(self._levels_flat[vertex])


def run_bfs(
    engine: LevelSyncEngine,
    source: int,
    target: int | None = None,
    max_levels: int | None = None,
) -> BfsResult:
    """Run ``engine`` from ``source`` until exhaustion, target hit, or level cap.

    With a ``target``, every level pays one extra flag-allreduce (the
    found-check a real implementation performs); the search stops at the
    end of the level that labels the target — the worst-case unreachable
    target of Figure 6 is simply a target in another component.
    """
    if target is not None and not (0 <= target < engine.n):
        raise SearchError(f"target {target} out of range [0, {engine.n})")
    obs = engine.comm.obs
    run_span = (
        obs.begin("bfs", cat="run", source=source, target=target)
        if obs.enabled
        else None
    )
    engine.start(source)
    target_level: int | None = 0 if target == source else None
    while True:
        new_vertices = engine.step()
        if target is not None and target_level is None:
            flags = np.zeros(engine.comm.nranks)
            flags[engine.owner_rank(target)] = float(engine.level_of(target) != UNREACHED)
            if engine.comm.allreduce_flag(flags):
                target_level = engine.level_of(target)
        if new_vertices == 0:
            break
        if target_level is not None:
            break
        if max_levels is not None and engine.level >= max_levels:
            break
    if run_span is not None:
        obs.end(run_span, levels=engine.level)
    clock = engine.comm.clock
    return BfsResult(
        source=source,
        levels=engine.assemble_levels(),
        num_levels=engine.level,
        elapsed=clock.elapsed,
        comm_time=clock.max_comm_time,
        compute_time=clock.max_compute_time,
        stats=engine.comm.stats,
        target=target,
        target_level=target_level,
        faults=engine.comm.fault_report(),
        observability=collect_observability(engine.comm),
    )
