"""The communication sieve: cross-level redundancy elimination on the wire.

The sent-neighbours cache (:mod:`repro.bfs.sent_cache`) only suppresses
duplicates a *sender* has itself shipped before.  The larger win — Lv et
al.'s "Compression and Sieve" observation — is never transmitting vertices
the *receiver* has already visited, which no wire codec can recover once
the candidate is encoded.

Each rank keeps an exact visited bitmap over its owned vertices; at the
end of every top-down level it broadcasts a bitmap summary of its freshly
labelled vertices to its fold-group peers (row peers in the 2D layout,
all other ranks in 1D).  Every sender therefore holds a *shadow* of each
destination's visited set that is complete up to the previous level, and
fold candidates are filtered against it before encoding: a candidate
whose owner already knows it is visited never hits the wire.  Same-level
duplicates are still removed by the in-flight union, so the labelled
levels are byte-identical to a sieve-off run — only the traffic drops.

Shadows are sound subsets of the true visited sets (a missed mark can
only cost bytes, never correctness), which is what lets bottom-up levels
of a hybrid run skip the summary broadcast entirely.
"""

from __future__ import annotations

import numpy as np


class PooledSieve:
    """All P ranks' destination shadows in one flat flag pool.

    ``flags[g * n + v]`` means rank ``g`` knows vertex ``v`` is already
    visited at its owner.  Peers are derived from the fold groups: rank
    ``d``'s end-of-level summary reaches exactly the ranks that can fold
    candidates to ``d``.  A rank never marks its own vertices — its
    self-addressed fold contributions cost nothing on the wire and are
    deduplicated locally anyway.
    """

    __slots__ = (
        "_nranks",
        "_n",
        "_flags",
        "_pair_src",
        "_pair_dst",
        "_pair_nbytes",
        "_pair_offsets",
        "_shadow_spans",
    )

    def __init__(
        self, groups: list[list[int]], spans: np.ndarray, n: int
    ) -> None:
        nranks = sum(len(g) for g in groups)
        self._nranks = nranks
        self._n = int(n)
        self._flags = np.zeros(nranks * self._n, dtype=bool)
        spans = np.asarray(spans, dtype=np.int64)
        peers_of: dict[int, list[int]] = {}
        for group in groups:
            for d in group:
                peers_of[d] = [g for g in group if g != d]
        offsets = np.zeros(nranks + 1, dtype=np.int64)
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        for r in range(nranks):
            peers = peers_of.get(r, [])
            offsets[r + 1] = offsets[r] + len(peers)
            if peers:
                src_parts.append(np.full(len(peers), r, dtype=np.int64))
                dst_parts.append(np.array(peers, dtype=np.int64))
        self._pair_offsets = offsets
        self._pair_src = (
            np.concatenate(src_parts) if src_parts else np.empty(0, dtype=np.int64)
        )
        self._pair_dst = (
            np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=np.int64)
        )
        # One summary message is a bitmap over the *sender's* owned span
        # plus a fixed base/count header word.
        self._pair_nbytes = 8 + (spans[self._pair_src] + 7) // 8
        # A rank's shadow covers exactly its fold-group peers' owned
        # vertices — what its buddy checkpoint would have to carry.
        group_totals = np.zeros(nranks, dtype=np.int64)
        for group in groups:
            total = int(spans[np.asarray(group, dtype=np.int64)].sum())
            for d in group:
                group_totals[d] = total
        self._shadow_spans = group_totals - spans

    # ------------------------------------------------------------------ #
    # the sieve itself
    # ------------------------------------------------------------------ #
    def keep_mask(self, senders: np.ndarray, flat: np.ndarray) -> np.ndarray:
        """Per-candidate survival mask: ``flat[k]`` sent by ``senders[k]``
        passes unless the sender's shadow already marks it visited."""
        return ~self._flags[senders * self._n + flat]

    def observe_segmented(
        self, fresh_flat: np.ndarray, fresh_bounds: np.ndarray
    ) -> np.ndarray:
        """Apply one level's summary broadcasts to every receiver's shadow.

        Segment ``r`` of ``(fresh_flat, fresh_bounds)`` holds rank ``r``'s
        freshly labelled owned vertices; each is marked in all of ``r``'s
        fold-group peers' shadows.  Returns the per-rank mark counts (the
        receivers' bitmap-update work, for compute charging).
        """
        nranks = self._nranks
        counts = np.diff(fresh_bounds)
        if fresh_flat.size == 0:
            return np.zeros(nranks, dtype=np.int64)
        owner = np.repeat(np.arange(nranks, dtype=np.int64), counts)
        npeers = np.diff(self._pair_offsets)
        reps = npeers[owner]
        total = int(reps.sum())
        if total == 0:
            return np.zeros(nranks, dtype=np.int64)
        out_off = np.concatenate(([0], np.cumsum(reps)))
        gather = np.arange(total, dtype=np.int64)
        gather += np.repeat(self._pair_offsets[owner] - out_off[:-1], reps)
        peers = self._pair_dst[gather]
        verts = np.repeat(fresh_flat, reps)
        self._flags[peers * self._n + verts] = True
        return np.bincount(peers, minlength=nranks)

    def summary_messages(
        self, fresh_counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Wire messages of one level's summary broadcast as parallel arrays.

        Only ranks with a non-empty fresh set broadcast (an empty bitmap
        carries no information); each sends one fixed-size bitmap summary
        to every fold-group peer.  Returns ``(src, dst, nbytes)``.
        """
        active = np.flatnonzero(np.asarray(fresh_counts) > 0)
        npeers = np.diff(self._pair_offsets)
        lengths = npeers[active]
        total = int(lengths.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        out_off = np.concatenate(([0], np.cumsum(lengths)))
        idx = np.arange(total, dtype=np.int64)
        idx += np.repeat(self._pair_offsets[active] - out_off[:-1], lengths)
        return self._pair_src[idx], self._pair_dst[idx], self._pair_nbytes[idx]

    # ------------------------------------------------------------------ #
    # per-run lifecycle (mirrors PooledSentCache)
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Forget every shadow mark (start of a new search)."""
        self._flags[:] = False

    def snapshot(self) -> np.ndarray:
        """Copy of the pooled shadow flags (level-boundary checkpointing)."""
        return self._flags.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        """Reinstate flags captured by :meth:`snapshot` (level rollback)."""
        self._flags[:] = snapshot

    def checkpoint_nbytes(self) -> np.ndarray:
        """Per-rank bitset size of the shadow state (peers' owned spans)."""
        return (self._shadow_spans + 7) // 8
