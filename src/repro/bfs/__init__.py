"""Distributed breadth-first search: the paper's core contribution.

Public entry points:

* :func:`repro.bfs.serial.serial_bfs` — single-process oracle.
* :class:`repro.bfs.bfs_1d.Bfs1DEngine` — Algorithm 1 (1D vertex partitioning).
* :class:`repro.bfs.bfs_2d.Bfs2DEngine` — Algorithm 2 (2D edge partitioning).
* :func:`repro.bfs.level_sync.run_bfs` — run any engine to completion.
* :func:`repro.bfs.bidirectional.run_bidirectional_bfs` — Section 2.3.
* :func:`repro.bfs.msbfs.run_ms_bfs` — batched multi-source traversal.
"""

from repro.bfs.options import BfsOptions
from repro.bfs.direction import DIRECTION_MODES, DirectionPolicy
from repro.bfs.result import BfsResult, BidirectionalResult, QueryResult
from repro.bfs.serial import serial_bfs
from repro.bfs.sent_cache import SentCache
from repro.bfs.level_sync import LevelSyncEngine, run_bfs
from repro.bfs.bfs_1d import Bfs1DEngine
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.bidirectional import run_bidirectional_bfs
from repro.bfs.msbfs import MAX_BATCH, MsBfsResult, run_ms_bfs

__all__ = [
    "BfsOptions",
    "BfsResult",
    "BidirectionalResult",
    "DIRECTION_MODES",
    "DirectionPolicy",
    "QueryResult",
    "MAX_BATCH",
    "MsBfsResult",
    "run_ms_bfs",
    "serial_bfs",
    "SentCache",
    "LevelSyncEngine",
    "run_bfs",
    "Bfs1DEngine",
    "Bfs2DEngine",
    "run_bidirectional_bfs",
]
