"""BFS spanning trees and Graph500-style result validation.

This paper is the direct ancestor of the Graph500 benchmark, whose
specification validates a BFS run with structural checks rather than a
reference implementation.  This module provides the same style of
validation for any level array produced by the engines, plus parent-tree
construction (every reached vertex points to a neighbour one level closer).

All checks are vectorised; none of them consult a second BFS, so they are
an *independent* line of defence next to the serial-oracle tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SearchError
from repro.graph.csr import CsrGraph
from repro.types import LEVEL_DTYPE, UNREACHED, VERTEX_DTYPE

#: parent value of the source vertex (it is its own root)
ROOT = -2
#: parent value of unreached vertices
NO_PARENT = -1


def build_parent_tree(graph: CsrGraph, levels: np.ndarray) -> np.ndarray:
    """Derive a BFS parent array from a level array.

    For every vertex ``v`` with ``levels[v] == l > 0``, picks the smallest
    neighbour at level ``l - 1`` (deterministic).  The source keeps
    ``ROOT``; unreached vertices keep ``NO_PARENT``.  Raises
    :class:`SearchError` if some reached vertex has no one-closer
    neighbour — i.e. if ``levels`` is not a valid BFS labelling.
    """
    levels = np.asarray(levels, dtype=LEVEL_DTYPE)
    if levels.shape != (graph.n,):
        raise SearchError(f"levels must have shape ({graph.n},), got {levels.shape}")
    parents = np.full(graph.n, NO_PARENT, dtype=VERTEX_DTYPE)
    parents[levels == 0] = ROOT

    # One vectorised pass over all adjacency entries: an entry (u -> v)
    # makes u a parent candidate for v when level(u) == level(v) - 1.
    src = np.repeat(np.arange(graph.n, dtype=VERTEX_DTYPE), np.diff(graph.indptr))
    dst = graph.indices
    lv_src, lv_dst = levels[src], levels[dst]
    good = (lv_src != UNREACHED) & (lv_dst > 0) & (lv_src == lv_dst - 1)
    cand_child, cand_parent = dst[good], src[good]
    # smallest parent id per child: sort by (child, parent), keep first
    order = np.lexsort((cand_parent, cand_child))
    cand_child, cand_parent = cand_child[order], cand_parent[order]
    first = np.ones(cand_child.shape, dtype=bool)
    first[1:] = cand_child[1:] != cand_child[:-1]
    parents[cand_child[first]] = cand_parent[first]

    orphan = (levels > 0) & (parents == NO_PARENT)
    if orphan.any():
        raise SearchError(
            f"levels are not a BFS labelling: {int(orphan.sum())} reached "
            f"vertices have no neighbour one level closer (first: "
            f"{int(np.where(orphan)[0][0])})"
        )
    return parents


@dataclass(slots=True)
class ValidationReport:
    """Outcome of :func:`validate_bfs_result`: pass/fail per check."""

    checks: dict[str, bool] = field(default_factory=dict)
    messages: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(self.checks.values())

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one check's outcome (with an optional failure detail)."""
        self.checks[name] = bool(passed)
        if not passed:
            self.messages.append(f"{name}: {detail}" if detail else name)

    def __str__(self) -> str:  # pragma: no cover - display helper
        status = "OK" if self.ok else "FAILED"
        lines = [f"validation {status} ({sum(self.checks.values())}/{len(self.checks)})"]
        lines.extend(self.messages)
        return "\n".join(lines)


def validate_bfs_result(
    graph: CsrGraph,
    source: int,
    levels: np.ndarray,
    parents: np.ndarray | None = None,
) -> ValidationReport:
    """Graph500-style structural validation of a BFS result.

    Checks (all vectorised):

    1. ``root-level``    — the source has level 0 and nothing else does
       unless it is the source.
    2. ``edge-span``     — no edge spans more than one level.
    3. ``level-support`` — every vertex at level l > 0 has a neighbour at
       level l - 1.
    4. ``connectivity``  — reached/unreached vertices never share an edge.
    5. ``parent-edges``  — (when ``parents`` given) each parent is a real
       neighbour exactly one level closer; tree roots/unreached agree with
       the level array.
    """
    report = ValidationReport()
    levels = np.asarray(levels, dtype=LEVEL_DTYPE)
    if levels.shape != (graph.n,):
        raise SearchError(f"levels must have shape ({graph.n},), got {levels.shape}")
    if not (0 <= source < graph.n):
        raise SearchError(f"source {source} out of range [0, {graph.n})")

    report.record(
        "root-level",
        levels[source] == 0 and int((levels == 0).sum()) == 1,
        f"source level {levels[source]}, zero-count {(levels == 0).sum()}",
    )

    src = np.repeat(np.arange(graph.n, dtype=VERTEX_DTYPE), np.diff(graph.indptr))
    dst = graph.indices
    lu, lv = levels[src], levels[dst]
    both = (lu != UNREACHED) & (lv != UNREACHED)
    report.record(
        "edge-span",
        bool((np.abs(lu[both] - lv[both]) <= 1).all()) if both.any() else True,
        "an edge spans more than one level",
    )
    mixed = (lu != UNREACHED) != (lv != UNREACHED)
    report.record(
        "connectivity",
        not bool(mixed.any()),
        f"{int(mixed.sum())} edges connect reached and unreached vertices",
    )

    needs_support = lv > 0
    supported = np.zeros(graph.n, dtype=bool)
    closer = needs_support & (lu == lv - 1)
    supported[dst[closer]] = True
    unsupported = (levels > 0) & ~supported
    report.record(
        "level-support",
        not bool(unsupported.any()),
        f"{int(unsupported.sum())} vertices lack a one-closer neighbour",
    )

    if parents is not None:
        parents = np.asarray(parents, dtype=VERTEX_DTYPE)
        ok = parents.shape == (graph.n,)
        if ok:
            reached = levels != UNREACHED
            roots = parents == ROOT
            agree = bool(
                (roots == (levels == 0)).all()
                and ((parents == NO_PARENT) == ~reached).all()
            )
            child = np.where(reached & ~roots)[0]
            par = parents[child]
            edge_ok = all(graph.has_edge(int(p), int(c)) for c, p in zip(child, par))
            level_ok = bool((levels[par] == levels[child] - 1).all()) if child.size else True
            ok = agree and edge_ok and level_ok
        report.record("parent-edges", ok, "parent array inconsistent with levels")
    return report
