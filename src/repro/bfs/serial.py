"""Serial reference BFS — the validation oracle for all distributed variants."""

from __future__ import annotations

import numpy as np

from repro.errors import SearchError
from repro.graph.csr import CsrGraph
from repro.graph.diameter import bfs_levels


def serial_bfs(graph: CsrGraph, source: int) -> np.ndarray:
    """Level array of a single-process BFS from ``source``.

    Entry ``v`` is the graph distance from ``source`` to ``v``, or
    ``UNREACHED`` (-1) when ``v`` is in a different component.
    """
    if not (0 <= source < graph.n):
        raise SearchError(f"source {source} out of range [0, {graph.n})")
    return bfs_levels(graph, source)


def serial_distance(graph: CsrGraph, source: int, target: int) -> int | None:
    """Graph distance from ``source`` to ``target``; ``None`` if disconnected."""
    levels = serial_bfs(graph, source)
    if not (0 <= target < graph.n):
        raise SearchError(f"target {target} out of range [0, {graph.n})")
    level = int(levels[target])
    return None if level < 0 else level
