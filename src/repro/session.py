"""Query sessions: partition once, search many times.

The paper's motivating application — relationship queries on a semantic
graph — issues *many* s-t searches against one graph.  Building the 2D
partition, the task mapping onto the torus, and the engine's concatenated
CSR tables dominates one-shot query cost, so :class:`BfsSession` builds
all of them exactly once and serves repeated queries.  Each query runs on
a fresh :class:`~repro.runtime.comm.Communicator` (so per-query statistics
and simulated times stay independent) that reuses the session's cached
:class:`~repro.machine.mapping.TaskMapping`, machine model, and routed
:class:`~repro.runtime.network.Network` — making ``_new_comm`` O(1) in the
graph and mesh size instead of re-deriving the torus per query.

Sessions are the substrate of :mod:`repro.server`: the engine is
re-entrant (rebound to the fresh communicator per query), queries can be
batched into one multi-source traversal (:meth:`BfsSession.bfs_many`),
and the served-query counters are guarded by a lock so concurrent server
workers can share one session.

Also provides :func:`extract_path`: an explicit shortest path from the
level arrays of a bi-directional search (the paper reports distances; the
application wants the path itself).
"""

from __future__ import annotations

import threading
from dataclasses import replace

import numpy as np

from repro.api import resolve_entry_system, resolve_machine_model, resolve_task_mapping
from repro.bfs.bfs_1d import Bfs1DEngine
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.bidirectional import run_bidirectional_bfs
from repro.bfs.level_sync import run_bfs
from repro.bfs.msbfs import MsBfsResult, run_ms_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.result import BfsResult, BidirectionalResult
from repro.errors import ConfigurationError, SearchError
from repro.faults import FaultSchedule, FaultSpec
from repro.graph.csr import CsrGraph
from repro.machine.bluegene import MachineModel
from repro.partition.degree_aware import degree_aware_relabeling
from repro.partition.one_d import OneDPartition
from repro.partition.permutation import VertexRelabeling
from repro.partition.two_d import TwoDPartition
from repro.runtime.comm import Communicator
from repro.runtime.network import Network
from repro.types import GridShape, SystemSpec, UNREACHED

__all__ = ["BfsSession", "extract_path"]


class BfsSession:
    """A reusable query context over one graph and one layout.

    The target system is a :class:`SystemSpec` (or preset name) passed as
    ``system=`` — the recommended path; the deprecated ``machine``/
    ``mapping``/``layout`` keywords still override its fields, as
    everywhere else in the API.

    Everything expensive is resolved once at construction and shared by
    all subsequent queries: the partition, the machine model, the task
    mapping (torus), the routed network, and one engine per direction.
    The cumulative counters (``queries_served``, ``total_simulated_time``)
    are lock-guarded, so a server may update them from concurrent workers;
    the *traversals themselves* mutate the shared engine and must be
    serialized by the caller (the asyncio server funnels them through one
    worker thread).
    """

    def __init__(
        self,
        graph: CsrGraph,
        grid: GridShape | tuple[int, int],
        *,
        opts: BfsOptions | None = None,
        system: SystemSpec | str | None = None,
        machine: str | MachineModel | None = None,
        mapping: str | None = None,
        layout: str | None = None,
        wire: str | None = None,
        faults: FaultSpec | None = None,
        observe: str | None = None,
        relabel: str | None = None,
    ) -> None:
        if not isinstance(grid, GridShape):
            grid = GridShape(*grid)
        self.graph = graph
        self.grid = grid
        self.opts = opts or BfsOptions()
        #: vertex permutation applied before partitioning (None = identity).
        #: Queries and results are always in *original* vertex ids — sources
        #: and targets are mapped in, level arrays mapped back out.
        self.relabeling = self._resolve_relabeling(relabel, graph, grid)
        search_graph = (
            self.relabeling.apply(graph) if self.relabeling is not None else graph
        )
        #: the resolved system description this session simulates
        self.system = resolve_entry_system(
            system, machine=machine, mapping=mapping, layout=layout, wire=wire,
            faults=faults, observe=observe,
        )
        if self.system.sieve and not self.opts.use_sieve:
            # The spec's sieve axis is the system-level switch; engines
            # only read BfsOptions (mirrors repro.api.build_engine).
            self.opts = replace(self.opts, use_sieve=True)
        self.machine = self.system.machine
        self.mapping = self.system.mapping
        self.layout = self.system.layout
        self.wire = self.system.wire
        self.observe = self.system.observe
        if self.layout == "2d":
            self.partition = TwoDPartition(search_graph, grid)
        else:
            if not grid.is_1d:
                raise ConfigurationError(f"layout='1d' needs a 1-D grid, got {grid}")
            self.partition = OneDPartition(search_graph, grid.size, as_row=grid.cols == 1)
        # Resolved once; _new_comm only allocates fresh clocks/stats per
        # query instead of re-deriving torus, mapping, and routes.
        self._model = resolve_machine_model(self.system)
        self._task_mapping = resolve_task_mapping(grid, self.system, self._model)
        self._network = Network(self._task_mapping, self._model)
        self._engine = self._build_engine()
        #: lazily built second engine for bi-directional queries
        self._backward_engine = None
        self._counters_lock = threading.Lock()
        #: cumulative simulated seconds across all queries served
        self.total_simulated_time = 0.0
        #: number of queries served
        self.queries_served = 0

    # ------------------------------------------------------------------ #
    # vertex relabeling (degree-aware partitioning for skewed graphs)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_relabeling(
        relabel: str | None, graph: CsrGraph, grid: GridShape
    ) -> VertexRelabeling | None:
        if relabel is None or relabel == "none":
            return None
        if relabel == "degree":
            return degree_aware_relabeling(graph, grid.size)
        if relabel == "random":
            return VertexRelabeling.random(graph.n)
        raise ConfigurationError(
            f"unknown relabel strategy {relabel!r}; expected one of "
            "'none', 'random', 'degree'"
        )

    def _to_internal(self, vertex: int | None) -> int | None:
        """Map an original vertex id into the relabeled search space."""
        if vertex is None or self.relabeling is None:
            return vertex
        if not (0 <= vertex < self.relabeling.n):
            return vertex  # out of range: let the driver raise its usual error
        return int(self.relabeling.to_new[vertex])

    # ------------------------------------------------------------------ #
    # engines
    # ------------------------------------------------------------------ #
    def _build_engine(self):
        comm = self._new_comm()
        if self.layout == "2d":
            return Bfs2DEngine(self.partition, comm, self.opts)
        return Bfs1DEngine(self.partition, comm, self.opts)

    def _new_engine(self, comm):
        """The session's long-lived engine, rebound to a fresh communicator."""
        self._engine.rebind(comm)
        return self._engine

    def _new_comm(self, fault_seed: int | None = None):
        """A fresh communicator over the cached mapping/model/network.

        O(1) in graph and mesh size: only the per-query clocks, statistics,
        and (when faults are configured) a fresh seeded fault schedule are
        allocated; the torus, task mapping, and routed link tables are the
        session's cached instances.  ``fault_seed`` reseeds the schedule
        for this query only — retrying a :class:`FaultError` under the
        spec's own seed replays the identical loss pattern, so callers
        that retry (the server) must vary the seed to draw fresh faults.
        """
        faults = self.system.faults
        if faults is not None and fault_seed is not None:
            faults = replace(faults, seed=int(fault_seed))
        schedule = (
            FaultSchedule(faults, self.grid.size) if faults is not None else None
        )
        return Communicator(
            self._task_mapping,
            self._model,
            buffer_capacity=self.opts.buffer_capacity,
            faults=schedule,
            wire=self.wire,
            observe=self.observe,
            network=self._network,
        )

    def _record(self, elapsed: float, queries: int = 1) -> None:
        with self._counters_lock:
            self.total_simulated_time += elapsed
            self.queries_served += queries

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def bfs(
        self,
        source: int,
        target: int | None = None,
        *,
        fault_seed: int | None = None,
    ) -> BfsResult:
        """Full or early-terminating BFS from ``source``."""
        result = run_bfs(
            self._new_engine(self._new_comm(fault_seed)),
            self._to_internal(source),
            target=self._to_internal(target),
        )
        if self.relabeling is not None:
            result.levels = self.relabeling.restore_levels(result.levels)
            result.source = source
            result.target = target
        self._record(result.elapsed)
        return result

    def bfs_many(
        self,
        sources: list[int],
        targets: list[int | None] | None = None,
        *,
        fault_seed: int | None = None,
    ) -> MsBfsResult:
        """Batched multi-source traversal (MS-BFS, bit-parallel frontiers).

        Runs every source in one shared traversal — one pass over the
        partition per *batch* level instead of one traversal per query —
        and returns an :class:`~repro.bfs.msbfs.MsBfsResult` whose
        per-source level rows are byte-identical to sequential
        :meth:`bfs` runs.  Batches are limited to 64 sources (one mask
        bit each).  Fault schedules compose with batching: batch levels
        checkpoint the per-source frontier masks and retirement state at
        level boundaries and replay on wire drops or rank crashes, so
        faulted batches still return fault-free levels (or raise
        :class:`~repro.errors.FaultError` once the replay budget is
        spent).  ``fault_seed`` reseeds the schedule for this call (see
        :meth:`_new_comm`).
        """
        result = run_ms_bfs(
            self._new_engine(self._new_comm(fault_seed)),
            [self._to_internal(s) for s in sources],
            targets=(
                [self._to_internal(t) for t in targets]
                if targets is not None
                else None
            ),
        )
        if self.relabeling is not None:
            result.levels = result.levels[:, self.relabeling.to_new]
            result.sources = tuple(sources)
            result.targets = (
                tuple(targets) if targets is not None else result.targets
            )
        self._record(result.elapsed, queries=len(sources))
        return result

    def bidirectional(self, source: int, target: int) -> BidirectionalResult:
        """Bi-directional s-t search (Section 2.3)."""
        comm = self._new_comm()
        if self._backward_engine is None:
            self._backward_engine = self._build_engine()
        forward = self._new_engine(comm)
        self._backward_engine.rebind(comm)
        result = run_bidirectional_bfs(
            forward,
            self._backward_engine,
            self._to_internal(source),
            self._to_internal(target),
        )
        if self.relabeling is not None:
            result.source = source
            result.target = target
        self._record(result.elapsed)
        return result

    def distance(self, source: int, target: int) -> int | None:
        """Graph distance via bi-directional search; None when disconnected."""
        return self.bidirectional(source, target).path_length

    def shortest_path(self, source: int, target: int) -> list[int] | None:
        """An explicit shortest path (vertex list), or None when disconnected.

        Runs a forward search terminated at the target, then backtracks
        through the level array — each hop moves to any neighbour exactly
        one level closer to the source.
        """
        result = self.bfs(source, target=target)
        if result.target_level is None:
            return None
        return extract_path(self.graph, result.levels, source, target)


def extract_path(
    graph: CsrGraph, levels: np.ndarray, source: int, target: int
) -> list[int]:
    """Backtrack a shortest path from ``target`` to ``source`` through ``levels``.

    ``levels`` must label every vertex on some shortest path (e.g. a full
    or target-terminated BFS from ``source``).  Deterministic: the smallest
    qualifying neighbour is taken at each hop.
    """
    levels = np.asarray(levels)
    if not (0 <= target < graph.n) or not (0 <= source < graph.n):
        raise SearchError("source/target out of range")
    if levels[target] == UNREACHED:
        raise SearchError(f"target {target} was not reached by this search")
    if levels[source] != 0:
        raise SearchError(f"vertex {source} is not the search source")
    path = [target]
    current = target
    while current != source:
        level = levels[current]
        neighbors = graph.neighbors(current)
        closer = neighbors[levels[neighbors] == level - 1]
        if closer.size == 0:  # pragma: no cover - valid BFS labellings prevent this
            raise SearchError(f"no predecessor for vertex {current} at level {level}")
        current = int(closer[0])
        path.append(current)
    path.reverse()
    return path
