"""Query sessions: partition once, search many times.

The paper's motivating application — relationship queries on a semantic
graph — issues *many* s-t searches against one graph.  Building the 2D
partition dominates one-shot query cost, so :class:`BfsSession` builds the
layout once and serves repeated queries, each on a fresh communicator (so
per-query statistics and simulated times stay independent).

Also provides :func:`extract_path`: an explicit shortest path from the
level arrays of a bi-directional search (the paper reports distances; the
application wants the path itself).
"""

from __future__ import annotations

import numpy as np

from repro.api import build_communicator
from repro.bfs.bfs_1d import Bfs1DEngine
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.bidirectional import run_bidirectional_bfs
from repro.bfs.level_sync import run_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.result import BfsResult, BidirectionalResult
from repro.errors import ConfigurationError, SearchError
from repro.faults import FaultSpec
from repro.graph.csr import CsrGraph
from repro.machine.bluegene import MachineModel
from repro.partition.one_d import OneDPartition
from repro.partition.two_d import TwoDPartition
from repro.types import GridShape, SystemSpec, UNREACHED, resolve_system


class BfsSession:
    """A reusable query context over one graph and one layout.

    The target system is a :class:`SystemSpec` (or preset name) passed as
    ``system=``; the legacy ``machine``/``mapping``/``layout``/``wire``/
    ``faults`` keywords override its fields, as everywhere else in the API.
    """

    def __init__(
        self,
        graph: CsrGraph,
        grid: GridShape | tuple[int, int],
        *,
        opts: BfsOptions | None = None,
        system: SystemSpec | str | None = None,
        machine: str | MachineModel | None = None,
        mapping: str | None = None,
        layout: str | None = None,
        wire: str | None = None,
        faults: FaultSpec | None = None,
        observe: str | None = None,
    ) -> None:
        if not isinstance(grid, GridShape):
            grid = GridShape(*grid)
        self.graph = graph
        self.grid = grid
        self.opts = opts or BfsOptions()
        #: the resolved system description this session simulates
        self.system = resolve_system(
            system, machine=machine, mapping=mapping, layout=layout, wire=wire,
            faults=faults, observe=observe,
        )
        self.machine = self.system.machine
        self.mapping = self.system.mapping
        self.layout = self.system.layout
        self.wire = self.system.wire
        self.observe = self.system.observe
        if self.layout == "2d":
            self.partition = TwoDPartition(graph, grid)
        else:
            if not grid.is_1d:
                raise ConfigurationError(f"layout='1d' needs a 1-D grid, got {grid}")
            self.partition = OneDPartition(graph, grid.size, as_row=grid.cols == 1)
        #: cumulative simulated seconds across all queries served
        self.total_simulated_time = 0.0
        #: number of queries served
        self.queries_served = 0

    # ------------------------------------------------------------------ #
    # engines
    # ------------------------------------------------------------------ #
    def _new_engine(self, comm):
        if self.layout == "2d":
            return Bfs2DEngine(self.partition, comm, self.opts)
        return Bfs1DEngine(self.partition, comm, self.opts)

    def _new_comm(self):
        return build_communicator(
            self.grid, system=self.system, buffer_capacity=self.opts.buffer_capacity
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def bfs(self, source: int, target: int | None = None) -> BfsResult:
        """Full or early-terminating BFS from ``source``."""
        result = run_bfs(self._new_engine(self._new_comm()), source, target=target)
        self.total_simulated_time += result.elapsed
        self.queries_served += 1
        return result

    def bidirectional(self, source: int, target: int) -> BidirectionalResult:
        """Bi-directional s-t search (Section 2.3)."""
        comm = self._new_comm()
        result = run_bidirectional_bfs(
            self._new_engine(comm), self._new_engine(comm), source, target
        )
        self.total_simulated_time += result.elapsed
        self.queries_served += 1
        return result

    def distance(self, source: int, target: int) -> int | None:
        """Graph distance via bi-directional search; None when disconnected."""
        return self.bidirectional(source, target).path_length

    def shortest_path(self, source: int, target: int) -> list[int] | None:
        """An explicit shortest path (vertex list), or None when disconnected.

        Runs a forward search terminated at the target, then backtracks
        through the level array — each hop moves to any neighbour exactly
        one level closer to the source.
        """
        result = self.bfs(source, target=target)
        if result.target_level is None:
            return None
        return extract_path(self.graph, result.levels, source, target)


def extract_path(
    graph: CsrGraph, levels: np.ndarray, source: int, target: int
) -> list[int]:
    """Backtrack a shortest path from ``target`` to ``source`` through ``levels``.

    ``levels`` must label every vertex on some shortest path (e.g. a full
    or target-terminated BFS from ``source``).  Deterministic: the smallest
    qualifying neighbour is taken at each hop.
    """
    levels = np.asarray(levels)
    if not (0 <= target < graph.n) or not (0 <= source < graph.n):
        raise SearchError("source/target out of range")
    if levels[target] == UNREACHED:
        raise SearchError(f"target {target} was not reached by this search")
    if levels[source] != 0:
        raise SearchError(f"vertex {source} is not the search source")
    path = [target]
    current = target
    while current != source:
        level = levels[current]
        neighbors = graph.neighbors(current)
        closer = neighbors[levels[neighbors] == level - 1]
        if closer.size == 0:  # pragma: no cover - valid BFS labellings prevent this
            raise SearchError(f"no predecessor for vertex {current} at level {level}")
        current = int(closer[0])
        path.append(current)
    path.reverse()
    return path
