"""Per-rank simulated clocks.

Each virtual rank owns a clock that accumulates simulated seconds, split
into *compute* and *communication* buckets (the paper reports both, e.g.
Figure 4.a and Table 1), plus a *fault* bucket for time added by the
fault-injection layer (retransmissions, timeouts, straggler excess) so
that fault overhead is separable from the algorithm's intrinsic cost.
Synchronisation points (collective boundaries) advance every participant
to the group maximum; the wait is booked as communication time, matching
how the paper's timers would see it.
"""

from __future__ import annotations

import numpy as np


class SimClock:
    """Vector of per-rank simulated times with comm/compute attribution."""

    __slots__ = ("nranks", "time", "comm_time", "compute_time", "fault_time")

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"need at least one rank, got {nranks}")
        self.nranks = int(nranks)
        self.time = np.zeros(nranks, dtype=np.float64)
        self.comm_time = np.zeros(nranks, dtype=np.float64)
        self.compute_time = np.zeros(nranks, dtype=np.float64)
        self.fault_time = np.zeros(nranks, dtype=np.float64)

    def _bucket(self, kind: str) -> np.ndarray:
        if kind == "compute":
            return self.compute_time
        if kind == "comm":
            return self.comm_time
        if kind == "fault":
            return self.fault_time
        raise ValueError(f"unknown work kind {kind!r}")

    def advance(self, rank: int, seconds: float, kind: str = "compute") -> None:
        """Advance ``rank``'s clock by ``seconds`` of ``kind`` work."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds} s")
        self.time[rank] += seconds
        self._bucket(kind)[rank] += seconds

    def advance_many(self, seconds: np.ndarray, kind: str = "compute") -> None:
        """Advance every rank by its entry in ``seconds`` (vectorised)."""
        seconds = np.asarray(seconds, dtype=np.float64)
        if seconds.shape != (self.nranks,):
            raise ValueError(f"expected per-rank vector of length {self.nranks}")
        if (seconds < 0).any():
            raise ValueError("cannot advance clocks by negative time")
        self.time += seconds
        self._bucket(kind)[:] += seconds

    def sync(self, ranks: list[int] | np.ndarray | None = None) -> float:
        """Barrier: advance ``ranks`` (default all) to their common maximum.

        The idle wait is attributed to communication time.  Returns the
        post-barrier time.
        """
        if ranks is None:
            # Whole machine — no indexed scatter needed.
            horizon = float(self.time.max())
            self.comm_time += horizon - self.time
            self.time[:] = horizon
            return horizon
        idx = np.asarray(ranks, dtype=np.int64)
        horizon = float(self.time[idx].max()) if idx.size else 0.0
        wait = horizon - self.time[idx]
        self.comm_time[idx] += wait
        self.time[idx] = horizon
        return horizon

    @property
    def elapsed(self) -> float:
        """Simulated makespan: the slowest rank's clock."""
        return float(self.time.max())

    @property
    def max_comm_time(self) -> float:
        """Largest per-rank cumulative communication time."""
        return float(self.comm_time.max())

    @property
    def max_compute_time(self) -> float:
        """Largest per-rank cumulative computation time."""
        return float(self.compute_time.max())

    @property
    def max_fault_time(self) -> float:
        """Largest per-rank cumulative fault-attributable time."""
        return float(self.fault_time.max())
