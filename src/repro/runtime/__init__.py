"""Virtual distributed runtime: per-rank clocks, messages, network, communicator.

This package is the substitute for MPI + real BlueGene/L hardware (see
DESIGN.md): ``P`` virtual ranks execute level-synchronously inside one
Python process, every message is materialised and counted exactly, and a
cost model charges simulated time for communication and computation.
"""

from repro.runtime.clock import SimClock
from repro.runtime.message import MessageBuffer, chunk_payload
from repro.runtime.network import Network
from repro.runtime.comm import Communicator
from repro.runtime.stats import CommStats, LevelStats
from repro.runtime.trace import MessageEvent, TraceRecorder

__all__ = [
    "SimClock",
    "MessageBuffer",
    "chunk_payload",
    "Network",
    "Communicator",
    "CommStats",
    "LevelStats",
    "MessageEvent",
    "TraceRecorder",
]
