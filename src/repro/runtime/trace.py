"""Message-level event tracing.

A :class:`TraceRecorder` attached to a communicator captures one event per
wire message — (simulated send time, src, dst, vertices, raw payload
bytes, encoded payload bytes, phase) — enabling timeline analysis beyond
the aggregate counters in :class:`~repro.runtime.stats.CommStats`:
per-rank load profiles, busiest links, phase overlap, per-link
compression.  Export to CSV/JSON for external tooling.

Events mirror the communicator's accounting one-for-one: payloads are
chunked to the buffer capacity exactly as :meth:`Communicator.exchange`
does, ``raw_bytes`` is ``num_vertices * bytes_per_vertex``, and
``encoded_bytes`` is what the attached :mod:`repro.wire` codec puts on
the wire for that chunk (equal to ``raw_bytes`` under the ``"raw"``
codec and for self-sends, which are local hand-offs).
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.runtime.message import chunk_payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.comm import Communicator


@dataclass(frozen=True, slots=True)
class MessageEvent:
    """One wire message, stamped with the sender's simulated clock."""

    time: float
    src: int
    dst: int
    num_vertices: int
    #: payload size before wire encoding (``num_vertices * bytes_per_vertex``)
    raw_bytes: int
    #: bytes actually on the wire after the communicator's codec
    encoded_bytes: int
    phase: str


class TraceRecorder:
    """Captures every wire message passing through one communicator.

    Installed by wrapping :meth:`Communicator.exchange`; detach with
    :meth:`uninstall`.  Usable as a context manager.
    """

    def __init__(self, comm: "Communicator") -> None:
        self.comm = comm
        self.events: list[MessageEvent] = []
        self._original_exchange = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def install(self) -> "TraceRecorder":
        """Start capturing (idempotent)."""
        if self._original_exchange is not None:
            return self
        original = self.comm.exchange

        def traced_exchange(outbox, phase, participants=None, *, sync=True):
            comm = self.comm
            wire = comm.wire
            raw_wire = wire.name == "raw"
            bytes_per_vertex = comm.model.bytes_per_vertex
            for src, dests in outbox.items():
                stamp = float(comm.clock.time[src])
                for dst, payload in dests.items():
                    payload = np.asarray(payload)
                    for chunk in chunk_payload(payload, comm.buffer_capacity):
                        size = int(chunk.size)
                        raw_nbytes = size * bytes_per_vertex
                        if raw_wire or src == dst:
                            enc_nbytes = raw_nbytes
                        else:
                            enc_nbytes = wire.encoded_nbytes(chunk)
                        self.events.append(MessageEvent(
                            stamp, src, dst, size, raw_nbytes, enc_nbytes, phase
                        ))
            return original(outbox, phase, participants, sync=sync)

        self.comm.exchange = traced_exchange  # type: ignore[method-assign]
        self._original_exchange = original
        return self

    def uninstall(self) -> None:
        """Stop capturing and restore the communicator."""
        if self._original_exchange is not None:
            self.comm.exchange = self._original_exchange  # type: ignore[method-assign]
            self._original_exchange = None

    def __enter__(self) -> "TraceRecorder":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def per_rank_sent(self) -> np.ndarray:
        """Vertices sent per rank over the whole trace."""
        out = np.zeros(self.comm.nranks, dtype=np.int64)
        for event in self.events:
            out[event.src] += event.num_vertices
        return out

    def per_phase_volume(self) -> dict[str, int]:
        """Total vertices on the wire per phase."""
        volumes: dict[str, int] = {}
        for event in self.events:
            volumes[event.phase] = volumes.get(event.phase, 0) + event.num_vertices
        return volumes

    def busiest_pair(self) -> tuple[int, int, int] | None:
        """(src, dst, vertices) of the heaviest rank pair, or None if empty."""
        if not self.events:
            return None
        totals: dict[tuple[int, int], int] = {}
        for event in self.events:
            key = (event.src, event.dst)
            totals[key] = totals.get(key, 0) + event.num_vertices
        (src, dst), volume = max(totals.items(), key=lambda item: item[1])
        return src, dst, volume

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_csv(self, path: str | Path) -> None:
        """Write the trace as CSV (one event per row)."""
        path = Path(path)
        with path.open("w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["time", "src", "dst", "num_vertices",
                 "raw_bytes", "encoded_bytes", "phase"]
            )
            for event in self.events:
                writer.writerow(
                    [f"{event.time:.9f}", event.src, event.dst, event.num_vertices,
                     event.raw_bytes, event.encoded_bytes, event.phase]
                )

    def to_json(self, path: str | Path) -> None:
        """Write the trace as a JSON list of event objects."""
        Path(path).write_text(
            json.dumps([asdict(event) for event in self.events], indent=0),
            encoding="utf-8",
        )
