"""Runtime statistics: message counts, volumes, redundancy, per-level series.

These counters are what the paper's figures and tables are made of:

* per-level *delivered* message volume (Figures 4.b and 6, Table 1's
  average message lengths) — vertices arriving at the rank that needs
  them,
* *processed* volume — every vertex handled at every hop, including ring
  forwarding; this is the paper's Figure 7 notion of "received" ("each
  processor receives more messages ... because it passes the messages
  using ring communications"),
* duplicate vertices eliminated in-flight by the union-fold (Figure 7's
  redundancy ratio numerator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(slots=True)
class LevelStats:
    """Aggregated communication counters for one BFS level."""

    level: int
    #: vertices delivered to their final consumer during expand
    expand_received: int = 0
    #: vertices delivered to their final consumer during fold
    fold_received: int = 0
    #: vertices handled at any hop (delivery + ring forwarding)
    processed: int = 0
    #: duplicate vertices removed in-flight by union reductions
    duplicates_eliminated: int = 0
    #: point-to-point messages sent this level
    messages: int = 0
    #: payload bytes before wire encoding (vertices * bytes_per_vertex)
    raw_bytes: int = 0
    #: bytes actually put on the wire by the configured codec
    encoded_bytes: int = 0
    #: new vertices labelled at this level
    frontier_size: int = 0
    #: simulated communication seconds this level (slowest rank's delta)
    comm_seconds: float = 0.0
    #: simulated computation seconds this level (slowest rank's delta)
    compute_seconds: float = 0.0
    #: transmissions lost to injected faults this level
    drops: int = 0
    #: retransmissions performed after drops this level
    retries: int = 0
    #: simulated fault-overhead seconds this level (slowest rank's delta)
    fault_seconds: float = 0.0
    #: traversal direction this level ran ("top-down" or "bottom-up")
    direction: str = "top-down"
    #: edges examined this level across all ranks (the direction-optimizing
    #: literature's "traversed edges" — bottom-up's early exit shrinks it)
    edges_scanned: int = 0
    #: fold candidates dropped before encoding by the communication sieve
    #: (vertices whose owner was already known to have visited them)
    sieved: int = 0

    @property
    def total_received(self) -> int:
        """All vertices delivered this level (expand + fold)."""
        return self.expand_received + self.fold_received

    @property
    def compression_ratio(self) -> float:
        """Raw-to-encoded byte ratio this level (1.0 for the raw codec)."""
        return self.raw_bytes / self.encoded_bytes if self.encoded_bytes else 1.0


class CommStats:
    """Mutable per-run statistics collected by the communicator and collectives."""

    def __init__(self, nranks: int) -> None:
        self.nranks = int(nranks)
        self.levels: list[LevelStats] = []
        self.total_messages = 0
        self.total_bytes = 0
        #: bytes on the wire after codec encoding (== total_bytes for "raw")
        self.total_encoded_bytes = 0
        self.total_processed = 0
        #: transmissions lost to injected faults (whole run)
        self.total_drops = 0
        #: retransmissions performed after drops (whole run)
        self.total_retries = 0
        #: BFS level re-executions forced by unrecovered losses
        self.total_rollbacks = 0
        #: edges examined over the whole run (sum of per-level edges_scanned)
        self.total_edges_scanned = 0
        #: fold candidates dropped pre-encoding by the communication sieve
        self.total_sieved = 0
        #: raw payload bytes split by phase ("expand", "fold", "sieve", ...)
        self.raw_bytes_by_phase: dict[str, int] = {}
        #: encoded wire bytes split by phase (what each phase actually shipped)
        self.encoded_bytes_by_phase: dict[str, int] = {}
        #: per-rank delivered vertex counts, split by phase
        self.recv_by_rank: dict[str, np.ndarray] = {}
        self._current: LevelStats | None = None

    # ------------------------------------------------------------------ #
    # level lifecycle
    # ------------------------------------------------------------------ #
    def begin_level(self, level: int) -> None:
        """Open the counters for BFS level ``level``."""
        if self._current is not None:
            raise RuntimeError("previous level not closed")
        self._current = LevelStats(level=level)

    def end_level(
        self,
        frontier_size: int,
        comm_seconds: float = 0.0,
        compute_seconds: float = 0.0,
        fault_seconds: float = 0.0,
        direction: str = "top-down",
    ) -> LevelStats:
        """Close the current level, recording the new frontier size, the
        level's simulated time split (slowest-rank deltas), and the
        traversal direction it ran."""
        if self._current is None:
            raise RuntimeError("no open level")
        self._current.frontier_size = int(frontier_size)
        self._current.comm_seconds = float(comm_seconds)
        self._current.compute_seconds = float(compute_seconds)
        self._current.fault_seconds = float(fault_seconds)
        self._current.direction = str(direction)
        self.levels.append(self._current)
        done = self._current
        self._current = None
        return done

    def abort_level(self) -> None:
        """Discard the open level's counters (a faulted level being rolled back).

        The aborted attempt's *run-level* totals (messages, bytes, drops)
        are kept — that traffic really crossed the wire — but no
        per-level row is appended for it.
        """
        if self._current is None:
            raise RuntimeError("no open level")
        self.total_rollbacks += 1
        self._current = None

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_message(
        self,
        dst: int,
        num_vertices: int,
        nbytes: int,
        phase: str,
        encoded_nbytes: int | None = None,
    ) -> None:
        """Record one wire message (called by the communicator on every hop).

        ``nbytes`` is the raw payload size; ``encoded_nbytes`` is what the
        wire codec actually shipped (defaults to ``nbytes`` — the raw
        codec and legacy callers).
        """
        encoded = int(nbytes) if encoded_nbytes is None else int(encoded_nbytes)
        self.total_messages += 1
        self.total_bytes += int(nbytes)
        self.total_encoded_bytes += encoded
        self.total_processed += int(num_vertices)
        self.raw_bytes_by_phase[phase] = (
            self.raw_bytes_by_phase.get(phase, 0) + int(nbytes)
        )
        self.encoded_bytes_by_phase[phase] = (
            self.encoded_bytes_by_phase.get(phase, 0) + encoded
        )
        if self._current is not None:
            self._current.messages += 1
            self._current.raw_bytes += int(nbytes)
            self._current.encoded_bytes += encoded
            self._current.processed += int(num_vertices)

    def record_message_bulk(
        self,
        count: int,
        num_vertices: int,
        nbytes: int,
        encoded_nbytes: int,
        *,
        phase: str | None = None,
    ) -> None:
        """Record ``count`` wire messages' totals in one call.

        Integer-sum equivalent of ``count`` :meth:`record_message` calls
        (the communicator's batched accounting path).  When ``phase`` is
        given the bytes also land in the per-phase splits; legacy callers
        that never cared about the split keep the positional signature.
        """
        self.total_messages += int(count)
        self.total_bytes += int(nbytes)
        self.total_encoded_bytes += int(encoded_nbytes)
        self.total_processed += int(num_vertices)
        if phase is not None:
            self.raw_bytes_by_phase[phase] = (
                self.raw_bytes_by_phase.get(phase, 0) + int(nbytes)
            )
            self.encoded_bytes_by_phase[phase] = (
                self.encoded_bytes_by_phase.get(phase, 0) + int(encoded_nbytes)
            )
        if self._current is not None:
            self._current.messages += int(count)
            self._current.raw_bytes += int(nbytes)
            self._current.encoded_bytes += int(encoded_nbytes)
            self._current.processed += int(num_vertices)

    def record_delivery(self, dst: int, num_vertices: int, phase: str) -> None:
        """Record vertices arriving at their final consumer (called by collectives)."""
        per_rank = self.recv_by_rank.setdefault(phase, np.zeros(self.nranks, dtype=np.int64))
        per_rank[dst] += num_vertices
        if self._current is not None:
            if phase == "expand":
                self._current.expand_received += int(num_vertices)
            elif phase == "fold":
                self._current.fold_received += int(num_vertices)

    def record_delivery_bulk(
        self, dsts: np.ndarray, counts: np.ndarray, phase: str
    ) -> None:
        """Record many final-consumer arrivals at once (batched collectives)."""
        per_rank = self.recv_by_rank.setdefault(phase, np.zeros(self.nranks, dtype=np.int64))
        np.add.at(per_rank, dsts, counts)
        if self._current is not None:
            total = int(np.sum(counts))
            if phase == "expand":
                self._current.expand_received += total
            elif phase == "fold":
                self._current.fold_received += total

    def record_edges_scanned(self, count: int) -> None:
        """Record ``count`` edge examinations (fed by ``charge_compute``).

        Both directions report through this: top-down counts edges out of
        the frontier, bottom-up counts the (early-exited) scans of
        unvisited vertices' edge lists.
        """
        self.total_edges_scanned += int(count)
        if self._current is not None:
            self._current.edges_scanned += int(count)

    def record_fault(self, drops: int, retries: int) -> None:
        """Record one chunk's injected drops and retransmissions."""
        self.total_drops += int(drops)
        self.total_retries += int(retries)
        if self._current is not None:
            self._current.drops += int(drops)
            self._current.retries += int(retries)

    def record_duplicates(self, count: int) -> None:
        """Record ``count`` duplicates eliminated in-flight by a union reduction."""
        if self._current is not None:
            self._current.duplicates_eliminated += int(count)

    def record_sieved(self, count: int) -> None:
        """Record ``count`` fold candidates dropped pre-encoding by the sieve."""
        self.total_sieved += int(count)
        if self._current is not None:
            self._current.sieved += int(count)

    # ------------------------------------------------------------------ #
    # derived series (figure/table inputs)
    # ------------------------------------------------------------------ #
    def volume_per_level(self, phase: str | None = None) -> np.ndarray:
        """Delivered-vertex counts per level (Figures 4.b / 6 series)."""
        if phase == "expand":
            return np.array([s.expand_received for s in self.levels], dtype=np.int64)
        if phase == "fold":
            return np.array([s.fold_received for s in self.levels], dtype=np.int64)
        return np.array([s.total_received for s in self.levels], dtype=np.int64)

    def bytes_per_level(self, kind: str = "raw") -> np.ndarray:
        """Per-level wire bytes: ``kind`` is ``"raw"`` (pre-codec) or
        ``"encoded"`` (what the configured codec shipped)."""
        if kind == "raw":
            return np.array([s.raw_bytes for s in self.levels], dtype=np.int64)
        if kind == "encoded":
            return np.array([s.encoded_bytes for s in self.levels], dtype=np.int64)
        raise ValueError(f"kind must be 'raw' or 'encoded', got {kind!r}")

    def time_per_level(self, kind: str = "comm") -> np.ndarray:
        """Per-level simulated seconds: ``kind`` is ``"comm"``, ``"compute"``,
        or ``"fault"``."""
        if kind == "comm":
            return np.array([s.comm_seconds for s in self.levels])
        if kind == "compute":
            return np.array([s.compute_seconds for s in self.levels])
        if kind == "fault":
            return np.array([s.fault_seconds for s in self.levels])
        raise ValueError(f"kind must be 'comm', 'compute', or 'fault', got {kind!r}")

    def edges_scanned_per_level(self) -> np.ndarray:
        """Edge examinations per level (the traversed-edges series)."""
        return np.array([s.edges_scanned for s in self.levels], dtype=np.int64)

    def sieved_per_level(self) -> np.ndarray:
        """Fold candidates dropped pre-encoding by the sieve, per level."""
        return np.array([s.sieved for s in self.levels], dtype=np.int64)

    def direction_counts(self) -> dict[str, int]:
        """Number of levels run in each direction (``{mode: count}``)."""
        counts: dict[str, int] = {}
        for s in self.levels:
            counts[s.direction] = counts.get(s.direction, 0) + 1
        return counts

    def mean_message_length_per_level(self, phase: str, nranks_receiving: int) -> float:
        """Average vertices delivered per rank per level for ``phase`` (Table 1)."""
        if not self.levels or nranks_receiving <= 0:
            return 0.0
        per_level = self.volume_per_level(phase)
        return float(per_level.mean() / nranks_receiving)

    @property
    def compression_ratio(self) -> float:
        """Whole-run raw-to-encoded byte ratio (1.0 for the raw codec)."""
        if not self.total_encoded_bytes:
            return 1.0
        return self.total_bytes / self.total_encoded_bytes

    @property
    def total_duplicates(self) -> int:
        """All duplicates eliminated in-flight over the whole run."""
        return sum(s.duplicates_eliminated for s in self.levels)

    @property
    def redundancy_ratio(self) -> float:
        """Duplicates eliminated / total vertices processed (Figure 7), in [0, 1).

        The denominator is what ranks handled *plus* what the union saved
        (i.e. the volume that would have been handled without in-flight
        elimination), so the ratio reads "fraction of traffic the
        union-fold removed".  It declines with P because ring forwarding
        inflates the processed volume — the paper's own explanation.
        """
        eliminated = self.total_duplicates
        processed = sum(s.processed for s in self.levels)
        total = processed + eliminated
        return eliminated / total if total else 0.0
